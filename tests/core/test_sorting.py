"""Unit tests for repro.core.sorting."""

import numpy as np
import pytest

from repro.core import (
    ShapeError,
    apply_map,
    counts_to_pointer,
    invert_permutation,
    is_permutation,
    lexsort_rows,
    segment_boundaries,
    stable_argsort,
)


class TestStableArgsort:
    def test_sorts(self):
        keys = np.array([3, 1, 2], dtype=np.uint64)
        assert stable_argsort(keys).tolist() == [1, 2, 0]

    def test_stability(self):
        # Equal keys keep input order — required for the GCSR++ map vector.
        keys = np.array([1, 0, 1, 0, 1], dtype=np.uint64)
        assert stable_argsort(keys).tolist() == [1, 3, 0, 2, 4]

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            stable_argsort(np.zeros((2, 2)))


class TestLexsortRows:
    def test_dim0_most_significant(self):
        coords = np.array([[1, 0], [0, 5], [0, 2], [1, 1]], dtype=np.uint64)
        perm = lexsort_rows(coords)
        assert coords[perm].tolist() == [[0, 2], [0, 5], [1, 0], [1, 1]]

    def test_matches_linear_order(self, rng):
        from repro.core import linearize

        shape = (9, 8, 7)
        coords = np.column_stack(
            [rng.integers(0, m, size=300, dtype=np.uint64) for m in shape]
        )
        perm = lexsort_rows(coords)
        addr = linearize(coords, shape)
        assert np.array_equal(np.sort(addr), addr[perm])

    def test_single_column(self):
        coords = np.array([[3], [1], [2]], dtype=np.uint64)
        assert lexsort_rows(coords).tolist() == [1, 2, 0]

    def test_empty(self):
        assert lexsort_rows(np.empty((0, 2), dtype=np.uint64)).shape == (0,)


class TestPermutations:
    def test_invert(self, rng):
        perm = rng.permutation(40)
        inv = invert_permutation(perm)
        assert np.array_equal(perm[inv], np.arange(40))
        assert np.array_equal(inv[perm], np.arange(40))

    def test_is_permutation(self, rng):
        assert is_permutation(rng.permutation(10))
        assert is_permutation(np.array([], dtype=np.intp))
        assert not is_permutation(np.array([0, 0, 2]))
        assert not is_permutation(np.array([0, 3]))
        assert not is_permutation(np.zeros((2, 2), dtype=np.intp))

    def test_apply_map_none_is_noop(self):
        buf = np.arange(5.0)
        assert apply_map(buf, None) is buf

    def test_apply_map_gathers(self):
        buf = np.array([10.0, 20.0, 30.0])
        perm = np.array([2, 0, 1])
        assert apply_map(buf, perm).tolist() == [30.0, 10.0, 20.0]

    def test_apply_map_length_mismatch(self):
        with pytest.raises(ShapeError):
            apply_map(np.arange(3.0), np.array([0, 1]))


class TestPointersAndSegments:
    def test_counts_to_pointer(self):
        ptr = counts_to_pointer(np.array([3, 0, 2]))
        assert ptr.tolist() == [0, 3, 3, 5]

    def test_counts_to_pointer_empty(self):
        assert counts_to_pointer(np.array([], dtype=int)).tolist() == [0]

    def test_segment_boundaries(self):
        keys = np.array([2, 2, 5, 7, 7, 7], dtype=np.uint64)
        uniq, offs = segment_boundaries(keys)
        assert uniq.tolist() == [2, 5, 7]
        assert offs.tolist() == [0, 2, 3, 6]

    def test_segment_boundaries_empty(self):
        uniq, offs = segment_boundaries(np.array([], dtype=np.uint64))
        assert uniq.shape == (0,)
        assert offs.tolist() == [0]
