"""Unit tests for repro.core.tensor."""

import numpy as np
import pytest

from repro.core import Box, ShapeError, SparseTensor, from_linear, infer_shape


class TestConstruction:
    def test_from_points(self, fig1_tensor):
        assert fig1_tensor.nnz == 5
        assert fig1_tensor.ndim == 3
        assert fig1_tensor.shape == (3, 3, 3)

    def test_from_dense_round_trip(self, rng):
        dense = np.zeros((6, 7))
        dense[1, 2] = 3.5
        dense[5, 6] = -1.0
        t = SparseTensor.from_dense(dense)
        assert t.nnz == 2
        assert np.array_equal(t.to_dense(), dense)

    def test_empty(self):
        t = SparseTensor.empty((4, 4))
        assert t.nnz == 0
        assert t.density == 0.0

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ShapeError, match="outside"):
            SparseTensor.from_points((2, 2), [(2, 0)])

    def test_misaligned_values_rejected(self):
        with pytest.raises(ShapeError):
            SparseTensor((2, 2), np.array([[0, 0]], dtype=np.uint64),
                         np.array([1.0, 2.0]))

    def test_coords_must_be_2d(self):
        with pytest.raises(ShapeError):
            SparseTensor((4,), np.array([1, 2], dtype=np.uint64),
                         np.array([1.0, 2.0]))


class TestProperties:
    def test_density(self):
        t = SparseTensor.from_points((10, 10), [(0, 0), (5, 5)])
        assert t.density == pytest.approx(0.02)

    def test_bounding_box(self, fig1_tensor):
        box = fig1_tensor.bounding_box
        assert box.origin == (0, 0, 1)
        assert box.end == (3, 3, 3)

    def test_coord_nbytes(self, fig1_tensor):
        assert fig1_tensor.coord_nbytes() == 5 * 3 * 8


class TestDuplicates:
    def test_detects(self):
        t = SparseTensor.from_points((4, 4), [(1, 1), (1, 1)])
        assert t.has_duplicates()

    def test_clean(self, fig1_tensor):
        assert not fig1_tensor.has_duplicates()

    def test_dedup_keep_last(self):
        t = SparseTensor.from_points((4, 4), [(1, 1), (2, 2), (1, 1)],
                                     [1.0, 2.0, 3.0])
        d = t.deduplicated(keep="last")
        assert d.nnz == 2
        dense = d.to_dense()
        assert dense[1, 1] == 3.0

    def test_dedup_keep_first(self):
        t = SparseTensor.from_points((4, 4), [(1, 1), (2, 2), (1, 1)],
                                     [1.0, 2.0, 3.0])
        d = t.deduplicated(keep="first")
        assert d.to_dense()[1, 1] == 1.0

    def test_dedup_bad_keep(self, fig1_tensor):
        with pytest.raises(ValueError):
            fig1_tensor.deduplicated(keep="middle")


class TestTransforms:
    def test_sorted_by_linear(self, rng, tensor_3d):
        s = tensor_3d.sorted_by_linear()
        addr = s.linear_addresses()
        assert np.all(addr[1:] >= addr[:-1])
        assert s.same_points(tensor_3d)

    def test_sorted_lexicographic(self, tensor_3d):
        s = tensor_3d.sorted_lexicographic()
        # Lexicographic order == linear-address order for origin tensors.
        assert np.array_equal(
            s.coords, tensor_3d.sorted_by_linear().coords
        )

    def test_select_box(self, fig1_tensor):
        sel = fig1_tensor.select_box(Box((0, 0, 0), (1, 3, 3)))
        assert sel.nnz == 3

    def test_permuted_dims_round_trip(self, tensor_3d):
        p = tensor_3d.permuted_dims([2, 0, 1])
        back = p.permuted_dims([1, 2, 0])
        assert back.shape == tensor_3d.shape
        assert np.array_equal(back.coords, tensor_3d.coords)

    def test_permuted_dims_invalid(self, tensor_3d):
        with pytest.raises(ShapeError):
            tensor_3d.permuted_dims([0, 0, 1])

    def test_to_dense_guard(self):
        t = SparseTensor.empty((1 << 14, 1 << 14))
        with pytest.raises(ShapeError, match="densify"):
            t.to_dense()


class TestHelpers:
    def test_from_linear(self, fig1_tensor):
        addr = fig1_tensor.linear_addresses()
        rebuilt = from_linear(fig1_tensor.shape, addr, fig1_tensor.values)
        assert rebuilt.same_points(fig1_tensor)

    def test_infer_shape(self):
        coords = np.array([[3, 9], [5, 2]], dtype=np.uint64)
        assert infer_shape(coords) == (6, 10)

    def test_same_points_order_insensitive(self, fig1_tensor, rng):
        perm = rng.permutation(fig1_tensor.nnz)
        shuffled = SparseTensor(
            fig1_tensor.shape,
            fig1_tensor.coords[perm],
            fig1_tensor.values[perm],
        )
        assert fig1_tensor.same_points(shuffled)

    def test_same_points_detects_difference(self, fig1_tensor):
        other = SparseTensor.from_points(
            (3, 3, 3), [(0, 0, 1)], [9.0]
        )
        assert not fig1_tensor.same_points(other)
