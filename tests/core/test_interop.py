"""Unit tests for scipy interoperability."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import ShapeError, SparseTensor
from repro.core.errors import FormatError
from repro.formats import GCSCFormat, GCSRFormat
from repro.interop import (
    fold_to_scipy,
    from_scipy,
    gcsc_payload_to_scipy,
    gcsr_payload_to_scipy,
    to_scipy,
)


class TestToFromScipy:
    def test_round_trip_csr(self, tensor_2d):
        mat = to_scipy(tensor_2d, format="csr")
        assert sp.issparse(mat)
        back = from_scipy(mat)
        assert back.same_points(tensor_2d)

    @pytest.mark.parametrize("fmt", ["csr", "csc", "coo"])
    def test_formats(self, tensor_2d, fmt):
        mat = to_scipy(tensor_2d, format=fmt)
        assert mat.getformat() == fmt
        assert mat.nnz == tensor_2d.nnz

    def test_dense_agreement(self, tensor_2d):
        mat = to_scipy(tensor_2d)
        assert np.allclose(mat.toarray(), tensor_2d.to_dense())

    def test_3d_rejected(self, tensor_3d):
        with pytest.raises(ShapeError, match="2D"):
            to_scipy(tensor_3d)

    def test_from_scipy_random(self, rng):
        mat = sp.random(40, 60, density=0.05, random_state=7, format="csc")
        t = from_scipy(mat)
        assert t.shape == (40, 60)
        assert np.allclose(t.to_dense(), mat.toarray())


class TestFoldToScipy:
    def test_3d_fold_preserves_values(self, tensor_3d):
        mat = fold_to_scipy(tensor_3d)
        assert mat.shape[0] == min(tensor_3d.shape)
        assert mat.nnz == tensor_3d.nnz
        assert mat.sum() == pytest.approx(tensor_3d.values.sum())

    def test_fold_cell_addressing(self):
        """A folded cell maps back via the shared linear address."""
        t = SparseTensor.from_points((3, 3, 3), [(0, 1, 1)], [7.0])
        mat = fold_to_scipy(t).tocoo()
        addr = int(mat.row[0]) * 9 + int(mat.col[0])
        assert addr == 4  # linearize((0,1,1), (3,3,3))

    def test_spmv_through_fold(self, tensor_3d):
        """scipy kernels work on the folded tensor: row sums via SpMV."""
        mat = fold_to_scipy(tensor_3d)
        ones = np.ones(mat.shape[1])
        row_sums = mat @ ones
        # Row r of the fold collects points with coords[0] slice of the
        # smallest dim... validated against a direct group-by.
        from repro.core import fold_coords_2d

        coords2d, _ = fold_coords_2d(tensor_3d.coords, tensor_3d.shape)
        expected = np.zeros(mat.shape[0])
        np.add.at(expected, coords2d[:, 0].astype(np.int64),
                  tensor_3d.values)
        assert np.allclose(row_sums, expected)


class TestPayloadWrapping:
    def test_gcsr_payload(self, tensor_3d):
        fmt = GCSRFormat()
        result = fmt.build(tensor_3d.coords, tensor_3d.shape)
        values = tensor_3d.values[result.perm]
        mat = gcsr_payload_to_scipy(result.payload, result.meta, values)
        assert mat.nnz == tensor_3d.nnz
        assert mat.sum() == pytest.approx(tensor_3d.values.sum())
        # Dense agreement with the fold.
        assert np.allclose(
            mat.toarray(), fold_to_scipy(tensor_3d, format="csr").toarray()
        )

    def test_gcsc_payload(self, tensor_3d):
        fmt = GCSCFormat()
        result = fmt.build(tensor_3d.coords, tensor_3d.shape)
        values = tensor_3d.values[result.perm]
        mat = gcsc_payload_to_scipy(result.payload, result.meta, values)
        assert mat.nnz == tensor_3d.nnz
        assert np.allclose(
            mat.toarray(), fold_to_scipy(tensor_3d, format="csc").toarray()
        )

    def test_wrong_payload_rejected(self):
        with pytest.raises(FormatError):
            gcsr_payload_to_scipy({}, {}, np.empty(0))
        with pytest.raises(FormatError):
            gcsc_payload_to_scipy({}, {}, np.empty(0))
