"""Unit tests for repro.core.costmodel."""

from repro.core import NULL_COUNTER, NullCounter, OpCounter


class TestOpCounter:
    def test_charges_accumulate(self):
        c = OpCounter()
        c.charge_transforms(10)
        c.charge_transforms(5)
        c.charge_comparisons(7)
        c.charge_pointer_lookups(2)
        c.charge_memory(3)
        assert c.transforms == 15
        assert c.comparisons == 7
        assert c.total == 27

    def test_sort_charge_is_nlogn(self):
        c = OpCounter()
        c.charge_sort(8)
        assert c.sort_ops == 24  # 8 * log2(8)

    def test_sort_charge_trivial_sizes_free(self):
        c = OpCounter()
        c.charge_sort(0)
        c.charge_sort(1)
        assert c.sort_ops == 0

    def test_phase_log(self):
        c = OpCounter()
        c.charge_comparisons(4, note="scan")
        assert c.phase_log == [("scan", "comparisons", 4)]

    def test_snapshot(self):
        c = OpCounter()
        c.charge_memory(9)
        snap = c.snapshot()
        assert snap["memory_ops"] == 9
        assert snap["total"] == 9

    def test_reset(self):
        c = OpCounter()
        c.charge_comparisons(4, note="x")
        c.reset()
        assert c.total == 0
        assert c.phase_log == []


class TestNullCounter:
    def test_discards_everything(self):
        c = NullCounter()
        c.charge_transforms(10)
        c.charge_comparisons(10)
        c.charge_sort(100)
        c.charge_pointer_lookups(10)
        c.charge_memory(10)
        assert c.total == 0

    def test_shared_instance_is_null(self):
        NULL_COUNTER.charge_comparisons(1)
        assert NULL_COUNTER.total == 0
