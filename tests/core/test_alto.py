"""Unit tests for the ALTO bit-interleaved linearization core.

Pins the pieces the storage layers build on: per-mode bit masks,
encode/decode round trips (both the spread-table gather and the
segment-loop fallback), per-mode monotonicity, the 64-bit overflow
guard, the sparse address space size, and the BIGMIN-style box→interval
decomposition (exact when the budget allows, a sound superset when it
does not).
"""

import numpy as np
import pytest

from repro.core.dtypes import cell_count
from repro.core.errors import ShapeError
from repro.core.linearize import (
    ADDRESS_ORDERS,
    DEFAULT_ADDRESS_ORDER,
    address_space_size,
    alto_address_bits,
    alto_box_ranges,
    alto_masks,
    delinearize,
    delinearize_alto,
    delinearize_order,
    fits_addr_order,
    fits_alto,
    linearize,
    linearize_alto,
    linearize_order,
    validate_addr_order,
)

SHAPES = [
    (4, 4),
    (4, 2),
    (7,),
    (1024, 256, 64),
    (5, 3, 9, 2, 11),
    (1, 1, 4),
    (1 << 17, 3),  # > _SPREAD_TABLE_BITS: exercises the segment loop
]


def random_coords(shape, n=2048, seed=0):
    rng = np.random.default_rng(seed)
    return np.column_stack(
        [rng.integers(0, m, size=n) for m in shape]
    ).astype(np.uint64)


class TestMasks:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_masks_partition_the_address_space(self, shape):
        masks = alto_masks(shape)
        total = alto_address_bits(shape)
        acc = np.uint64(0)
        for m in masks:
            assert int(acc) & int(m) == 0, "mode masks overlap"
            acc |= m
        assert int(acc) == (1 << total) - 1
        for m, side in zip(masks, shape):
            assert bin(int(m)).count("1") == max(side - 1, 0).bit_length()

    def test_low_bits_interleave_last_mode_first(self):
        # (4, 2): bits (2, 1) → address = d0.b1 d0.b0 d1.b0 (MSB..LSB),
        # mirroring row-major's "last mode varies fastest" at the LSB.
        assert [int(m) for m in alto_masks((4, 2))] == [0b110, 0b001]
        # Equal modes interleave fully (Morton order).
        assert [int(m) for m in alto_masks((4, 4))] == [0b1010, 0b0101]

    def test_morton_reference(self):
        # Independent hand computation for the (4, 4) Morton case.
        coords = np.array([[y, x] for y in range(4) for x in range(4)],
                          dtype=np.uint64)
        got = linearize_alto(coords, (4, 4))
        want = [
            ((y >> 1 & 1) << 3) | ((x >> 1 & 1) << 2)
            | ((y & 1) << 1) | (x & 1)
            for y, x in coords.tolist()
        ]
        assert got.tolist() == want


class TestRoundTrip:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_encode_decode_identity(self, shape):
        coords = random_coords(shape)
        addrs = linearize_alto(coords, shape)
        assert addrs.dtype == np.uint64
        assert int(addrs.max()) < (1 << alto_address_bits(shape))
        np.testing.assert_array_equal(
            delinearize_alto(addrs, shape), coords
        )

    @pytest.mark.parametrize("shape", SHAPES)
    def test_order_dispatch(self, shape):
        coords = random_coords(shape, n=256, seed=3)
        np.testing.assert_array_equal(
            linearize_order(coords, shape, "row_major"),
            linearize(coords, shape),
        )
        np.testing.assert_array_equal(
            linearize_order(coords, shape, "alto"),
            linearize_alto(coords, shape),
        )
        np.testing.assert_array_equal(
            delinearize_order(linearize(coords, shape), shape, "row_major"),
            delinearize(linearize(coords, shape), shape),
        )

    def test_empty(self):
        empty = np.empty((0, 2), dtype=np.uint64)
        assert linearize_alto(empty, (4, 4)).shape == (0,)
        assert delinearize_alto(
            np.empty(0, dtype=np.uint64), (4, 4)
        ).shape == (0, 2)

    @pytest.mark.parametrize("shape", [(8, 8), (1024, 256, 64)])
    def test_monotone_per_mode(self, shape):
        # Holding the other coordinates fixed, the address is strictly
        # increasing in each mode — the property that makes the
        # [lin(origin), lin(end-1)] box envelope sound.
        base = np.array([[m // 2 for m in shape]], dtype=np.uint64)
        for d, m in enumerate(shape):
            sweep = np.repeat(base, m, axis=0)
            sweep[:, d] = np.arange(m, dtype=np.uint64)
            addrs = linearize_alto(sweep, shape)
            assert np.all(np.diff(addrs.astype(np.int64)) > 0)

    def test_out_of_range_rejected(self):
        bad = np.array([[4, 0]], dtype=np.uint64)
        with pytest.raises(ShapeError):
            linearize_alto(bad, (4, 4))


class TestGuards:
    def test_validate_addr_order(self):
        for order in ADDRESS_ORDERS:
            assert validate_addr_order(order) == order
        with pytest.raises(ValueError):
            validate_addr_order("hilbert")
        assert DEFAULT_ADDRESS_ORDER == "row_major"

    def test_overflow_guard(self):
        wide = (1 << 22,) * 3  # 66 interleaved bits
        assert not fits_alto(wide)
        assert not fits_addr_order(wide, "alto")
        with pytest.raises(ShapeError):
            linearize_alto(np.zeros((1, 3), dtype=np.uint64), wide)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_address_space_size(self, shape):
        assert address_space_size(shape, "row_major") == cell_count(shape)
        alto_cells = address_space_size(shape, "alto")
        assert alto_cells == 1 << alto_address_bits(shape)
        assert alto_cells >= cell_count(shape)


class TestBoxRanges:
    @staticmethod
    def oracle(origin, end, shape):
        grids = np.meshgrid(
            *[np.arange(o, e, dtype=np.uint64) for o, e in zip(origin, end)],
            indexing="ij",
        )
        cells = np.column_stack([g.ravel() for g in grids])
        if not cells.size:
            return set()
        return set(linearize_alto(cells, shape).tolist())

    @pytest.mark.parametrize("shape", [(8, 8), (16, 4), (7, 5, 3)])
    def test_exact_cover_with_ample_budget(self, shape):
        rng = np.random.default_rng(11)
        for _ in range(25):
            origin = tuple(int(rng.integers(0, m)) for m in shape)
            end = tuple(
                int(rng.integers(o + 1, m + 1))
                for o, m in zip(origin, shape)
            )
            ranges = alto_box_ranges(origin, end, shape, max_ranges=1 << 16)
            covered = set()
            for lo, hi in ranges:
                assert lo <= hi
                covered.update(range(lo, hi + 1))
            assert covered == self.oracle(origin, end, shape), (
                origin, end, shape
            )
            # Ascending, non-adjacent (adjacent intervals are merged).
            for (alo, ahi), (blo, bhi) in zip(ranges, ranges[1:]):
                assert ahi + 1 < blo

    @pytest.mark.parametrize("shape", [(32, 32), (64, 8, 8)])
    def test_budget_coarsens_soundly(self, shape):
        rng = np.random.default_rng(13)
        for _ in range(10):
            origin = tuple(int(rng.integers(0, m // 2)) for m in shape)
            end = tuple(
                int(rng.integers(o + 2, m + 1))
                for o, m in zip(origin, shape)
            )
            tight = alto_box_ranges(origin, end, shape, max_ranges=1 << 16)
            coarse = alto_box_ranges(origin, end, shape, max_ranges=4)
            # The budget is soft: once full, in-flight sibling subtrees
            # may each still emit one span — bounded by the bit depth.
            assert len(coarse) <= 4 + alto_address_bits(shape)
            want = self.oracle(origin, end, shape)
            covered = set()
            for lo, hi in coarse:
                covered.update(range(lo, hi + 1))
            assert want <= covered, "coarsened ranges dropped addresses"
            assert len(coarse) <= len(tight)

    def test_degenerate_boxes(self):
        assert alto_box_ranges((2, 2), (2, 4), (4, 4)) == []
        full = alto_box_ranges((0, 0), (4, 4), (4, 4))
        assert full == [(0, 15)]
        cell = alto_box_ranges((3, 1), (4, 2), (4, 4))
        addr = int(linearize_alto(
            np.array([[3, 1]], dtype=np.uint64), (4, 4)
        )[0])
        assert cell == [(addr, addr)]
