"""Unit tests for repro.core.linearize."""

import numpy as np
import pytest

from repro.core import (
    ShapeError,
    delinearize,
    delinearize_block_local,
    fold_coords_2d,
    fold_shape_2d,
    linearize,
    linearize_block_local,
)


class TestLinearize:
    def test_paper_fig1_addresses(self, fig1_tensor):
        """Fig 1(a): LINEAR column lists 1, 4, 5, 25, 26."""
        addr = linearize(fig1_tensor.coords, fig1_tensor.shape)
        assert addr.tolist() == [1, 4, 5, 25, 26]

    def test_row_major_formula(self):
        # addr = c1*m2*m3 + c2*m3 + c3
        coords = np.array([[2, 3, 4]], dtype=np.uint64)
        addr = linearize(coords, (5, 6, 7))
        assert addr[0] == 2 * 42 + 3 * 7 + 4

    def test_column_major(self):
        coords = np.array([[2, 3, 4]], dtype=np.uint64)
        addr = linearize(coords, (5, 6, 7), order="col")
        assert addr[0] == 2 + 3 * 5 + 4 * 30

    def test_out_of_bounds_raises(self):
        with pytest.raises(ShapeError, match="outside"):
            linearize(np.array([[5, 0]], dtype=np.uint64), (5, 5))

    def test_skip_validation(self):
        # validate=False allows the caller to take responsibility.
        addr = linearize(
            np.array([[5, 0]], dtype=np.uint64), (5, 5), validate=False
        )
        assert addr[0] == 25

    def test_wrong_dim_count(self):
        with pytest.raises(ShapeError):
            linearize(np.array([[1, 2, 3]], dtype=np.uint64), (5, 5))

    def test_empty(self):
        addr = linearize(np.empty((0, 3), dtype=np.uint64), (2, 2, 2))
        assert addr.shape == (0,)

    def test_bad_order(self):
        with pytest.raises(ValueError, match="order"):
            linearize(np.array([[0, 0]], dtype=np.uint64), (2, 2), order="zig")


class TestDelinearize:
    def test_inverse_row_major(self, rng):
        shape = (7, 11, 13)
        addr = rng.integers(0, 7 * 11 * 13, size=200, dtype=np.uint64)
        coords = delinearize(addr, shape)
        assert np.array_equal(linearize(coords, shape), addr)

    def test_inverse_column_major(self, rng):
        shape = (7, 11, 13)
        addr = rng.integers(0, 7 * 11 * 13, size=200, dtype=np.uint64)
        coords = delinearize(addr, shape, order="col")
        assert np.array_equal(linearize(coords, shape, order="col"), addr)

    def test_address_out_of_range(self):
        with pytest.raises(ShapeError, match="outside"):
            delinearize(np.array([8], dtype=np.uint64), (2, 4))

    def test_requires_1d(self):
        with pytest.raises(ShapeError):
            delinearize(np.zeros((2, 2), dtype=np.uint64), (4, 4))


class TestBlockLocal:
    def test_round_trip(self):
        coords = np.array([[100, 205], [130, 260]], dtype=np.uint64)
        addr = linearize_block_local(coords, (100, 200), (64, 64))
        back = delinearize_block_local(addr, (100, 200), (64, 64))
        assert np.array_equal(back, coords)

    def test_below_origin_rejected(self):
        with pytest.raises(ShapeError, match="below"):
            linearize_block_local(
                np.array([[10, 10]], dtype=np.uint64), (20, 0), (64, 64)
            )

    def test_local_addresses_are_small(self):
        # The whole point: block-local addresses fit narrow ranges even for
        # a far-away block of a huge tensor.
        coords = np.array([[2**50, 2**50 + 3]], dtype=np.uint64)
        addr = linearize_block_local(coords, (2**50, 2**50), (16, 16))
        assert addr[0] == 3


class TestFold2D:
    def test_fold_shape_rows(self):
        # min dim 3 becomes the row count for GCSR++.
        assert fold_shape_2d((4, 3, 5), min_dim_as="rows") == (3, 20)

    def test_fold_shape_cols(self):
        assert fold_shape_2d((4, 3, 5), min_dim_as="cols") == (20, 3)

    def test_fold_preserves_linear_address(self, rng):
        shape = (6, 4, 5)
        coords = np.column_stack(
            [rng.integers(0, m, size=100, dtype=np.uint64) for m in shape]
        )
        addr = linearize(coords, shape)
        coords2d, shape2d = fold_coords_2d(coords, shape)
        addr2d = linearize(coords2d, shape2d)
        assert np.array_equal(addr, addr2d)

    def test_fold_2d_input_is_identity_for_min_rows(self, rng):
        # A 2D tensor whose first dim is smallest folds to itself
        # (GCSR++ "is essentially the 2D CSR", paper §III-C).
        shape = (5, 9)
        coords = np.column_stack(
            [rng.integers(0, m, size=50, dtype=np.uint64) for m in shape]
        )
        coords2d, shape2d = fold_coords_2d(coords, shape)
        assert shape2d == shape
        assert np.array_equal(coords2d, coords)

    def test_zero_size_dim_rejected(self):
        with pytest.raises(ShapeError):
            fold_shape_2d((0, 5))

    def test_bad_min_dim_as(self):
        with pytest.raises(ValueError):
            fold_shape_2d((2, 3), min_dim_as="diag")
