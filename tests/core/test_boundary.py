"""Unit tests for repro.core.boundary."""

import numpy as np
import pytest

from repro.core import Box, ShapeError, boundary_shape, extract_boundary, region_box


class TestBox:
    def test_end_and_cells(self):
        box = Box((1, 2), (3, 4))
        assert box.end == (4, 6)
        assert box.n_cells == 12

    def test_empty(self):
        assert Box((0, 0), (0, 5)).is_empty()
        assert not Box((0, 0), (1, 5)).is_empty()

    def test_contains_point(self):
        box = Box((1, 1), (2, 2))
        assert box.contains_point((1, 2))
        assert box.contains_point((2, 2))
        assert not box.contains_point((3, 2))  # half-open
        assert not box.contains_point((0, 1))

    def test_contains_points_vectorized(self):
        box = Box((1, 1), (2, 2))
        pts = np.array([[1, 1], [2, 2], [3, 3], [0, 0]], dtype=np.uint64)
        assert box.contains_points(pts).tolist() == [True, True, False, False]

    def test_intersects(self):
        a = Box((0, 0), (5, 5))
        assert a.intersects(Box((4, 4), (5, 5)))
        assert not a.intersects(Box((5, 5), (5, 5)))  # touching edges
        assert not a.intersects(Box((0, 0), (0, 5)))  # empty never overlaps

    def test_intersection(self):
        a = Box((0, 0), (5, 5))
        b = Box((3, 2), (5, 5))
        inter = a.intersection(b)
        assert inter.origin == (3, 2)
        assert inter.size == (2, 3)

    def test_disjoint_intersection_is_empty(self):
        a = Box((0, 0), (2, 2))
        assert a.intersection(Box((5, 5), (2, 2))).is_empty()

    def test_grid_coords(self):
        box = Box((1, 2), (2, 2))
        grid = box.grid_coords()
        assert grid.tolist() == [[1, 2], [1, 3], [2, 2], [2, 3]]

    def test_grid_coords_empty(self):
        assert Box((0,), (0,)).grid_coords().shape == (0, 1)

    def test_sample_coords_distinct_and_inside(self, rng):
        box = Box((10, 10, 10), (6, 6, 6))
        pts = box.sample_coords(50, rng)
        assert pts.shape == (50, 3)
        assert box.contains_points(pts).all()
        assert np.unique(pts, axis=0).shape[0] == 50

    def test_sample_more_than_cells_clamps(self, rng):
        box = Box((0, 0), (2, 2))
        pts = box.sample_coords(100, rng)
        assert pts.shape == (4, 2)

    def test_sample_from_large_box(self, rng):
        # Exercises the non-materializing sampling path.
        box = Box((0, 0, 0), (1000, 1000, 1000))
        pts = box.sample_coords(64, rng)
        assert pts.shape == (64, 3)
        assert box.contains_points(pts).all()

    def test_corners(self):
        corners = set(Box((0, 0), (2, 3)).iter_corners())
        assert corners == {(0, 0), (1, 0), (0, 2), (1, 2)}

    def test_dimension_mismatch(self):
        with pytest.raises(ShapeError):
            Box((0, 0), (1,))

    def test_negative_rejected(self):
        with pytest.raises(ShapeError):
            Box((0,), (-1,))


class TestExtractBoundary:
    def test_simple(self):
        coords = np.array([[2, 5], [7, 3]], dtype=np.uint64)
        box = extract_boundary(coords)
        assert box.origin == (2, 3)
        assert box.size == (6, 3)  # inclusive max -> size max-min+1

    def test_empty(self):
        box = extract_boundary(np.empty((0, 3), dtype=np.uint64))
        assert box.is_empty()

    def test_single_point(self):
        box = extract_boundary(np.array([[4, 4, 4]], dtype=np.uint64))
        assert box.origin == (4, 4, 4)
        assert box.size == (1, 1, 1)

    def test_boundary_shape(self):
        coords = np.array([[2, 5], [7, 3]], dtype=np.uint64)
        assert boundary_shape(coords) == (8, 6)


class TestRegionBox:
    def test_paper_read_region(self):
        # start (m/2, ...), size (m/10, ...) for m=512.
        box = region_box((512, 512, 512), start_frac=0.5, size_frac=0.1)
        assert box.origin == (256, 256, 256)
        assert box.size == (51, 51, 51)

    def test_region_clipped_to_shape(self):
        box = region_box((10,), start_frac=0.9, size_frac=0.5)
        assert box.origin == (9,)
        assert box.size == (1,)

    def test_msp_region(self):
        box = region_box((90, 90), start_frac=1 / 3, size_frac=1 / 3)
        assert box.origin == (30, 30)
        assert box.size == (30, 30)
