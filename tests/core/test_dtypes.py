"""Unit tests for repro.core.dtypes."""

import numpy as np
import pytest

from repro.core import (
    INDEX_DTYPE,
    INDEX_MAX,
    IndexOverflowError,
    as_index_array,
    cell_count,
    check_linearizable,
    column_major_strides,
    fits_index_dtype,
    row_major_strides,
)
from repro.core.dtypes import safe_mul


class TestCellCount:
    def test_simple(self):
        assert cell_count((3, 4, 5)) == 60

    def test_empty_shape(self):
        assert cell_count(()) == 1

    def test_zero_dimension(self):
        assert cell_count((5, 0, 3)) == 0

    def test_exact_beyond_uint64(self):
        # Exact arithmetic even past the 64-bit boundary.
        assert cell_count((2**40, 2**40)) == 2**80


class TestFitsAndCheck:
    def test_fits_small(self):
        assert fits_index_dtype((1000, 1000, 1000))

    def test_fits_exact_boundary(self):
        # 2^64 cells: last address is 2^64 - 1 == INDEX_MAX -> fits.
        assert fits_index_dtype((2**32, 2**32))

    def test_overflow_one_past_boundary(self):
        assert not fits_index_dtype((2**32, 2**32 + 1))

    def test_check_raises_with_guidance(self):
        with pytest.raises(IndexOverflowError, match="blocks"):
            check_linearizable((2**40, 2**40))

    def test_check_passes_paper_shapes(self):
        for shape in [(8192, 8192), (512,) * 3, (128,) * 4]:
            check_linearizable(shape)


class TestAsIndexArray:
    def test_converts_lists(self):
        arr = as_index_array([1, 2, 3])
        assert arr.dtype == INDEX_DTYPE
        assert arr.tolist() == [1, 2, 3]

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            as_index_array(np.array([-1, 2], dtype=np.int64))

    def test_rejects_fractional_floats(self):
        with pytest.raises(ValueError, match="integral"):
            as_index_array(np.array([1.5, 2.0]))

    def test_accepts_integral_floats(self):
        assert as_index_array(np.array([1.0, 2.0])).tolist() == [1, 2]

    def test_is_contiguous(self):
        base = np.arange(20, dtype=np.uint64).reshape(4, 5)
        view = base[:, ::2]
        out = as_index_array(view)
        assert out.flags["C_CONTIGUOUS"]


class TestStrides:
    def test_row_major_3d(self):
        assert row_major_strides((3, 4, 5)).tolist() == [20, 5, 1]

    def test_column_major_3d(self):
        assert column_major_strides((3, 4, 5)).tolist() == [1, 3, 12]

    def test_row_major_1d(self):
        assert row_major_strides((7,)).tolist() == [1]

    def test_strides_dtype(self):
        assert row_major_strides((2, 2)).dtype == INDEX_DTYPE

    def test_overflow_guard(self):
        with pytest.raises(IndexOverflowError):
            row_major_strides((2**33, 2**33))


class TestSafeMul:
    def test_ok(self):
        assert safe_mul(3, 4) == 12

    def test_boundary(self):
        assert safe_mul(INDEX_MAX, 1) == INDEX_MAX

    def test_overflow(self):
        with pytest.raises(IndexOverflowError):
            safe_mul(INDEX_MAX, 2)
