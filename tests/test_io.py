"""Unit tests for external dataset I/O (Matrix Market / .tns / .npz)."""

import numpy as np
import pytest

from repro.core import ShapeError, SparseTensor
from repro.io import (
    load_dataset,
    read_matrix_market,
    read_tns,
    write_matrix_market,
    write_tns,
)


class TestMatrixMarket:
    def test_round_trip(self, tmp_path, tensor_2d):
        path = tmp_path / "m.mtx"
        write_matrix_market(path, tensor_2d, comment="test matrix")
        back = read_matrix_market(path)
        # mmwrite stores explicit shape, so shapes match exactly.
        assert back.shape == tensor_2d.shape
        assert back.same_points(tensor_2d)

    def test_3d_rejected_on_write(self, tmp_path, tensor_3d):
        with pytest.raises(ShapeError, match="2D"):
            write_matrix_market(tmp_path / "x.mtx", tensor_3d)

    def test_reads_scipy_written_file(self, tmp_path, rng):
        import scipy.io
        import scipy.sparse as sp

        mat = sp.random(30, 40, density=0.1, random_state=3, format="coo")
        scipy.io.mmwrite(str(tmp_path / "s.mtx"), mat)
        t = read_matrix_market(tmp_path / "s.mtx")
        assert t.shape == (30, 40)
        assert np.allclose(t.to_dense(), mat.toarray())


class TestTns:
    def test_round_trip(self, tmp_path, tensor_4d):
        path = tmp_path / "t.tns"
        write_tns(path, tensor_4d)
        back = read_tns(path)
        # .tns infers shape from max coordinates: may be tighter.
        assert back.nnz == tensor_4d.nnz
        assert np.array_equal(
            back.sorted_lexicographic().coords,
            tensor_4d.sorted_lexicographic().coords,
        )
        assert np.allclose(
            back.sorted_lexicographic().values,
            tensor_4d.sorted_lexicographic().values,
        )

    def test_parses_frostt_style(self, tmp_path):
        (tmp_path / "f.tns").write_text(
            "# a comment\n"
            "% another comment\n"
            "1 1 2 3.5\n"
            "2 3 1 -1.0\n"
        )
        t = read_tns(tmp_path / "f.tns")
        assert t.shape == (2, 3, 2)
        assert t.to_dense()[0, 0, 1] == 3.5
        assert t.to_dense()[1, 2, 0] == -1.0

    def test_zero_based_rejected(self, tmp_path):
        (tmp_path / "f.tns").write_text("0 1 2.0\n")
        with pytest.raises(ShapeError, match="1-based"):
            read_tns(tmp_path / "f.tns")

    def test_ragged_rejected(self, tmp_path):
        (tmp_path / "f.tns").write_text("1 1 2.0\n1 2 3 4.0\n")
        with pytest.raises(ShapeError, match="inconsistent"):
            read_tns(tmp_path / "f.tns")

    def test_empty_rejected(self, tmp_path):
        (tmp_path / "f.tns").write_text("# nothing\n")
        with pytest.raises(ShapeError, match="no data"):
            read_tns(tmp_path / "f.tns")


class TestLoadDataset:
    def test_dispatch_npz(self, tmp_path, tensor_3d):
        np.savez(tmp_path / "d.npz",
                 shape=np.asarray(tensor_3d.shape),
                 coords=tensor_3d.coords, values=tensor_3d.values)
        t = load_dataset(tmp_path / "d.npz")
        assert t.same_points(tensor_3d)

    def test_dispatch_tns(self, tmp_path, tensor_3d):
        write_tns(tmp_path / "d.tns", tensor_3d)
        assert load_dataset(tmp_path / "d.tns").nnz == tensor_3d.nnz

    def test_dispatch_mtx(self, tmp_path, tensor_2d):
        write_matrix_market(tmp_path / "d.mtx", tensor_2d)
        assert load_dataset(tmp_path / "d.mtx").same_points(tensor_2d)

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(ShapeError, match="extension"):
            load_dataset(tmp_path / "d.parquet")

    def test_real_workflow_into_store(self, tmp_path, tensor_2d):
        """mtx file -> load -> advisor -> store: the SuiteSparse on-ramp."""
        from repro import FragmentStore, recommend

        write_matrix_market(tmp_path / "web.mtx", tensor_2d)
        t = load_dataset(tmp_path / "web.mtx")
        pick = recommend(t).best
        store = FragmentStore(tmp_path / "ds", t.shape, pick)
        store.write_tensor(t)
        out = store.read_points(t.coords)
        assert out.found.all()
