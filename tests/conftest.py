"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SparseTensor


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def fig1_tensor() -> SparseTensor:
    """The paper's Fig 1 example: a 3x3x3 tensor with five points."""
    return SparseTensor.from_points(
        (3, 3, 3),
        [(0, 0, 1), (0, 1, 1), (0, 1, 2), (2, 2, 1), (2, 2, 2)],
        [1.0, 2.0, 3.0, 4.0, 5.0],
    )


def random_tensor(
    shape: tuple[int, ...],
    n: int,
    rng: np.random.Generator,
) -> SparseTensor:
    """A random deduplicated sparse tensor with ``<= n`` points."""
    coords = np.column_stack(
        [rng.integers(0, m, size=n, dtype=np.uint64) for m in shape]
    )
    values = rng.standard_normal(n)
    return SparseTensor(shape, coords, values).deduplicated()


@pytest.fixture
def tensor_2d(rng) -> SparseTensor:
    return random_tensor((50, 70), 300, rng)


@pytest.fixture
def tensor_3d(rng) -> SparseTensor:
    return random_tensor((20, 30, 40), 500, rng)


@pytest.fixture
def tensor_4d(rng) -> SparseTensor:
    return random_tensor((10, 12, 14, 16), 700, rng)


@pytest.fixture(params=["2d", "3d", "4d"])
def any_tensor(request, tensor_2d, tensor_3d, tensor_4d) -> SparseTensor:
    return {"2d": tensor_2d, "3d": tensor_3d, "4d": tensor_4d}[request.param]


def query_mix(
    tensor: SparseTensor, rng: np.random.Generator, n_absent: int = 50
) -> tuple[np.ndarray, np.ndarray]:
    """Queries mixing all present points with random (possibly absent) cells.

    Returns ``(query_coords, expected_found_mask)``.
    """
    from repro.core import linearize

    absent = np.column_stack(
        [rng.integers(0, m, size=n_absent, dtype=np.uint64) for m in tensor.shape]
    )
    queries = np.vstack([tensor.coords, absent])
    stored = set(linearize(tensor.coords, tensor.shape).tolist())
    q_addr = linearize(queries, tensor.shape)
    expected = np.array([int(a) in stored for a in q_addr])
    return queries, expected
