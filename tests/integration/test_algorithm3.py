"""Integration tests: the full Algorithm 3 WRITE/READ pipeline across
multiple fragments, every format, disk round-trips included."""

import numpy as np
import pytest

from repro.core import Box, SparseTensor
from repro.formats import available_formats
from repro.patterns import GSPPattern, MSPPattern
from repro.storage import FragmentStore


@pytest.fixture(scope="module")
def dataset():
    """An MSP tensor split into four spatial quadrant writes."""
    tensor = MSPPattern(
        (96, 96), background_threshold=0.99, region_density=0.1
    ).generate(21)
    quads = []
    for ox in (0, 48):
        for oy in (0, 48):
            box = Box((ox, oy), (48, 48))
            part = tensor.select_box(box)
            if part.nnz:
                quads.append(part)
    return tensor, quads


@pytest.mark.parametrize("fmt_name", available_formats())
class TestMultiFragmentPipeline:
    def test_write_read_whole_region(self, tmp_path, dataset, fmt_name):
        tensor, quads = dataset
        store = FragmentStore(tmp_path / "ds", tensor.shape, fmt_name)
        for part in quads:
            store.write(part.coords, part.values)
        assert len(store.fragments) == len(quads)

        # Read a window spanning all four quadrants.
        window = Box((24, 24), (48, 48))
        got = store.read_box(window)
        want = tensor.select_box(window).sorted_by_linear()
        assert got.same_points(want), fmt_name

    def test_point_queries_across_fragments(self, tmp_path, dataset, fmt_name):
        tensor, quads = dataset
        store = FragmentStore(tmp_path / "ds", tensor.shape, fmt_name)
        for part in quads:
            store.write(part.coords, part.values)
        out = store.read_points(tensor.coords)
        assert out.found.all()
        assert np.allclose(out.values, tensor.values)

    def test_pruning_visits_only_overlapping_fragments(
        self, tmp_path, dataset, fmt_name
    ):
        tensor, quads = dataset
        store = FragmentStore(tmp_path / "ds", tensor.shape, fmt_name)
        for part in quads:
            store.write(part.coords, part.values)
        # A query inside one quadrant visits exactly one fragment (bbox
        # permitting; quadrant bboxes are disjoint by construction).
        probe = np.array([[10, 10]], dtype=np.uint64)
        out = store.read_points(probe)
        assert out.fragments_visited <= 2


class TestOverwriteSemantics:
    def test_append_then_overwrite(self, tmp_path):
        shape = (32, 32)
        store = FragmentStore(tmp_path / "ds", shape, "GCSR++")
        base = GSPPattern(shape, threshold=0.9).generate(3)
        store.write_tensor(base)
        # Rewrite a sub-box with new values.
        box = Box((8, 8), (8, 8))
        patch = base.select_box(box)
        if patch.nnz == 0:
            pytest.skip("random patch empty")
        store.write(patch.coords, patch.values + 100.0)
        out = store.read_points(patch.coords)
        assert np.allclose(out.values, patch.values + 100.0)
        # Untouched points keep original values.
        outside = base.select_box(Box((20, 20), (12, 12)))
        if outside.nnz:
            out2 = store.read_points(outside.coords)
            assert np.allclose(out2.values, outside.values)


class TestMixedDimensionality:
    @pytest.mark.parametrize("shape", [(64,), (16, 16, 16), (8, 8, 8, 8)])
    def test_shapes_1d_to_4d(self, tmp_path, shape):
        rng = np.random.default_rng(5)
        total = int(np.prod(shape))
        addr = rng.choice(total, size=min(200, total // 2), replace=False)
        from repro.core import delinearize

        coords = delinearize(addr.astype(np.uint64), shape)
        tensor = SparseTensor(shape, coords, rng.standard_normal(len(addr)))
        for fmt_name in ("LINEAR", "GCSR++", "CSF"):
            if len(shape) == 1 and fmt_name == "CSF":
                pass  # 1D CSF degenerates to a single leaf level — still valid
            store = FragmentStore(
                tmp_path / f"{fmt_name}-{len(shape)}", shape, fmt_name
            )
            store.write_tensor(tensor)
            out = store.read_points(tensor.coords)
            assert out.found.all(), (fmt_name, shape)
            assert np.allclose(out.values, tensor.values), (fmt_name, shape)
