"""Measured operation counts vs the Table I closed forms.

The op-counting layer is how this reproduction validates Table I exactly
(wall-clock on NumPy has the wrong constants).  For each organization,
BUILD and READ are run with an OpCounter and the tallies are compared
against :mod:`repro.analysis.complexity`'s formulas.
"""

import numpy as np
import pytest

from repro.analysis import build_ops, read_ops
from repro.core import OpCounter
from repro.formats import get_format
from repro.patterns import GSPPattern

SHAPE = (24, 24, 24)


@pytest.fixture(scope="module")
def tensor():
    return GSPPattern(SHAPE, threshold=0.97).generate(9)


@pytest.fixture(scope="module")
def queries(tensor):
    rng = np.random.default_rng(4)
    absent = np.column_stack(
        [rng.integers(0, m, size=100, dtype=np.uint64) for m in SHAPE]
    )
    return np.vstack([tensor.coords[:100], absent])


def measured_counts(fmt_name, tensor, queries):
    fmt = get_format(fmt_name)
    build_counter = OpCounter()
    result = fmt.build(tensor.coords, tensor.shape, counter=build_counter)
    read_counter = OpCounter()
    fmt.read_faithful(
        result.payload, result.meta, tensor.shape, queries,
        counter=read_counter,
    )
    return build_counter, read_counter


class TestBuildCounts:
    def test_coo(self, tensor, queries):
        b, _ = measured_counts("COO", tensor, queries)
        assert b.total == 0  # O(1): nothing charged per point

    def test_linear(self, tensor, queries):
        b, _ = measured_counts("LINEAR", tensor, queries)
        assert b.total == build_ops("LINEAR", tensor.nnz, SHAPE)

    @pytest.mark.parametrize("fmt", ["GCSR++", "GCSC++"])
    def test_gcsr_family(self, tensor, queries, fmt):
        b, _ = measured_counts(fmt, tensor, queries)
        n = tensor.nnz
        # Table I: n log n (sort) + 2n (one transform + one packaging
        # operation per point).
        assert b.sort_ops == pytest.approx(n * np.log2(n), rel=0.01)
        assert b.transforms == n
        assert b.memory_ops == n
        assert b.total == pytest.approx(build_ops(fmt, n, SHAPE), rel=0.01)

    def test_csf(self, tensor, queries):
        b, _ = measured_counts("CSF", tensor, queries)
        n = tensor.nnz
        assert b.sort_ops == pytest.approx(n * np.log2(n), rel=0.01)
        assert b.transforms == n * 3  # the n*d tree pass

    def test_build_ordering_matches_table1(self, tensor, queries):
        """Measured totals reproduce COO < LINEAR < GCSR++ <= GCSC++ <= CSF."""
        totals = [
            measured_counts(f, tensor, queries)[0].total
            for f in ("COO", "LINEAR", "GCSR++", "GCSC++", "CSF")
        ]
        assert totals == sorted(totals)


class TestReadCounts:
    def test_coo_exact(self, tensor, queries):
        _, r = measured_counts("COO", tensor, queries)
        assert r.comparisons == tensor.nnz * queries.shape[0]

    def test_linear_exact(self, tensor, queries):
        _, r = measured_counts("LINEAR", tensor, queries)
        q = queries.shape[0]
        assert r.comparisons == tensor.nnz * q
        assert r.transforms == q * 3

    @pytest.mark.parametrize("fmt", ["GCSR++", "GCSC++"])
    def test_gcsr_family_close_to_model(self, tensor, queries, fmt):
        _, r = measured_counts(fmt, tensor, queries)
        q = queries.shape[0]
        model = read_ops(fmt, tensor.nnz, q, SHAPE)
        # The model uses the average row occupancy; actual segment lengths
        # vary, so allow 50 %.
        assert r.total == pytest.approx(model, rel=0.5)

    def test_csf_logarithmic(self, tensor, queries):
        _, r = measured_counts("CSF", tensor, queries)
        q = queries.shape[0]
        n = tensor.nnz
        # Far below any scan: within q * d * log2(n).
        assert r.comparisons <= q * 3 * np.ceil(np.log2(n + 1))
        assert r.comparisons < n * q / 10

    def test_read_ordering_matches_table1(self, tensor, queries):
        """Measured read totals reproduce CSF < GCSR++/GCSC++ << LINEAR <=
        COO (fastest first) for a 3D tensor."""
        totals = {
            f: measured_counts(f, tensor, queries)[1].total
            for f in ("COO", "LINEAR", "GCSR++", "GCSC++", "CSF")
        }
        assert totals["CSF"] < totals["GCSR++"]
        assert totals["GCSR++"] < totals["LINEAR"] / 10
        assert totals["GCSC++"] < totals["LINEAR"] / 10
        assert totals["LINEAR"] <= totals["COO"] * 1.01
