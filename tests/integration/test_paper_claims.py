"""Integration tests for the paper's headline empirical claims.

These run small-but-real write/read benchmarks and check the *orderings*
the paper reports (who wins, where the crossovers are) rather than absolute
times — the shape-preservation contract of this reproduction (DESIGN.md §4,
§6).  Size claims are deterministic; time claims use op counts where
wall-clock would be flaky.
"""

import numpy as np
import pytest

from repro.core import OpCounter
from repro.formats import get_format
from repro.patterns import GSPPattern, TSPPattern, make_pattern
from repro.storage import PERLMUTTER_LUSTRE


def index_nbytes(fmt_name, tensor):
    result = get_format(fmt_name).build(tensor.coords, tensor.shape)
    return result.index_nbytes()


@pytest.fixture(scope="module")
def gsp_3d():
    return GSPPattern((48, 48, 48), threshold=0.99).generate(31)


@pytest.fixture(scope="module")
def gsp_4d():
    return GSPPattern((20, 20, 20, 20), threshold=0.99).generate(32)


@pytest.fixture(scope="module")
def gsp_2d():
    return GSPPattern((320, 320), threshold=0.99).generate(33)


class TestFileSizeClaims:
    """§III-B: LINEAR < GCSR++ <= GCSC++ <= CSF <= COO."""

    def test_size_ordering_gsp(self, gsp_3d):
        sizes = {
            f: index_nbytes(f, gsp_3d)
            for f in ("COO", "LINEAR", "GCSR++", "GCSC++", "CSF")
        }
        assert sizes["LINEAR"] < sizes["GCSR++"]
        assert sizes["GCSR++"] == sizes["GCSC++"]
        assert sizes["GCSC++"] <= sizes["CSF"]
        assert sizes["CSF"] <= sizes["COO"]

    def test_coo_reduction_factor_is_d(self, gsp_4d):
        """'the potential reduction in storage space can be as much as
        O(d) times' — LINEAR stores d x fewer index bytes than COO."""
        coo = index_nbytes("COO", gsp_4d)
        lin = index_nbytes("LINEAR", gsp_4d)
        assert coo == 4 * lin

    def test_csf_varies_with_pattern(self):
        """§III-B: CSF size varies across patterns; clustered TSP
        compresses far better than uniform GSP."""
        shape = (64, 64, 64)
        tsp = TSPPattern(shape, band_width=1).generate(7)
        gsp = GSPPattern(shape, threshold=0.995).generate(7)

        def csf_per_point(t):
            return index_nbytes("CSF", t) / t.nnz

        assert csf_per_point(tsp) < 0.75 * csf_per_point(gsp)

    def test_csf_within_paper_bounds(self, gsp_3d):
        """CSF size between the §II-E best and worst cases."""
        from repro.analysis import csf_space_bounds

        elements = index_nbytes("CSF", gsp_3d) // 8
        bounds = csf_space_bounds(gsp_3d.nnz, gsp_3d.ndim)
        # fptr pointers add <= one entry per node + per-level terminators.
        assert bounds.best <= elements <= 2 * bounds.worst


class TestWriteClaims:
    """§III-A: build cost ordering + the COO payback effect."""

    def test_build_op_ordering(self, gsp_3d):
        totals = []
        for f in ("COO", "LINEAR", "GCSR++", "GCSC++", "CSF"):
            c = OpCounter()
            get_format(f).build(gsp_3d.coords, gsp_3d.shape, counter=c)
            totals.append(c.total)
        assert totals == sorted(totals)

    def test_coo_payback_on_modeled_pfs(self, gsp_4d):
        """Table III's lesson: COO's free build loses to LINEAR once the
        4x-larger fragment goes through the filesystem model."""
        coo_bytes = index_nbytes("COO", gsp_4d) + gsp_4d.nnz * 8
        lin_bytes = index_nbytes("LINEAR", gsp_4d) + gsp_4d.nnz * 8
        coo_total = PERLMUTTER_LUSTRE.write_time(coo_bytes)  # build ~ 0
        # LINEAR pays n*d transforms at ~1e9 ops/s, then writes fewer bytes.
        lin_build = gsp_4d.nnz * 4 / 1e9
        lin_total = lin_build + PERLMUTTER_LUSTRE.write_time(lin_bytes)
        assert lin_total < coo_total

    def test_gcsc_sort_work_exceeds_gcsr_on_row_major_input(self, gsp_3d):
        """§III-A / Table III: with row-major-ordered input, GCSR++'s sort
        keys are presorted while GCSC++'s are scattered.  Measured via the
        actual permutation displacement (proxy for sort + gather work)."""
        t = gsp_3d.sorted_by_linear()
        gcsr = get_format("GCSR++").build(t.coords, t.shape)
        gcsc = get_format("GCSC++").build(t.coords, t.shape)
        disp_r = np.abs(gcsr.perm - np.arange(t.nnz)).mean()
        disp_c = np.abs(gcsc.perm - np.arange(t.nnz)).mean()
        assert disp_r == 0.0
        assert disp_c > t.nnz / 10


class TestReadClaims:
    """§III-C: read cost orderings and the 2D/3D crossover for CSF."""

    def _read_total(self, fmt_name, tensor, q=64):
        fmt = get_format(fmt_name)
        result = fmt.build(tensor.coords, tensor.shape)
        rng = np.random.default_rng(0)
        queries = tensor.coords[
            rng.choice(tensor.nnz, size=min(q, tensor.nnz), replace=False)
        ]
        c = OpCounter()
        fmt.read_faithful(result.payload, result.meta, tensor.shape, queries,
                          counter=c)
        return c.total

    def test_compressed_formats_beat_scans_3d(self, gsp_3d):
        coo = self._read_total("COO", gsp_3d)
        gcsr = self._read_total("GCSR++", gsp_3d)
        csf = self._read_total("CSF", gsp_3d)
        assert gcsr < coo / 10
        assert csf < coo / 10

    def test_csf_beats_gcsr_at_4d_but_not_2d(self, gsp_2d, gsp_4d):
        """§III-C: 'CSF exhibits lower performance when handling 2D tensors
        but surpasses GCSR++/GCSC++ when dealing with 3D or 4D tensors.'

        In 2D, GCSR++ is plain CSR with short rows and no fold overhead; in
        4D the folded rows are long and CSF's descent wins."""
        # 4D: CSF clearly cheaper.
        assert (
            self._read_total("CSF", gsp_4d)
            < 0.5 * self._read_total("GCSR++", gsp_4d)
        )
        # 2D: GCSR++ at least competitive (CSF not more than ~2x better,
        # typically worse; at 320x320 with ~1k points rows are short).
        csf_2d = self._read_total("CSF", gsp_2d)
        gcsr_2d = self._read_total("GCSR++", gsp_2d)
        assert gcsr_2d < 3 * csf_2d

    def test_gcsr_degrades_with_dimensionality(self, gsp_2d, gsp_4d):
        """Read cost per query grows with d for GCSR++ (longer folded
        rows), the paper's scalability caveat (§IV)."""
        per_q_2d = self._read_total("GCSR++", gsp_2d) / 64
        per_q_4d = self._read_total("GCSR++", gsp_4d) / 64
        assert per_q_4d > per_q_2d
