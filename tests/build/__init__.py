"""Tests for the unified build pipeline (repro.build)."""
