"""encode_all: build-once-encode-many, bit-identity, and accounting."""

import numpy as np
import pytest

from repro import encode_all
from repro.build import CanonicalCoords
from repro.core import OpCounter, SparseTensor
from repro.formats import available_formats, get_format

from .test_canonical import metered  # noqa: F401

#: Shape with ascending dimension sizes, so CSF's size-sorted dimension
#: permutation is the identity and its lexicographic order coincides with
#: the canonical address order (the maximal-sharing configuration).
ASCENDING_SHAPE = (5, 7, 9, 11)

#: Formats whose BUILD consumes the shared linearize/sort prerequisites.
SHARING_FORMATS = ("LINEAR", "COO-SORTED", "GCSR++", "GCSC++", "CSF")


def dup_tensor(rng, shape=ASCENDING_SHAPE, n=400) -> SparseTensor:
    """Random tensor that deliberately KEEPS duplicate coordinates."""
    coords = np.column_stack(
        [rng.integers(0, m, size=n, dtype=np.uint64) for m in shape]
    )
    coords[n // 2:n // 2 + 20] = coords[:20]  # guaranteed duplicates
    return SparseTensor(shape, coords, rng.standard_normal(n))


def assert_encodings_identical(got, want, label=""):
    """Bit-identical payload arrays, dtypes, meta, and value buffers."""
    assert got.payload.keys() == want.payload.keys(), label
    for key in want.payload:
        assert got.payload[key].dtype == want.payload[key].dtype, (
            f"{label}: payload[{key}] dtype"
        )
        np.testing.assert_array_equal(
            got.payload[key], want.payload[key],
            err_msg=f"{label}: payload[{key}]",
        )
    assert got.meta == want.meta, f"{label}: meta"
    assert got.values.dtype == want.values.dtype, f"{label}: values dtype"
    np.testing.assert_array_equal(
        got.values, want.values, err_msg=f"{label}: values"
    )


class TestBitIdentity:
    @pytest.mark.parametrize("fmt_name", available_formats())
    def test_build_canonical_matches_build(self, rng, fmt_name):
        t = dup_tensor(rng)
        fmt = get_format(fmt_name)
        legacy = fmt.build(t.coords, t.shape)
        canonical = fmt.build_canonical(
            CanonicalCoords.from_coords(t.coords, t.shape)
        )
        assert canonical.payload.keys() == legacy.payload.keys()
        for key in legacy.payload:
            assert canonical.payload[key].dtype == legacy.payload[key].dtype
            np.testing.assert_array_equal(
                canonical.payload[key], legacy.payload[key],
                err_msg=f"{fmt_name}: payload[{key}]",
            )
        assert canonical.meta == legacy.meta
        if legacy.perm is None:
            assert canonical.perm is None
        else:
            np.testing.assert_array_equal(canonical.perm, legacy.perm)

    @pytest.mark.parametrize("fmt_name", available_formats())
    def test_encode_all_matches_independent_encode(self, rng, fmt_name):
        t = dup_tensor(rng)
        shared = encode_all(t, formats=[fmt_name])[fmt_name]
        assert_encodings_identical(
            shared, get_format(fmt_name).encode(t), fmt_name
        )

    def test_encode_all_every_format_in_one_pass(self, rng):
        t = dup_tensor(rng)
        out = encode_all(t, formats=available_formats())
        assert list(out) == list(available_formats())
        for name, enc in out.items():
            assert_encodings_identical(
                enc, get_format(name).encode(t), name
            )

    def test_empty_tensor(self):
        t = SparseTensor(
            (3, 4), np.empty((0, 2), dtype=np.uint64), np.empty(0)
        )
        out = encode_all(t, formats=available_formats())
        for enc in out.values():
            assert enc.nnz == 0


class TestSharedPrerequisites:
    def test_linearize_and_sort_paid_exactly_once(self, rng, metered):  # noqa: F811
        """Acceptance criterion: encode_all over the sharing formats
        computes the linearize pass and the stable address sort exactly
        once, however many formats consume them."""
        t = dup_tensor(rng)
        encode_all(t, formats=SHARING_FORMATS)
        assert metered("build.canonical.linearize") == 1
        assert metered("build.canonical.sorts") == 1
        # Every format past the first reads prerequisites from the cache.
        assert metered("build.canonical.reuse") >= len(SHARING_FORMATS) - 1

    def test_nonidentity_csf_charges_its_own_sort(self, rng, metered):  # noqa: F811
        """With a descending shape CSF's dimension permutation is not the
        identity, so it pays one extra sort — and only one."""
        t = dup_tensor(rng, shape=(11, 9, 7, 5))
        encode_all(t, formats=SHARING_FORMATS)
        assert metered("build.canonical.linearize") == 1
        assert metered("build.canonical.sorts") == 2


class TestOpCounterAttribution:
    @pytest.mark.parametrize("fmt_name", available_formats())
    def test_charges_match_standalone_build(self, rng, fmt_name):
        """Table-III accounting describes the algorithm, not the cache:
        encode_all must charge each format's OpCounter exactly what a
        standalone build would."""
        t = dup_tensor(rng)
        standalone = OpCounter()
        get_format(fmt_name).build(t.coords, t.shape, counter=standalone)
        shared = OpCounter()
        encode_all(t, formats=[fmt_name], counters={fmt_name: shared})
        assert shared.snapshot() == standalone.snapshot(), fmt_name


class TestConvert:
    @pytest.mark.parametrize("src_name", available_formats())
    @pytest.mark.parametrize("dst_name", available_formats())
    def test_convert_preserves_points(self, rng, src_name, dst_name):
        t = dup_tensor(rng, shape=(6, 7, 8), n=150).deduplicated()
        converted = get_format(src_name).encode(t).convert(dst_name)
        assert converted.fmt.name == dst_name
        out = converted.read_points(t.coords)
        assert out.found.all(), f"{src_name}->{dst_name}"
        np.testing.assert_allclose(out.values, t.values)

    def test_convert_resolves_duplicates_newest_wins(self):
        coords = np.array([[0, 1], [2, 2], [0, 1]], dtype=np.uint64)
        t = SparseTensor((3, 3), coords, np.array([1.0, 2.0, 9.0]))
        enc = get_format("COO").encode(t)  # verbatim: keeps the duplicate
        for dst in available_formats():
            out = enc.convert(dst).read_points(
                np.array([[0, 1]], dtype=np.uint64)
            )
            assert out.found[0] and out.values[0] == 9.0, dst
