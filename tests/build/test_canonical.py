"""CanonicalCoords: lazy caching, obs accounting, and duplicate policy."""

import numpy as np
import pytest

from repro import obs
from repro.build import DUPLICATE_POLICY, CanonicalCoords
from repro.core import SparseTensor, linearize
from repro.core.errors import ShapeError
from repro.core.sorting import lexsort_rows


def counter_total(snapshot, name: str) -> int:
    """Sum an obs counter across all label sets (0 when absent)."""
    return sum(
        c["value"] for c in snapshot["counters"] if c["name"] == name
    )


@pytest.fixture
def metered():
    """Enable + reset obs for a test, restoring the prior state after."""
    was_enabled = obs.is_enabled()
    obs.enable()
    obs.reset()
    yield lambda name: counter_total(obs.snapshot(), name)
    obs.reset()
    if not was_enabled:
        obs.disable()


def dup_coords():
    """A buffer with duplicate coordinates (policy: last one wins)."""
    return np.array(
        [[2, 1], [0, 3], [2, 1], [1, 0], [0, 3], [2, 1]], dtype=np.uint64
    )


class TestLaziness:
    def test_construction_computes_nothing(self, metered):
        CanonicalCoords.from_coords(dup_coords(), (4, 4))
        assert metered("build.canonical.linearize") == 0
        assert metered("build.canonical.sorts") == 0

    def test_each_artifact_computed_once(self, metered):
        canon = CanonicalCoords.from_coords(dup_coords(), (4, 4))
        for _ in range(3):
            canon.addresses
            canon.sort_perm
            canon.dedup_runs
        assert metered("build.canonical.linearize") == 1
        assert metered("build.canonical.sorts") == 1
        assert metered("build.canonical.dedup_runs") == 1
        assert metered("build.canonical.reuse") > 0

    def test_from_addresses_delinearizes_once(self, metered):
        addr = np.array([3, 0, 9, 3], dtype=np.uint64)
        canon = CanonicalCoords.from_addresses(addr, (4, 4))
        canon.coords
        canon.coords
        assert metered("build.canonical.delinearize") == 1
        # Addresses were given, never recomputed.
        assert metered("build.canonical.linearize") == 0

    def test_is_sorted_addresses_never_pay_a_sort(self, metered):
        addr = np.array([0, 3, 3, 9], dtype=np.uint64)
        canon = CanonicalCoords.from_addresses(addr, (4, 4), is_sorted=True)
        np.testing.assert_array_equal(
            canon.sort_perm, np.arange(4, dtype=np.intp)
        )
        np.testing.assert_array_equal(canon.sorted_addresses, addr)
        assert metered("build.canonical.sorts") == 0


class TestArtifacts:
    def test_addresses_match_linearize(self):
        coords = dup_coords()
        canon = CanonicalCoords.from_coords(coords, (4, 4))
        np.testing.assert_array_equal(
            canon.addresses, linearize(coords, (4, 4))
        )

    def test_sort_perm_is_stable(self):
        canon = CanonicalCoords.from_coords(dup_coords(), (4, 4))
        perm = canon.sort_perm
        sorted_addr = canon.addresses[perm]
        assert (np.diff(sorted_addr.astype(np.int64)) >= 0).all()
        # Equal addresses keep input order: the three (2,1) duplicates at
        # input rows 0, 2, 5 must appear in that order after the sort.
        addr_21 = int(linearize(np.array([[2, 1]], dtype=np.uint64), (4, 4))[0])
        run = perm[sorted_addr == addr_21]
        np.testing.assert_array_equal(run, [0, 2, 5])

    def test_dedup_runs_cover_all_points(self):
        canon = CanonicalCoords.from_coords(dup_coords(), (4, 4))
        uniq, offsets = canon.dedup_runs
        assert uniq.shape[0] == canon.n_unique == 3
        assert offsets[0] == 0 and offsets[-1] == canon.n
        assert canon.has_duplicates()

    def test_bounding_box_is_tight(self):
        canon = CanonicalCoords.from_coords(dup_coords(), (10, 10))
        box = canon.bounding_box
        assert box.origin == (0, 0)
        assert box.size == (3, 4)

    def test_empty_buffer(self):
        canon = CanonicalCoords.from_coords(
            np.empty((0, 3), dtype=np.uint64), (4, 4, 4)
        )
        assert canon.n == 0
        assert canon.n_unique == 0
        assert not canon.has_duplicates()
        assert canon.dedup_selection().shape == (0,)


class TestDuplicatePolicy:
    def test_policy_is_last(self):
        assert DUPLICATE_POLICY == "last"

    @pytest.mark.parametrize("keep", ["first", "last"])
    def test_dedup_selection_matches_sparse_tensor(self, rng, keep):
        coords = np.column_stack(
            [rng.integers(0, 5, size=200, dtype=np.uint64) for _ in range(3)]
        )
        values = rng.standard_normal(200)
        t = SparseTensor((5, 5, 5), coords, values)
        sel = CanonicalCoords.from_coords(coords, t.shape).dedup_selection(
            keep=keep
        )
        want = t.deduplicated(keep=keep)
        np.testing.assert_array_equal(coords[sel], want.coords)
        np.testing.assert_array_equal(values[sel], want.values)

    def test_dedup_selection_rejects_unknown_keep(self):
        canon = CanonicalCoords.from_coords(dup_coords(), (4, 4))
        with pytest.raises(ValueError, match="keep"):
            canon.dedup_selection(keep="middle")


class TestOrderingForDims:
    def test_identity_permutation_reuses_cached_sort(self, metered):
        canon = CanonicalCoords.from_coords(dup_coords(), (4, 4))
        base = canon.sort_perm
        again = canon.ordering_for_dims([0, 1], (4, 4))
        assert again is base
        assert metered("build.canonical.sorts") == 1

    def test_permuted_order_matches_lexsort(self, rng, metered):
        coords = np.column_stack(
            [rng.integers(0, 6, size=80, dtype=np.uint64) for _ in range(3)]
        )
        canon = CanonicalCoords.from_coords(coords, (6, 6, 6))
        perm = canon.ordering_for_dims([2, 0, 1], (6, 6, 6))
        np.testing.assert_array_equal(perm, lexsort_rows(coords[:, [2, 0, 1]]))
        assert metered("build.canonical.sorts") == 1


class TestRebased:
    def test_rebase_preserves_sort_permutation(self, metered):
        coords = np.array(
            [[12, 21], [10, 23], [12, 21], [11, 20]], dtype=np.uint64
        )
        canon = CanonicalCoords.from_coords(coords, (32, 32))
        base = canon.sort_perm
        local = canon.rebased((10, 20), (3, 4))
        np.testing.assert_array_equal(
            local.coords, coords - np.array([10, 20], dtype=np.uint64)
        )
        # Translation is monotone in address order: the cached permutation
        # carries over, no second sort is charged.
        np.testing.assert_array_equal(local.sort_perm, base)
        assert metered("build.canonical.sorts") == 1


class TestValidation:
    def test_needs_coords_or_addresses(self):
        with pytest.raises(ShapeError):
            CanonicalCoords((4, 4))

    def test_rejects_mismatched_dims(self):
        with pytest.raises(ShapeError):
            CanonicalCoords.from_coords(dup_coords(), (4, 4, 4))

    def test_rejects_non_2d_coords(self):
        with pytest.raises(ShapeError):
            CanonicalCoords.from_coords(
                np.zeros(5, dtype=np.uint64), (4,)
            )

    def test_rejects_sorted_flag_with_explicit_perm(self):
        with pytest.raises(ShapeError):
            CanonicalCoords.from_addresses(
                np.array([1, 2], dtype=np.uint64),
                (4, 4),
                is_sorted=True,
                sort_perm=np.array([0, 1], dtype=np.intp),
            )
