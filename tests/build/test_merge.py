"""merge_sorted_runs: the k-way newest-wins merge behind compaction."""

import numpy as np

from repro import merge_sorted_runs
from repro.build.merge import SortedRun
from repro.core import SparseTensor, linearize

from .test_canonical import metered  # noqa: F401


def run_from_tensor(t: SparseTensor) -> SortedRun:
    """A fragment-style sorted run from a (possibly duplicated) tensor."""
    addr = linearize(t.coords, t.shape)
    order = np.argsort(addr, kind="stable").astype(np.intp)
    return SortedRun(
        addresses=addr[order], values=t.values[order], positions=order
    )


class TestMergeSemantics:
    def test_empty_run_list(self):
        merged = merge_sorted_runs([], (4, 4))
        assert merged.canonical.n == 0
        assert merged.values.shape == (0,)

    def test_single_run_passes_through(self):
        t = SparseTensor(
            (4, 4),
            np.array([[3, 1], [0, 2], [1, 1]], dtype=np.uint64),
            np.array([1.0, 2.0, 3.0]),
        )
        merged = merge_sorted_runs([run_from_tensor(t)], t.shape)
        np.testing.assert_array_equal(merged.canonical.coords, t.coords)
        np.testing.assert_array_equal(merged.values, t.values)

    def test_newest_run_wins_on_overlap(self):
        old = SparseTensor(
            (4, 4),
            np.array([[1, 1], [2, 2]], dtype=np.uint64),
            np.array([1.0, 2.0]),
        )
        new = SparseTensor(
            (4, 4), np.array([[1, 1]], dtype=np.uint64), np.array([9.0])
        )
        merged = merge_sorted_runs(
            [run_from_tensor(old), run_from_tensor(new)], (4, 4)
        )
        assert merged.canonical.n == 2
        got = dict(
            zip(map(tuple, merged.canonical.coords.tolist()),
                merged.values.tolist())
        )
        assert got == {(1, 1): 9.0, (2, 2): 2.0}

    def test_duplicates_within_one_run_keep_last_stored(self):
        addr = np.array([5, 5, 9], dtype=np.uint64)
        run = SortedRun(
            addresses=addr,
            values=np.array([1.0, 7.0, 3.0]),
            positions=np.array([0, 1, 2], dtype=np.intp),
        )
        merged = merge_sorted_runs([run], (4, 4))
        got = dict(
            zip(merged.canonical.addresses.tolist(), merged.values.tolist())
        )
        assert got == {5: 7.0, 9: 3.0}

    def test_matches_decode_and_rebuild_order(self, rng):
        """The merge must reproduce the legacy decode-rebuild compaction
        exactly: concatenate fragments oldest-first, dedup keep-last."""
        shape = (9, 11)
        chunks = []
        for _ in range(4):
            coords = np.column_stack(
                [rng.integers(0, m, size=60, dtype=np.uint64) for m in shape]
            )
            chunks.append(
                SparseTensor(shape, coords, rng.standard_normal(60))
                .deduplicated()
            )
        merged = merge_sorted_runs(
            [run_from_tensor(t) for t in chunks], shape
        )
        legacy = SparseTensor(
            shape,
            np.vstack([t.coords for t in chunks]),
            np.concatenate([t.values for t in chunks]),
        ).deduplicated(keep="last")
        np.testing.assert_array_equal(merged.canonical.coords, legacy.coords)
        np.testing.assert_array_equal(merged.values, legacy.values)


class TestMergeAccounting:
    def test_merge_counters_and_no_extra_sort_downstream(self, rng, metered):  # noqa: F811
        shape = (8, 8)
        runs = []
        for _ in range(3):
            coords = np.column_stack(
                [rng.integers(0, 8, size=20, dtype=np.uint64)
                 for _ in range(2)]
            )
            runs.append(run_from_tensor(
                SparseTensor(shape, coords, rng.standard_normal(20))
                .deduplicated()
            ))
        merged = merge_sorted_runs(runs, shape)
        assert metered("build.merge.runs") == 3
        assert metered("build.merge.points") == sum(
            r.addresses.shape[0] for r in runs
        )
        # The merged canonical already knows its sort permutation, so
        # downstream builds (LINEAR here) never re-sort.
        np.testing.assert_array_equal(
            merged.canonical.addresses[merged.canonical.sort_perm],
            merged.canonical.sorted_addresses,
        )
        from repro.formats import get_format

        get_format("LINEAR").build_canonical(merged.canonical)
        assert metered("build.canonical.sorts") == 0

    def test_merged_canonical_sort_perm_is_consistent(self, rng):
        shape = (6, 6, 6)
        runs = []
        for _ in range(2):
            coords = np.column_stack(
                [rng.integers(0, 6, size=30, dtype=np.uint64)
                 for _ in range(3)]
            )
            runs.append(run_from_tensor(
                SparseTensor(shape, coords, rng.standard_normal(30))
                .deduplicated()
            ))
        canon = merge_sorted_runs(runs, shape).canonical
        recomputed = np.argsort(canon.addresses, kind="stable")
        np.testing.assert_array_equal(
            canon.addresses[canon.sort_perm], canon.addresses[recomputed]
        )
