"""End-to-end tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestFormats:
    def test_lists_all(self, capsys):
        assert main(["formats"]) == 0
        out = capsys.readouterr().out
        for name in ("COO", "LINEAR", "GCSR++", "GCSC++", "CSF", "HICOO"):
            assert name in out

    def test_paper_only(self, capsys):
        main(["formats", "--paper-only"])
        out = capsys.readouterr().out
        assert "HICOO" not in out


class TestGenerateEncodeInfo:
    def test_pipeline(self, tmp_path, capsys):
        npz = tmp_path / "data.npz"
        store = tmp_path / "store"
        assert main(["generate", "GSP", "32", "32", "-o", str(npz),
                     "--seed", "1"]) == 0
        assert npz.exists()
        assert main(["encode", str(npz), str(store), "-f", "CSF"]) == 0
        assert (store / "frag-000000.bin").exists()
        assert main(["info", str(store)]) == 0
        out = capsys.readouterr().out
        assert "frag-000000.bin" in out
        assert "CSF" in out

    def test_generated_npz_is_loadable(self, tmp_path):
        npz = tmp_path / "d.npz"
        main(["generate", "TSP", "64", "64", "-o", str(npz)])
        with np.load(npz) as data:
            assert data["coords"].shape[1] == 2
            assert data["coords"].shape[0] == data["values"].shape[0]

    def test_encode_with_codec(self, tmp_path, capsys):
        npz = tmp_path / "d.npz"
        main(["generate", "MSP", "64", "64", "-o", str(npz)])
        assert main(["encode", str(npz), str(tmp_path / "s"),
                     "--codec", "delta-zlib"]) == 0


class TestAdvise:
    def test_recommends(self, tmp_path, capsys):
        npz = tmp_path / "d.npz"
        main(["generate", "GSP", "48", "48", "48", "-o", str(npz)])
        assert main(["advise", str(npz), "-w", "analytical"]) == 0
        out = capsys.readouterr().out
        assert "recommendation:" in out
        assert "COO" in out  # full ranking shown

    def test_workload_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["advise", "x.npz", "-w", "chaotic"])


class TestExperiment:
    def test_runs_table2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert main(["experiment", "table2", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig9"])


class TestFsck:
    def encoded_store(self, tmp_path):
        npz = tmp_path / "d.npz"
        store = tmp_path / "store"
        main(["generate", "GSP", "32", "32", "-o", str(npz), "--seed", "2"])
        main(["encode", str(npz), str(store)])
        return store

    def test_clean_store_exits_zero(self, tmp_path, capsys):
        store = self.encoded_store(tmp_path)
        capsys.readouterr()  # drain generate/encode output
        assert main(["fsck", str(store)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corrupt_store_exits_nonzero(self, tmp_path, capsys):
        store = self.encoded_store(tmp_path)
        frag = store / "frag-000000.bin"
        blob = bytearray(frag.read_bytes())
        blob[-10] ^= 0xFF
        frag.write_bytes(bytes(blob))
        assert main(["fsck", str(store)]) == 1
        out = capsys.readouterr().out
        assert "corrupt" in out
        assert "frag-000000.bin" in out

    def test_repair_quarantines_and_exits_zero(self, tmp_path, capsys):
        store = self.encoded_store(tmp_path)
        frag = store / "frag-000000.bin"
        blob = bytearray(frag.read_bytes())
        blob[-10] ^= 0xFF
        frag.write_bytes(bytes(blob))
        assert main(["fsck", str(store), "--repair"]) == 0
        assert "quarantined" in capsys.readouterr().out
        assert (store / ".quarantine" / "frag-000000.bin").exists()
        # A second pass is clean.
        assert main(["fsck", str(store)]) == 0

    def test_json_output_parses(self, tmp_path, capsys):
        import json

        store = self.encoded_store(tmp_path)
        capsys.readouterr()  # drain generate/encode output
        assert main(["fsck", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["checked"] >= 1
