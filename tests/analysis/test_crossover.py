"""Unit tests for the GCSR++/CSF read crossover analysis."""

import pytest

from repro.analysis.crossover import (
    compare_read_costs,
    critical_occupancy,
    dimensionality_sweep,
    measured_crossover,
)
from repro.patterns import GSPPattern


class TestModelCrossover:
    def test_2d_gcsr_competitive(self):
        """At 2D with a large min dimension, rows are short: GCSR++ wins
        or ties (the paper's 2D observation)."""
        pt = compare_read_costs(100_000, (8192, 8192))
        assert pt.gcsr_per_query < 4 * pt.csf_per_query

    def test_4d_csf_wins(self):
        """At 4D the folded rows hold ~n/128 points: CSF must win big."""
        pt = compare_read_costs(100_000, (128, 128, 128, 128))
        assert pt.csf_wins
        assert pt.csf_per_query < pt.gcsr_per_query / 10

    def test_sweep_monotone_toward_csf(self):
        """At ~constant cell count, growing d shrinks min(m) and lengthens
        rows: the GCSR/CSF cost ratio must grow with d."""
        points = dimensionality_sweep(500_000, min_dim=2, max_dim=5)
        ratios = [p.gcsr_per_query / p.csf_per_query for p in points]
        assert ratios == sorted(ratios)
        assert points[-1].csf_wins

    def test_critical_occupancy_small(self):
        """The crossover occupancy is tens of points, not thousands —
        which is why CSF wins every realistic high-d case."""
        occ = critical_occupancy(1_000_000, 4)
        assert 10 < occ < 100

    def test_critical_occupancy_validates(self):
        with pytest.raises(ValueError):
            critical_occupancy(0, 3)


class TestMeasuredCrossover:
    def test_4d_measured_matches_model(self):
        tensor = GSPPattern((20, 20, 20, 20), threshold=0.99).generate(5)
        pt = measured_crossover(tensor)
        assert pt.csf_wins
        # Occupancy n/min(m) is far above the critical threshold.
        assert pt.row_occupancy > critical_occupancy(tensor.nnz, 4)

    def test_2d_measured_short_rows(self):
        tensor = GSPPattern((400, 400), threshold=0.99).generate(5)
        pt = measured_crossover(tensor)
        # Short rows: GCSR++ within a small factor of CSF (no blowout).
        assert pt.gcsr_per_query < 5 * pt.csf_per_query
