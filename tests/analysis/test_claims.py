"""Unit tests for the paper-claims validator, on fabricated sweeps."""

import pytest

from repro.analysis.claims import (
    ALL_CHECKS,
    claims_report,
    evaluate_claims,
)
from repro.bench.runner import ReadMeasurement, WriteMeasurement
from repro.bench.sweep import SweepRecord, SweepResult
from repro.patterns.suite import DatasetSpec


def make_record(pattern, ndim, fmt, *, build_s, write_s, read_s,
                index_bytes, nnz=1000):
    """Fabricate one sweep record with controlled numbers."""
    spec = DatasetSpec(ndim=ndim, pattern=pattern,
                       shape=(64,) * ndim, seed=0)
    write = WriteMeasurement(
        format_name=fmt,
        nnz=nnz,
        build_seconds=build_s,
        reorg_seconds=0.0,
        write_seconds=write_s,
        others_seconds=0.0,
        total_seconds=build_s + write_s,
        index_nbytes=index_bytes,
        value_nbytes=nnz * 8,
        file_nbytes=index_bytes + nnz * 8,
        modeled_pfs_write_seconds=write_s,
    )
    read = ReadMeasurement(
        format_name=fmt,
        n_queries=100,
        n_found=50,
        extract_seconds=0.0,
        query_seconds=read_s,
        merge_seconds=0.0,
        total_seconds=read_s,
        fragments_visited=1,
        bytes_read=index_bytes,
        modeled_pfs_read_seconds=read_s,
    )
    return SweepRecord(spec=spec, write=write, read=read)


def paper_shaped_sweep() -> SweepResult:
    """A sweep whose numbers follow every claim in the paper."""
    sweep = SweepResult()
    for pattern in ("TSP", "GSP", "MSP"):
        for ndim in (2, 3, 4):
            n = 1000
            per_fmt = {
                # fmt: (build, write, read, index_bytes)
                "COO": (0.0, 0.10, 1.00, n * ndim * 8),
                "LINEAR": (0.01, 0.03, 0.80, n * 8),
                "GCSR++": (0.05, 0.03, 0.01, n * 8 + 520),
                "GCSC++": (0.08, 0.03, 0.01, n * 8 + 520),
                # CSF size varies by pattern (prefix sharing).
                "CSF": (0.07, 0.05, 0.005,
                        {"TSP": n * 10, "GSP": n * 22, "MSP": n * 16}[pattern]),
            }
            for fmt, (b, w, r, size) in per_fmt.items():
                sweep.records.append(
                    make_record(pattern, ndim, fmt, build_s=b, write_s=w,
                                read_s=r, index_bytes=size, nnz=n)
                )
    return sweep


def broken_sweep() -> SweepResult:
    """A sweep contradicting the paper (everything uniform)."""
    sweep = SweepResult()
    for pattern in ("TSP", "GSP"):
        for ndim in (2, 3):
            for fmt in ("COO", "LINEAR", "GCSR++", "GCSC++", "CSF"):
                sweep.records.append(
                    make_record(pattern, ndim, fmt, build_s=0.05,
                                write_s=0.05, read_s=0.05,
                                index_bytes=8000)
                )
    return sweep


class TestClaimsOnPaperShapedSweep:
    @pytest.fixture(scope="class")
    def results(self):
        return evaluate_claims(paper_shaped_sweep())

    def test_all_pass(self, results):
        failing = [r.claim_id for r in results if not r.passed]
        assert failing == []

    def test_one_result_per_check(self, results):
        assert len(results) == len(ALL_CHECKS)
        assert len({r.claim_id for r in results}) == len(results)

    def test_evidence_present(self, results):
        assert all(r.evidence for r in results)


class TestClaimsOnBrokenSweep:
    def test_structural_claims_fail(self):
        results = {r.claim_id: r for r in evaluate_claims(broken_sweep())}
        # Sizes are identical everywhere: the orderings cannot hold.
        assert not results["C3"].passed
        assert not results["C4"].passed
        assert not results["C6"].passed


class TestReport:
    def test_report_renders(self):
        text = claims_report(paper_shaped_sweep())
        assert "scorecard" in text
        assert "7/7" in text
        assert "PASS" in text

    def test_report_marks_failures(self):
        text = claims_report(broken_sweep())
        assert "FAIL" in text
