"""Unit tests for the Table I closed forms."""

import pytest

from repro.analysis import (
    PREDICTED_BUILD_ORDER,
    PREDICTED_READ_ORDER,
    PREDICTED_SIZE_ORDER,
    build_ops,
    csf_space_bounds,
    predicted_growth_exponent,
    read_ops,
    sort_ops,
    space_elements,
)
from repro.core.errors import FormatError

SHAPE = (128, 128, 128, 128)
N = 100_000
Q = 1000


class TestBuildOps:
    def test_coo_constant(self):
        assert build_ops("COO", N, SHAPE) == 1
        assert build_ops("COO", 10 * N, SHAPE) == 1

    def test_linear_nd(self):
        assert build_ops("LINEAR", N, SHAPE) == N * 4

    def test_gcsr_nlogn_plus_2n(self):
        assert build_ops("GCSR++", N, SHAPE) == sort_ops(N) + 2 * N
        assert build_ops("GCSC++", N, SHAPE) == build_ops("GCSR++", N, SHAPE)

    def test_csf_nlogn_plus_nd(self):
        assert build_ops("CSF", N, SHAPE) == sort_ops(N) + N * 4

    def test_ranking_matches_paper(self):
        """§III-A: COO > LINEAR > GCSR++ >= GCSC++ > CSF (fastest first)."""
        costs = [build_ops(f, N, SHAPE) for f in PREDICTED_BUILD_ORDER]
        assert costs == sorted(costs)

    def test_unknown(self):
        with pytest.raises(FormatError):
            build_ops("BTREE", N, SHAPE)


class TestReadOps:
    def test_coo_nq(self):
        assert read_ops("COO", N, Q, SHAPE) == N * Q

    def test_linear_nq_plus_transform(self):
        assert read_ops("LINEAR", N, Q, SHAPE) == N * Q + Q * 4

    def test_gcsr_row_scan(self):
        # q * n / min(m) segment scan + q fold transforms + 2q indptr loads.
        expected = -(-Q * N // 128) + Q + 2 * Q
        assert read_ops("GCSR++", N, Q, SHAPE) == expected

    def test_csf_logarithmic(self):
        assert read_ops("CSF", N, Q, SHAPE) < read_ops("GCSR++", N, Q, SHAPE)

    def test_ranking_matches_paper(self):
        """§III-C: CSF >= GCSR++ >= GCSC++ > LINEAR >= COO (fastest first)
        at high dimensionality.  Table I gives COO and LINEAR the same
        O(n*q) read; LINEAR's extra q*d transform term is a 0.004 % ripple
        the ordering treats as a tie."""
        costs = [read_ops(f, N, Q, SHAPE) for f in PREDICTED_READ_ORDER]
        for fast, slow in zip(costs, costs[1:]):
            assert fast <= slow * 1.01

    def test_gcsr_read_degrades_with_dimensionality(self):
        """§III-C: GCSR++ read cost grows with d (at fixed n the folded rows
        get longer), while CSF's shrinks relative to it."""
        gcsr_2d = read_ops("GCSR++", N, Q, (320, 320))
        gcsr_4d = read_ops("GCSR++", N, Q, (10, 10, 32, 32))
        assert gcsr_4d > gcsr_2d


class TestSpace:
    def test_values(self):
        assert space_elements("COO", N, SHAPE) == 4 * N
        assert space_elements("LINEAR", N, SHAPE) == N
        assert space_elements("GCSR++", N, SHAPE) == N + 128 + 1

    def test_ranking_matches_paper(self):
        """§III-B: LINEAR < GCSR++ <= GCSC++ <= CSF <= COO."""
        deterministic = [f for f in PREDICTED_SIZE_ORDER if f != "CSF"]
        costs = [space_elements(f, N, SHAPE) for f in deterministic]
        assert costs == sorted(costs)

    def test_csf_requires_bounds(self):
        with pytest.raises(FormatError, match="data-dependent"):
            space_elements("CSF", N, SHAPE)

    def test_csf_bounds(self):
        b = csf_space_bounds(N, 4)
        assert b.best == N + 4
        assert b.worst == 4 * N
        assert b.best < b.average < b.worst
        # The paper's average formula: 2n(1 - (1/2)^d).
        assert b.average == pytest.approx(2 * N * (1 - 0.5**4), abs=1)


class TestGrowthExponents:
    def test_build(self):
        assert predicted_growth_exponent("COO", operation="build") == 0.0
        assert predicted_growth_exponent("CSF", operation="build") == 1.0

    def test_read(self):
        assert predicted_growth_exponent("COO", operation="read-per-query") == 1.0
        assert predicted_growth_exponent("CSF", operation="read-per-query") == 0.0

    def test_bad_operation(self):
        with pytest.raises(ValueError):
            predicted_growth_exponent("COO", operation="delete")
