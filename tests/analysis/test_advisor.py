"""Unit tests for the format advisor (paper future-work feature)."""

import pytest

from repro.analysis import ANALYTICAL, ARCHIVAL, BALANCED, Workload, recommend
from repro.patterns import GSPPattern, TSPPattern, characterize


@pytest.fixture(scope="module")
def gsp_tensor():
    return GSPPattern((64, 64, 64), threshold=0.99).generate(11)


class TestWorkload:
    def test_defaults(self):
        w = Workload()
        assert w.write_weight == w.read_weight == w.size_weight == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload(write_weight=-1)
        with pytest.raises(ValueError):
            Workload(reads_per_write=-2)

    def test_presets_distinct(self):
        assert ARCHIVAL.size_weight > ANALYTICAL.size_weight
        assert ANALYTICAL.reads_per_write > ARCHIVAL.reads_per_write


class TestRecommend:
    def test_ranks_all_formats(self, gsp_tensor):
        rec = recommend(gsp_tensor, BALANCED)
        assert len(rec.ranked) == 5
        assert 0 <= rec.ranked[0].combined <= rec.ranked[-1].combined <= 1.0

    def test_accepts_stats(self, gsp_tensor):
        stats = characterize(gsp_tensor)
        rec = recommend(stats, BALANCED)
        assert rec.best in {"LINEAR", "GCSR++", "GCSC++", "CSF"}

    def test_coo_never_best_balanced(self, gsp_tensor):
        """The paper's central finding: COO is the worst balanced choice."""
        rec = recommend(gsp_tensor, BALANCED)
        assert rec.order()[-1] == "COO" or rec.ranked[-1].format_name == "COO"

    def test_balanced_prefers_linear_family(self, gsp_tensor):
        """Table IV: LINEAR/GCSR++ hold the best balanced scores."""
        rec = recommend(gsp_tensor, BALANCED)
        assert rec.best in {"LINEAR", "GCSR++"}

    def test_read_heavy_penalizes_scan_formats(self, gsp_tensor):
        rec = recommend(gsp_tensor, ANALYTICAL)
        order = rec.order()
        # Scan-based reads sink to the bottom under a read-heavy workload.
        assert order.index("CSF") < order.index("COO")
        assert order.index("GCSR++") < order.index("COO")

    def test_archival_rewards_small_indexes(self, gsp_tensor):
        rec = recommend(gsp_tensor, ARCHIVAL)
        assert rec.best == "LINEAR"

    def test_clustered_data_improves_csf(self):
        """TSP's prefix sharing lowers CSF's predicted space vs GSP."""
        shape = (64, 64, 64)
        tsp = recommend(TSPPattern(shape, band_width=1).generate(3), BALANCED)
        gsp = recommend(GSPPattern(shape, threshold=0.99).generate(3), BALANCED)

        def csf_space(rec):
            return next(
                p.space_cost for p in rec.ranked if p.format_name == "CSF"
            )

        # Normalize by nnz to compare across different point counts.
        tsp_ratio = csf_space(tsp) / tsp.stats.nnz
        gsp_ratio = csf_space(gsp) / gsp.stats.nnz
        assert tsp_ratio < gsp_ratio

    def test_custom_format_subset(self, gsp_tensor):
        rec = recommend(gsp_tensor, BALANCED, formats=("COO", "LINEAR"))
        assert set(rec.order()) == {"COO", "LINEAR"}
