"""Unit tests for power-law fitting."""

import numpy as np
import pytest

from repro.analysis import exponent_matches, fit_power_law


class TestFit:
    def test_exact_power_law(self):
        xs = np.array([10, 100, 1000, 10000], dtype=float)
        ys = 3.0 * xs**1.5
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5)
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_constant_series(self):
        xs = [10.0, 100.0, 1000.0]
        ys = [7.0, 7.0, 7.0]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.0, abs=1e-12)

    def test_nlogn_fits_slightly_above_one(self):
        xs = np.array([2**k for k in range(8, 16)], dtype=float)
        ys = xs * np.log2(xs)
        fit = fit_power_law(xs, ys)
        assert 1.0 < fit.exponent < 1.2

    def test_predict(self):
        fit = fit_power_law([1.0, 10.0], [2.0, 20.0])
        assert fit.predict(100.0) == pytest.approx(200.0)

    def test_noise_tolerance(self, rng):
        xs = np.logspace(1, 4, 12)
        ys = xs**2 * rng.uniform(0.9, 1.1, size=12)
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0, abs=0.1)
        assert fit.r_squared > 0.99

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [0.0, 1.0])

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0])


class TestExponentMatches:
    def test_within_tolerance(self):
        fit = fit_power_law([10.0, 100.0], [10.0, 110.0])
        assert exponent_matches(fit, 1.0)

    def test_outside_tolerance(self):
        fit = fit_power_law([10.0, 100.0], [100.0, 10000.0])
        assert not exponent_matches(fit, 1.0)
