"""ShardedStore crash-consistency: kill every commit op and recover.

Mirrors ``test_crash_consistency.py`` one level up: each workload —
routed ``write_many``, ``split``, ``merge``, store creation — is first
run under :class:`~repro.testing.faults.OpRecorder` to enumerate every
durability-layer op, then replayed once per op with a plan that kills
exactly that op.  The invariants (docs/SHARDED_STORE.md):

* reopening from disk always succeeds — or raises ``ManifestError``
  explicitly demanding ``fsck --repair``, after which it succeeds;
* each child store holds a *prefix* of the parts routed to it, and a
  band-table swap (split/merge) is all-or-nothing: the reopened store
  shows either the old layout or the new one, never a mix;
* ``fsck --repair`` always restores a clean tree without silently
  dropping a committed fragment, and reads afterwards still match a
  single FragmentStore fed the same writes.
"""

import warnings

import numpy as np
import pytest

from repro.core.errors import ManifestError
from repro.storage import FragmentStore, ShardedStore, fsck_sharded
from repro.testing.faults import (
    FaultPlan,
    FaultRule,
    OpRecorder,
    inject,
    plan_for_crash_point,
)

SHAPE = (32, 32)  # 1024 cells; 2 shards cut at address 512 (row 16)
N_PARTS = 3

# Children with crash-orphaned fragments warn when lazily opened mid-read;
# that advisory is by design and asserted on elsewhere — not noise here.
pytestmark = pytest.mark.filterwarnings(
    "ignore:.*not in the manifest.*:UserWarning"
)


def part(j):
    """Part ``j``: 5 points on row ``j`` + 5 on row ``16+j``.

    Every part straddles both bands, and parts are pairwise disjoint, so
    per-child prefixes are directly observable from which rows read back.
    """
    rows = np.concatenate([
        np.full(5, j, dtype=np.uint64),
        np.full(5, 16 + j, dtype=np.uint64),
    ])
    cols = np.tile(np.arange(5, dtype=np.uint64), 2)
    values = float(j * 100) + np.arange(10, dtype=float)
    return np.column_stack([rows, cols]), values


def make_store(directory, **kw):
    return ShardedStore(directory, SHAPE, "LINEAR", n_shards=2, **kw)


def reopen(directory):
    with warnings.catch_warnings():
        # Orphaned child fragments warn on open, by design.
        warnings.simplefilter("ignore", UserWarning)
        return make_store(directory)


def make_single(directory, n_parts=N_PARTS):
    single = FragmentStore(directory, SHAPE, "LINEAR")
    for j in range(n_parts):
        single.write(*part(j))
    return single


def assert_shard_prefixes(store):
    """Each band holds a prefix of the parts routed to it."""
    lower = []  # parts visible in the low band
    upper = []  # parts visible in the high band
    for j in range(N_PARTS):
        coords, values = part(j)
        out = store.read_points(coords)
        lo_found, hi_found = out.found[:5], out.found[5:]
        assert lo_found.all() or not lo_found.any(), \
            f"part {j} partially present in low band"
        assert hi_found.all() or not hi_found.any(), \
            f"part {j} partially present in high band"
        if lo_found.all():
            lower.append(j)
            lo_vals = out.values[: int(out.found[:5].sum())]
            assert np.allclose(lo_vals, values[:5])
        if hi_found.all():
            upper.append(j)
    assert lower == list(range(len(lower))), f"low band not a prefix: {lower}"
    assert upper == list(range(len(upper))), f"high band not a prefix: {upper}"
    return lower, upper


def assert_matches_single(store, single, *, n_parts=N_PARTS):
    for j in range(n_parts):
        coords, values = part(j)
        a = store.read_points(coords)
        b = single.read_points(coords)
        assert np.array_equal(a.found, b.found)
        assert np.array_equal(a.values, b.values)


class TestCreationCrash:
    def record(self, tmp_path):
        recorder = OpRecorder()
        with inject(recorder):
            make_store(tmp_path / "record")
        return recorder.events

    def test_creation_ops(self, tmp_path):
        events = self.record(tmp_path)
        # 2 sidecars (write+rename each) + the parent manifest commit.
        assert [e.op for e in events] == ["write", "rename"] * 3
        assert events[-1].path.name == "shards.json"

    def test_every_creation_crash_recovers(self, tmp_path):
        events = self.record(tmp_path)
        for index in range(len(events)):
            directory = tmp_path / f"crash-{index}"
            plan = plan_for_crash_point(events, index)
            with inject(plan), pytest.raises(OSError):
                make_store(directory)
            assert plan.fired
            try:
                store = reopen(directory)
            except ManifestError:
                report = fsck_sharded(directory, repair=True)
                assert report.repaired
                store = reopen(directory)
            # The recovered store covers the address space and works.
            assert store.shards[0].addr_lo == 0
            assert store.shards[-1].addr_hi == 32 * 32
            store.write(*part(0))
            assert store.read_points(part(0)[0]).found.all()


class TestRoutedWriteCrash:
    def record(self, tmp_path):
        store = make_store(tmp_path / "record")
        recorder = OpRecorder()
        with inject(recorder):
            store.write_many([part(j) for j in range(N_PARTS)])
        return recorder.events

    def run_crash(self, tmp_path, events, index, torn_bytes=None):
        directory = tmp_path / f"crash-{index}-{torn_bytes}"
        store = make_store(directory)
        plan = plan_for_crash_point(events, index, torn_bytes=torn_bytes)
        with inject(plan), pytest.raises(OSError):
            store.write_many([part(j) for j in range(N_PARTS)])
        assert plan.fired, "the planned fault never triggered"
        return directory

    def test_every_write_crash_recovers(self, tmp_path):
        events = self.record(tmp_path)
        single = make_single(tmp_path / "single")
        outcomes = []
        for index in range(len(events)):
            directory = self.run_crash(tmp_path, events, index)
            store = reopen(directory)
            lower, upper = assert_shard_prefixes(store)
            outcomes.append((len(lower), len(upper)))

            found_before = sum(
                int(store.read_points(part(j)[0]).found.sum())
                for j in range(N_PARTS)
            )
            report = fsck_sharded(directory, repair=True)
            assert report.repaired
            assert fsck_sharded(directory).clean
            repaired = reopen(directory)
            # Repair recovers orphans, never drops committed points.
            found_after = sum(
                int(repaired.read_points(part(j)[0]).found.sum())
                for j in range(N_PARTS)
            )
            assert found_after >= found_before
            assert_shard_prefixes(repaired)
            # The store keeps working after recovery: re-write every
            # part and converge to the single-store state.
            repaired.write_many([part(j) for j in range(N_PARTS)])
            assert_matches_single(repaired, single)
        # Coverage sanity: some crash commits nothing, none commit all
        # parts in both bands before the last injected op.
        assert min(sum(o) for o in outcomes) == 0
        assert max(sum(o) for o in outcomes) > 0

    def test_torn_parent_manifest(self, tmp_path):
        events = self.record(tmp_path)
        torn_indices = [
            i for i, e in enumerate(events)
            if e.op == "write" and e.path.name == "shards.json.tmp"
        ]
        assert torn_indices
        for index in torn_indices:
            for torn in (0, 1, 100):
                directory = self.run_crash(
                    tmp_path, events, index, torn_bytes=torn
                )
                # The committed parent manifest survives a torn tmp.
                store = reopen(directory)
                assert_shard_prefixes(store)
                fsck_sharded(directory, repair=True)
                assert fsck_sharded(directory).clean


class SplitMergeBase:
    def build(self, directory):
        store = make_store(directory)
        store.write_many([part(j) for j in range(N_PARTS)])
        return store

    def record(self, tmp_path):
        store = self.build(tmp_path / "record")
        recorder = OpRecorder()
        with inject(recorder):
            self.operate(store)
        return recorder.events

    def run_all_crash_points(self, tmp_path):
        events = self.record(tmp_path)
        assert events, "the operation performed no durable ops?"
        single = make_single(tmp_path / "single")
        layouts = set()
        for index in range(len(events)):
            directory = tmp_path / f"crash-{index}"
            store = self.build(directory)
            before = [(e.addr_lo, e.addr_hi) for e in store.shards]
            plan = plan_for_crash_point(events, index)
            with inject(plan), pytest.raises(OSError):
                self.operate(store)
            assert plan.fired, "the planned fault never triggered"

            reopened = reopen(directory)
            layout = [(e.addr_lo, e.addr_hi) for e in reopened.shards]
            # All-or-nothing band swap: old layout or the new one.
            assert layout == before or layout == self.expected_layout(before)
            layouts.add(len(layout))
            assert_matches_single(reopened, single)

            report = fsck_sharded(directory, repair=True)
            assert report.repaired
            assert fsck_sharded(directory).clean
            assert_matches_single(reopen(directory), single)
        return layouts


class TestSplitCrash(SplitMergeBase):
    def operate(self, store):
        store.split(0)

    def expected_layout(self, before):
        # Any cut strictly inside band 0 is acceptable.
        return None  # overridden check below

    def run_all_crash_points(self, tmp_path):
        events = self.record(tmp_path)
        single = make_single(tmp_path / "single")
        n_layouts = set()
        for index in range(len(events)):
            directory = tmp_path / f"crash-{index}"
            store = self.build(directory)
            before = [(e.addr_lo, e.addr_hi) for e in store.shards]
            plan = plan_for_crash_point(events, index)
            with inject(plan), pytest.raises(OSError):
                store.split(0)
            assert plan.fired

            reopened = reopen(directory)
            layout = [(e.addr_lo, e.addr_hi) for e in reopened.shards]
            if len(layout) == len(before):
                assert layout == before
            else:
                # Committed split: band 0 became two contiguous bands.
                assert len(layout) == len(before) + 1
                assert layout[0][0] == before[0][0]
                assert layout[1][1] == before[0][1]
                assert layout[0][1] == layout[1][0]
                assert layout[2:] == before[1:]
            n_layouts.add(len(layout))
            assert_matches_single(reopened, single)

            fsck_sharded(directory, repair=True)
            assert fsck_sharded(directory).clean
            assert_matches_single(reopen(directory), single)
        return n_layouts

    def test_every_split_crash_point(self, tmp_path):
        n_layouts = self.run_all_crash_points(tmp_path)
        # Every injected kill lands before the parent commit, so the
        # old layout always survives (the commit point is the very last
        # durable op of the operation).
        assert n_layouts == {2}


class TestMergeCrash(SplitMergeBase):
    def operate(self, store):
        store.merge(0)

    def expected_layout(self, before):
        return [(before[0][0], before[1][1])] + before[2:]

    def test_every_merge_crash_point(self, tmp_path):
        layouts = self.run_all_crash_points(tmp_path)
        assert 2 in layouts  # the old layout survives pre-commit kills


class TestOrphansAfterKilledRebanding:
    def test_killed_split_orphans_are_quarantined(self, tmp_path):
        directory = tmp_path / "ds"
        store = make_store(directory)
        store.write_many([part(j) for j in range(N_PARTS)])
        names_before = {e.name for e in store.shards}
        # Kill the parent-manifest rename — both halves fully written.
        plan = FaultPlan(
            [FaultRule(op="rename", pattern="shards.json", times=1)]
        )
        with inject(plan), pytest.raises(OSError):
            store.split(0)
        assert plan.fired
        # The half-written shard dirs are on disk but unreferenced.
        on_disk = {p.name for p in directory.glob("shard-*") if p.is_dir()}
        orphans = on_disk - names_before
        assert len(orphans) == 2
        report = fsck_sharded(directory)
        flagged = {i.name for i in report.issues if i.kind == "extra"}
        assert orphans <= flagged
        report = fsck_sharded(directory, repair=True)
        assert {i.name for i in report.issues
                if i.repaired == "quarantined"} >= orphans
        assert fsck_sharded(directory).clean
        # Quarantine keeps the bytes: dirs moved, not deleted.
        for name in orphans:
            assert (directory / ".quarantine" / name).is_dir()

    def test_lost_parent_after_killed_split_prefers_old_epoch(self, tmp_path):
        """Sidecar rebuild must resurrect the *committed* layout, not the
        half-finished split's newer-epoch orphans."""
        directory = tmp_path / "ds"
        store = make_store(directory)
        store.write_many([part(j) for j in range(N_PARTS)])
        old_names = {e.name for e in store.shards}
        single = make_single(tmp_path / "single")
        plan = FaultPlan(
            [FaultRule(op="rename", pattern="shards.json", times=1)]
        )
        with inject(plan), pytest.raises(OSError):
            store.split(0)
        (directory / "shards.json").unlink()
        report = fsck_sharded(directory, repair=True)
        assert report.repaired
        reopened = reopen(directory)
        assert {e.name for e in reopened.shards} == old_names
        assert_matches_single(reopened, single)
        assert fsck_sharded(directory).clean
