"""Unit tests for the fragment store (Algorithm 3 semantics)."""

import numpy as np
import pytest

from repro.core import Box, ShapeError, SparseTensor
from repro.storage import FragmentStore


@pytest.fixture
def store(tmp_path, tensor_3d):
    s = FragmentStore(tmp_path / "ds", tensor_3d.shape, "LINEAR")
    s.write_tensor(tensor_3d)
    return s


class TestWrite:
    def test_receipt_phases_and_sizes(self, tmp_path, tensor_3d):
        s = FragmentStore(tmp_path / "ds", tensor_3d.shape, "GCSR++")
        r = s.write_tensor(tensor_3d)
        assert r.build_seconds >= 0
        assert r.index_nbytes > 0
        assert r.value_nbytes == tensor_3d.nnz * 8
        assert r.file_nbytes > r.index_nbytes + r.value_nbytes  # + header/crc

    def test_fragments_accumulate(self, store, tensor_3d):
        store.write_tensor(tensor_3d)
        assert len(store.fragments) == 2
        assert store.nnz == 2 * tensor_3d.nnz

    def test_shape_mismatch(self, store):
        with pytest.raises(ShapeError):
            store.write_tensor(SparseTensor.empty((9, 9, 9)))

    def test_coords_values_misaligned(self, store):
        with pytest.raises(ShapeError):
            store.write(np.zeros((2, 3), dtype=np.uint64), np.zeros(3))


class TestManifest:
    def test_reload_from_manifest(self, tmp_path, tensor_3d):
        path = tmp_path / "ds"
        s1 = FragmentStore(path, tensor_3d.shape, "CSF")
        s1.write_tensor(tensor_3d)
        s2 = FragmentStore(path, tensor_3d.shape, "CSF")
        assert len(s2.fragments) == 1
        assert s2.fragments[0].nnz == tensor_3d.nnz

    def test_rescan_recovers_lost_manifest(self, tmp_path, tensor_3d):
        path = tmp_path / "ds"
        s1 = FragmentStore(path, tensor_3d.shape, "COO")
        s1.write_tensor(tensor_3d)
        (path / "manifest.json").unlink()
        s2 = FragmentStore(path, tensor_3d.shape, "COO")
        assert len(s2.fragments) == 1


class TestRead:
    def test_read_points_all_present(self, store, tensor_3d):
        out = store.read_points(tensor_3d.coords)
        assert out.found.all()
        assert np.allclose(out.values, tensor_3d.values)
        assert out.fragments_visited == 1

    def test_read_points_absent(self, store, tensor_3d):
        # A coordinate outside the bounding box is pruned without touching
        # the fragment.
        far = np.array([[19, 29, 39]], dtype=np.uint64)
        if store.fragments[0].bbox.contains_point((19, 29, 39)):
            pytest.skip("random tensor happened to cover the corner")
        out = store.read_points(far)
        assert not out.found.any()

    def test_read_box_merged_sorted(self, store, tensor_3d):
        box = Box((5, 5, 5), (10, 12, 14))
        got = store.read_box(box)
        want = tensor_3d.select_box(box).sorted_by_linear()
        assert got.same_points(want)
        addr = got.linear_addresses()
        assert np.all(addr[1:] >= addr[:-1])

    def test_read_box_whole_tensor(self, store, tensor_3d):
        """Box reads are structural: a box covering the whole tensor costs
        O(n), not O(cells), and returns everything."""
        got = store.read_box(Box((0, 0, 0), tensor_3d.shape))
        assert got.same_points(tensor_3d)

    def test_later_fragment_wins_on_duplicates(self, tmp_path):
        shape = (8, 8)
        s = FragmentStore(tmp_path / "ds", shape, "LINEAR")
        s.write(np.array([[1, 1]], dtype=np.uint64), np.array([1.0]))
        s.write(np.array([[1, 1]], dtype=np.uint64), np.array([2.0]))
        out = s.read_points(np.array([[1, 1]], dtype=np.uint64))
        assert out.found[0]
        assert out.values[0] == 2.0
        assert out.fragments_visited == 2

    def test_multi_fragment_merge(self, tmp_path, rng):
        shape = (32, 32)
        s = FragmentStore(tmp_path / "ds", shape, "GCSC++")
        # Two spatially disjoint fragments.
        left = np.column_stack(
            [rng.integers(0, 16, 40, dtype=np.uint64),
             rng.integers(0, 32, 40, dtype=np.uint64)]
        )
        right = left.copy()
        right[:, 0] += 16
        s.write(left, np.ones(40))
        s.write(right, 2 * np.ones(40))
        out = s.read_points(np.vstack([left, right]))
        assert out.found.all()
        # Box overlapping only the right half visits one fragment.
        probe = s.read_points(np.array([[20, 5]], dtype=np.uint64))
        assert probe.fragments_visited == 1

    def test_faithful_flag(self, store, tensor_3d):
        out = store.read_points(tensor_3d.coords[:20], faithful=True)
        assert out.found.all()

    def test_empty_query(self, store):
        out = store.read_points(np.empty((0, 3), dtype=np.uint64))
        assert out.found.shape == (0,)
        assert out.fragments_visited == 0


class TestRelativeCoords:
    def test_round_trip(self, tmp_path, tensor_3d):
        s = FragmentStore(
            tmp_path / "ds", tensor_3d.shape, "LINEAR", relative_coords=True
        )
        s.write_tensor(tensor_3d)
        out = s.read_points(tensor_3d.coords)
        assert out.found.all()
        assert np.allclose(out.values, tensor_3d.values)

    def test_relative_fragments_are_smaller_for_offset_clusters(self, tmp_path):
        # A cluster far from the origin: relative GCSR++ pointers are tiny.
        shape = (4096, 4096)
        coords = np.array(
            [[4000 + i, 4000 + j] for i in range(6) for j in range(6)],
            dtype=np.uint64,
        )
        values = np.ones(36)
        abs_store = FragmentStore(tmp_path / "abs", shape, "GCSR++")
        rel_store = FragmentStore(
            tmp_path / "rel", shape, "GCSR++", relative_coords=True
        )
        r_abs = abs_store.write(coords, values)
        r_rel = rel_store.write(coords, values)
        assert r_rel.index_nbytes < r_abs.index_nbytes
        out = rel_store.read_points(coords)
        assert out.found.all()


class TestRescanRobustness:
    """rescan() must survive torn/partial files (durability satellite)."""

    def seeded_store(self, tmp_path, tensor_3d):
        store = FragmentStore(tmp_path / "ds", tensor_3d.shape, "LINEAR")
        half = tensor_3d.nnz // 2
        store.write(tensor_3d.coords[:half], tensor_3d.values[:half])
        store.write(tensor_3d.coords[half:], tensor_3d.values[half:])
        return store

    def test_rescan_skips_tmp_files(self, tmp_path, tensor_3d):
        store = self.seeded_store(tmp_path, tensor_3d)
        (tmp_path / "ds" / "frag-000007.bin.tmp").write_bytes(b"\0" * 64)
        store.rescan()
        assert len(store.fragments) == 2
        assert not (tmp_path / "ds" / "frag-000007.bin.tmp").exists()

    def test_rescan_warns_and_skips_truncated_fragment(self, tmp_path,
                                                       tensor_3d):
        import warnings as _warnings

        store = self.seeded_store(tmp_path, tensor_3d)
        torn = store.fragments[1].path
        torn.write_bytes(torn.read_bytes()[:5])  # inside the magic/header
        with pytest.warns(UserWarning, match="skipping unreadable"):
            store.rescan()
        assert len(store.fragments) == 1
        half = tensor_3d.nnz // 2
        out = store.read_points(tensor_3d.coords[:half])
        assert out.found.all()
        # The rebuilt manifest loads cleanly (torn file is still reported
        # as an orphan until fsck --repair deals with it).
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", UserWarning)
            reloaded = FragmentStore(
                tmp_path / "ds", tensor_3d.shape, "LINEAR"
            )
        assert len(reloaded.fragments) == 1
