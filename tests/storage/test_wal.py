"""Unit tests for the write-ahead log, snapshots and retention GC."""

import json
import time

import numpy as np
import pytest

from repro.core import ShapeError
from repro.core.boundary import Box
from repro.storage import (
    AdaptiveStore,
    FragmentStore,
    StoreOptions,
    fsck,
)
from repro.storage.wal import (
    TailRun,
    WriteAheadLog,
    build_tail_run,
    decode_header,
    decode_record_body,
    encode_header,
    encode_record,
    list_segments,
    scan_segment,
    wal_path,
)

SHAPE = (64, 64)


@pytest.fixture
def opts():
    return StoreOptions(wal_segment_bytes=512)


def chunk(rng, n, m=64):
    coords = np.column_stack(
        [rng.integers(0, m, n, dtype=np.uint64) for _ in range(2)]
    )
    return coords, rng.standard_normal(n)


class TestFraming:
    def test_header_round_trip(self):
        data = encode_header((3, 4, 5), 7)
        header, extent, reason = decode_header(data)
        assert header == {"shape": (3, 4, 5), "epoch": 7}
        assert extent == len(data)
        assert reason == ""

    def test_short_header_is_torn_not_corrupt(self):
        data = encode_header(SHAPE, 1)
        header, extent, reason = decode_header(data[:8])
        assert header is None and reason == ""

    def test_bad_magic_is_corrupt(self):
        data = b"XXXX" + encode_header(SHAPE, 1)[4:]
        header, _, reason = decode_header(data)
        assert header is None and "magic" in reason

    def test_record_round_trip_preserves_dtype(self):
        addrs = np.array([5, 1, 9], dtype=np.uint64)
        for dtype in (np.float64, np.float32, np.int32):
            values = np.arange(3, dtype=dtype)
            rec = encode_record(addrs, values)
            (blen,) = np.frombuffer(rec[:4], dtype=np.uint32)
            body = rec[4:4 + int(blen)]
            out_a, out_v = decode_record_body(body)
            assert np.array_equal(out_a, addrs)
            assert np.array_equal(out_v, values)
            assert out_v.dtype == np.dtype(dtype).newbyteorder("<")

    def test_record_addresses_are_aligned(self):
        rec = encode_record(
            np.array([1], dtype=np.uint64), np.array([1.0])
        )
        (blen,) = np.frombuffer(rec[:4], dtype=np.uint32)
        (mlen,) = np.frombuffer(rec[4:8], dtype=np.uint32)
        assert (4 + int(mlen)) % 8 == 0


class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path, rng):
        wal = WriteAheadLog(tmp_path / "wal", SHAPE, segment_bytes=10_000)
        addrs = np.arange(10, dtype=np.uint64)
        wal.append(addrs, np.arange(10, dtype=float))
        wal.append(addrs + 100, np.arange(10, dtype=float) * 2)
        assert wal.total_points == 20

        replayed = WriteAheadLog(
            tmp_path / "wal", SHAPE, segment_bytes=10_000
        )
        chunks = list(replayed.iter_chunks())
        assert len(chunks) == 2
        assert np.array_equal(chunks[0][0], addrs)
        assert np.array_equal(chunks[1][0], addrs + 100)

    def test_seals_at_segment_budget(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", SHAPE, segment_bytes=64)
        for i in range(4):
            wal.append(
                np.array([i], dtype=np.uint64), np.array([float(i)])
            )
        assert wal.segment_count >= 2
        sealed = [p for p in wal.segment_paths()
                  if p.name.endswith(".wal")]
        assert sealed

    def test_stranded_open_segment_sealed_on_replay(self, tmp_path):
        # A crash between "fill segment" and "rename to sealed" strands a
        # full .open segment behind a newer one; replay must seal it.
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        rec = encode_record(
            np.array([1], dtype=np.uint64), np.array([1.0])
        )
        for seq in (0, 1):
            path = wal_dir / f"seg-{seq:06d}.wal.open"
            path.write_bytes(encode_header(SHAPE, 0) + rec)

        replayed = WriteAheadLog(wal_dir, SHAPE, segment_bytes=10_000)
        assert replayed.total_points == 2
        names = sorted(p.name for p in replayed.segment_paths())
        assert names == ["seg-000000.wal", "seg-000001.wal.open"]

    def test_torn_tail_truncated_on_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", SHAPE, segment_bytes=10_000)
        wal.append(np.array([1, 2], dtype=np.uint64), np.ones(2))
        wal.append(np.array([3], dtype=np.uint64), np.array([3.0]))
        path = wal.segment_paths()[0]
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # tear the final record

        replayed = WriteAheadLog(
            tmp_path / "wal", SHAPE, segment_bytes=10_000
        )
        assert replayed.torn_tails == 1
        assert replayed.total_points == 2  # first record survived
        # The file was truncated back to the intact prefix.
        scan = scan_segment(replayed.segment_paths()[0])
        assert scan.status == "ok"

    def test_mid_segment_corruption_quarantined(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", SHAPE, segment_bytes=10_000)
        wal.append(np.array([1, 2], dtype=np.uint64), np.ones(2))
        wal.append(np.array([3], dtype=np.uint64), np.array([3.0]))
        path = wal.segment_paths()[0]
        data = bytearray(path.read_bytes())
        # Flip a byte inside the *first* record's body: mid-file damage.
        header, extent, _ = decode_header(bytes(data))
        data[extent + 10] ^= 0xFF
        path.write_bytes(bytes(data))

        replayed = WriteAheadLog(
            tmp_path / "wal", SHAPE, segment_bytes=10_000
        )
        assert replayed.total_points == 0
        qdir = tmp_path / "wal" / ".quarantine"
        assert any(qdir.glob("seg-*"))
        assert any(qdir.glob("*.reason"))

    def test_shape_mismatch_quarantined(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", SHAPE, segment_bytes=10_000)
        wal.append(np.array([1], dtype=np.uint64), np.array([1.0]))
        replayed = WriteAheadLog(
            tmp_path / "wal", (8, 8), segment_bytes=10_000
        )
        assert replayed.total_points == 0
        assert any((tmp_path / "wal" / ".quarantine").glob("seg-*"))

    def test_tail_run_newest_wins(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", SHAPE, segment_bytes=10_000)
        wal.append(np.array([7, 3], dtype=np.uint64),
                   np.array([1.0, 2.0]))
        wal.append(np.array([7], dtype=np.uint64), np.array([9.0]))
        tail = build_tail_run(list(wal.iter_chunks()), SHAPE)
        assert isinstance(tail, TailRun)
        assert np.array_equal(
            tail.addresses, np.array([3, 7], dtype=np.uint64)
        )
        assert np.array_equal(tail.values, np.array([2.0, 9.0]))
        assert tail.coords.shape == (2, 2)

    def test_empty_tail_is_none(self):
        assert build_tail_run([], SHAPE) is None


class TestStoreAppend:
    def test_append_read_bit_identical_to_write(self, tmp_path, rng, opts):
        c1, v1 = chunk(rng, 80)
        c2, v2 = chunk(rng, 60)
        walled = FragmentStore(tmp_path / "wal", SHAPE, "LINEAR",
                               options=opts)
        walled.write(c1, v1)
        walled.append(c2[:30], v2[:30])
        walled.append(c2[30:], v2[30:])
        synced = FragmentStore(tmp_path / "sync", SHAPE, "LINEAR")
        synced.write(c1, v1)
        synced.write(c2[:30], v2[:30])
        synced.write(c2[30:], v2[30:])

        box = Box((0, 0), SHAPE)
        a, b = walled.read_box(box), synced.read_box(box)
        assert np.array_equal(a.coords, b.coords)
        assert np.array_equal(a.values, b.values)
        qa = walled.read_points(c2)
        qb = synced.read_points(c2)
        assert np.array_equal(qa.found, qb.found)
        assert np.array_equal(qa.values, qb.values)

    def test_append_survives_reopen(self, tmp_path, rng, opts):
        c, v = chunk(rng, 50)
        store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR",
                              options=opts)
        store.append(c, v)
        assert len(store.fragments) == 0
        reopened = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR",
                                 options=opts)
        out = reopened.read_points(c)
        assert out.found.all()

    def test_pack_drains_the_log(self, tmp_path, rng, opts):
        c, v = chunk(rng, 50)
        store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR",
                              options=opts)
        store.append(c, v)
        receipt = store.pack_wal()
        assert receipt is not None
        assert store.wal_stats()["points"] == 0
        assert len(store.fragments) == 1
        assert store.read_points(c).found.all()
        # Idempotent: nothing left to pack.
        assert store.pack_wal() is None

    def test_pack_via_adaptive_store_picks_format(self, tmp_path, rng):
        c, v = chunk(rng, 200)
        store = AdaptiveStore(tmp_path / "ds", SHAPE)
        store.append(c, v)
        receipt = store.pack_wal()
        assert receipt is not None
        assert store.choices  # the advisor ran on the packed part
        assert store.read_points(c).found.all()

    def test_wal_overwrites_packed_fragment(self, tmp_path, rng, opts):
        c, v = chunk(rng, 40)
        store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR",
                              options=opts)
        store.write(c, v)
        store.append(c[:10], np.full(10, 42.0))
        out = store.read_points(c[:10])
        assert out.found.all()
        assert np.all(out.values == 42.0)
        box = store.read_box(Box((0, 0), SHAPE))
        # No duplicates in the merged view.
        lin = box.coords[:, 0] * 64 + box.coords[:, 1]
        assert np.unique(lin).shape[0] == lin.shape[0]

    def test_background_packer(self, tmp_path, rng):
        c, v = chunk(rng, 30)
        store = FragmentStore(
            tmp_path / "ds", SHAPE, "LINEAR",
            options=StoreOptions(wal_pack_interval=0.05),
        )
        try:
            store.append(c, v)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if store.wal_stats()["points"] == 0:
                    break
                time.sleep(0.02)
            assert store.wal_stats()["points"] == 0
            assert len(store.fragments) == 1
        finally:
            store.close()

    def test_append_requires_linearizable_shape(self, tmp_path):
        big = (1 << 22, 1 << 22, 1 << 22)  # overflows uint64 addresses
        store = FragmentStore(tmp_path / "ds", big, "COO")
        with pytest.raises(ShapeError, match="append"):
            store.append(
                np.zeros((1, 3), dtype=np.uint64), np.ones(1)
            )

    def test_append_validation(self, tmp_path, opts):
        store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR",
                              options=opts)
        with pytest.raises(ShapeError):
            store.append(np.zeros((2, 3), dtype=np.uint64), np.zeros(2))
        with pytest.raises(ShapeError):
            store.append(np.zeros((2, 2), dtype=np.uint64), np.zeros(3))
        with pytest.raises(Exception):
            # Out-of-bounds coordinates are rejected at the validating
            # linearize, before anything lands in the log.
            store.append(
                np.full((1, 2), 64, dtype=np.uint64), np.ones(1)
            )
        assert store.wal_stats()["points"] == 0

    def test_options_validation(self):
        with pytest.raises(ValueError):
            StoreOptions(wal_segment_bytes=0)
        with pytest.raises(ValueError):
            StoreOptions(wal_pack_interval=0)
        with pytest.raises(ValueError):
            StoreOptions(retain_generations=-1)


class TestFsckWal:
    def test_fsck_reports_segments(self, tmp_path, rng, opts):
        c, v = chunk(rng, 50)
        store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR",
                              options=opts)
        store.append(c, v)
        report = fsck(tmp_path / "ds")
        assert report.clean
        assert report.wal_segments >= 1
        assert report.wal_bytes > 0
        assert report.as_dict()["wal_segments"] == report.wal_segments

    def test_fsck_repairs_torn_tail(self, tmp_path, rng, opts):
        c, v = chunk(rng, 50)
        store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR",
                              options=opts)
        store.append(c[:25], v[:25])
        store.append(c[25:], v[25:])
        seg = list_segments(wal_path(tmp_path / "ds"))[-1]
        seg.write_bytes(seg.read_bytes()[:-3])

        report = fsck(tmp_path / "ds")
        assert not report.clean
        assert report.issues_of("wal")
        repaired = fsck(tmp_path / "ds", repair=True)
        assert repaired.repaired
        assert fsck(tmp_path / "ds").clean

    def test_fsck_quarantines_corrupt_segment(self, tmp_path, rng, opts):
        c, v = chunk(rng, 50)
        store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR",
                              options=opts)
        store.append(c, v)
        seg = list_segments(wal_path(tmp_path / "ds"))[0]
        seg.write_bytes(b"XXXX" + seg.read_bytes()[4:])

        report = fsck(tmp_path / "ds", repair=True)
        issues = report.issues_of("wal")
        assert issues and issues[0].repaired == "quarantined"
        assert any((tmp_path / "ds" / ".quarantine").glob("seg-*"))
        assert fsck(tmp_path / "ds").clean


class TestSnapshots:
    def test_snapshot_stable_under_mutation(self, tmp_path, rng, opts):
        c1, v1 = chunk(rng, 60)
        c2, v2 = chunk(rng, 40)
        store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR",
                              options=opts)
        store.write(c1, v1)
        store.append(c2, v2)
        snap = store.snapshot()
        before = snap.read_box(Box((0, 0), SHAPE))

        # Mutate the store every way we can: append, pack, compact.
        store.append(c1[:10], np.full(10, -1.0))
        store.pack_wal()
        store.write(*chunk(rng, 30))
        store.compact()

        after = snap.read_box(Box((0, 0), SHAPE))
        assert np.array_equal(before.coords, after.coords)
        assert np.array_equal(before.values, after.values)
        # The tail overlay still answers point lookups on the snapshot,
        # even though the live store has since packed and compacted.
        assert snap.read_points(c2).found.all()
        snap.close()

    def test_snapshot_pins_block_gc(self, tmp_path, rng):
        store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR")
        store.write(*chunk(rng, 30))
        store.write(*chunk(rng, 30))
        snap = store.snapshot()
        store.compact()  # retires the two source fragments
        assert store.gc(keep_generations=0) == 0  # pinned: nothing dies
        ret = [f.path for f in snap.fragments]
        assert all(p.exists() for p in ret)
        snap.close()
        assert store.gc(keep_generations=0) == 2
        assert not any(p.exists() for p in ret)

    def test_snapshot_closed_reads_raise(self, tmp_path, rng):
        store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR")
        store.write(*chunk(rng, 10))
        snap = store.snapshot()
        snap.close()
        assert snap.closed
        with pytest.raises(ValueError):
            snap.read_box(Box((0, 0), SHAPE))
        snap.close()  # idempotent

    def test_past_generation_snapshot(self, tmp_path, rng):
        store = FragmentStore(
            tmp_path / "ds", SHAPE, "LINEAR",
            options=StoreOptions(retain_generations=4),
        )
        c1, v1 = chunk(rng, 30)
        c2, v2 = chunk(rng, 30)
        store.write(c1, v1)
        g1 = store.generation
        store.write(c2, v2)
        store.compact()

        with store.snapshot(g1) as snap:
            assert snap.generation == g1
            out = snap.read_points(c1)
            assert out.found.all()
            # Points of the second write did not exist at g1.
            assert not snap.read_points(c2).found.all()

    def test_snapshot_future_generation_rejected(self, tmp_path, rng):
        store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR")
        store.write(*chunk(rng, 10))
        with pytest.raises(ValueError, match="future"):
            store.snapshot(store.generation + 5)

    def test_snapshot_behind_gc_horizon_rejected(self, tmp_path, rng):
        store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR")
        c1, _ = chunk(rng, 20)
        store.write(c1, np.ones(20))
        g1 = store.generation
        store.write(*chunk(rng, 20))
        store.compact()  # retention 0, no pins: sources deleted now
        with pytest.raises(ValueError, match="horizon"):
            store.snapshot(g1)

    def test_retention_survives_reopen(self, tmp_path, rng):
        opts = StoreOptions(retain_generations=4)
        store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR",
                              options=opts)
        c1, v1 = chunk(rng, 30)
        store.write(c1, v1)
        g1 = store.generation
        store.write(*chunk(rng, 30))
        store.compact()

        manifest = json.loads(
            (tmp_path / "ds" / "manifest.json").read_text()
        )
        assert manifest.get("retired")

        reopened = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR",
                                 options=opts)
        with reopened.snapshot(g1) as snap:
            assert snap.read_points(c1).found.all()

    def test_gc_advances_horizon(self, tmp_path, rng):
        store = FragmentStore(
            tmp_path / "ds", SHAPE, "LINEAR",
            options=StoreOptions(retain_generations=1),
        )
        store.write(*chunk(rng, 20))
        store.write(*chunk(rng, 20))
        store.compact()
        # Age the retired generation out of the window, then collect.
        store.write(*chunk(rng, 20))
        store.write(*chunk(rng, 20))
        deleted = store.gc(keep_generations=0)
        assert deleted == 2
        manifest = json.loads(
            (tmp_path / "ds" / "manifest.json").read_text()
        )
        assert manifest.get("gc_horizon", 0) > 0
        with pytest.raises(ValueError):
            store.gc(keep_generations=-1)
