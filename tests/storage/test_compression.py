"""Unit tests for the fragment compression layer."""

import numpy as np
import pytest

from repro.core.errors import FragmentError
from repro.storage import FragmentStore, pack_fragment, unpack_fragment
from repro.storage.compression import (
    CODECS,
    decode_buffer,
    encode_buffer,
    validate_codec,
)


class TestCodecPrimitives:
    def test_validate(self):
        for codec in CODECS:
            assert validate_codec(codec) == codec
        with pytest.raises(FragmentError, match="unknown codec"):
            validate_codec("lz77")

    @pytest.mark.parametrize("codec", CODECS)
    def test_round_trip_uint64(self, codec, rng):
        arr = rng.integers(0, 1 << 40, size=500, dtype=np.uint64)
        blob, stored = encode_buffer(arr, codec)
        back = decode_buffer(blob, stored, arr.dtype, arr.size)
        assert np.array_equal(back, arr)

    @pytest.mark.parametrize("codec", CODECS)
    def test_round_trip_floats(self, codec, rng):
        arr = rng.standard_normal(300)
        blob, stored = encode_buffer(arr, codec)
        back = decode_buffer(blob, stored, arr.dtype, arr.size)
        assert np.array_equal(back, arr)

    def test_delta_shrinks_sorted_addresses(self, rng):
        # Sorted addresses with small gaps: delta-zlib should crush them.
        addr = np.cumsum(
            rng.integers(1, 5, size=4000, dtype=np.uint64)
        ).astype(np.uint64)
        raw, _ = encode_buffer(addr, "raw")
        plain, _ = encode_buffer(addr, "zlib")
        delta, stored = encode_buffer(addr, "delta-zlib")
        assert stored == "delta+zlib"
        assert len(delta) < len(plain) < len(raw)
        assert len(delta) < len(raw) // 4

    def test_delta_falls_back_for_2d(self, rng):
        arr = rng.integers(0, 100, size=(10, 3), dtype=np.uint64)
        blob, stored = encode_buffer(arr, "delta-zlib")
        assert stored == "zlib"
        back = decode_buffer(blob, stored, arr.dtype, arr.size)
        assert np.array_equal(back.reshape(arr.shape), arr)

    def test_delta_exact_on_wraparound(self):
        # Unsorted input makes negative deltas -> uint wraparound must be
        # exactly invertible.
        arr = np.array([10, 3, 2**63, 1, 0], dtype=np.uint64)
        blob, stored = encode_buffer(arr, "delta-zlib")
        back = decode_buffer(blob, stored, arr.dtype, arr.size)
        assert np.array_equal(back, arr)

    def test_unknown_stored_codec(self):
        with pytest.raises(FragmentError):
            decode_buffer(b"", "brotli", np.dtype(np.uint8), 0)


class TestFragmentCodecs:
    @pytest.mark.parametrize("codec", CODECS)
    def test_pack_unpack(self, codec, rng):
        buffers = {
            "addresses": np.sort(
                rng.integers(0, 10000, size=200, dtype=np.uint64)
            ),
            "coords": rng.integers(0, 50, size=(100, 2), dtype=np.uint64),
        }
        values = rng.standard_normal(100)
        blob = pack_fragment("LINEAR", (100, 100), 100, {}, buffers, values,
                             codec=codec)
        payload = unpack_fragment(blob)
        assert np.array_equal(payload.buffers["addresses"],
                              buffers["addresses"])
        assert np.array_equal(payload.buffers["coords"], buffers["coords"])
        assert np.array_equal(payload.values, values)

    def test_compressed_fragment_is_smaller(self, rng):
        addr = np.sort(rng.integers(0, 1 << 20, size=5000, dtype=np.uint64))
        values = np.ones(5000)
        raw = pack_fragment("LINEAR", (1 << 20,), 5000, {},
                            {"addresses": addr}, values, codec="raw")
        packed = pack_fragment("LINEAR", (1 << 20,), 5000, {},
                               {"addresses": addr}, values,
                               codec="delta-zlib")
        assert len(packed) < len(raw) // 3

    def test_crc_still_guards_compressed(self, rng):
        blob = bytearray(
            pack_fragment("LINEAR", (100,), 10, {},
                          {"addresses": np.arange(10, dtype=np.uint64)},
                          np.ones(10), codec="zlib")
        )
        blob[len(blob) // 2] ^= 0x10
        with pytest.raises(FragmentError):
            unpack_fragment(bytes(blob))

    def test_invalid_codec_rejected(self):
        with pytest.raises(FragmentError):
            pack_fragment("COO", (4,), 0, {}, {}, np.empty(0), codec="xz")


class TestStoreCodec:
    @pytest.mark.parametrize("codec", CODECS)
    def test_store_round_trip(self, tmp_path, tensor_3d, codec):
        store = FragmentStore(
            tmp_path / codec, tensor_3d.shape, "LINEAR", codec=codec
        )
        store.write_tensor(tensor_3d)
        out = store.read_points(tensor_3d.coords)
        assert out.found.all()
        assert np.allclose(out.values, tensor_3d.values)

    def test_store_rejects_bad_codec(self, tmp_path):
        with pytest.raises(FragmentError):
            FragmentStore(tmp_path / "x", (4, 4), "COO", codec="rar")

    def test_compression_shrinks_clustered_fragment(self, tmp_path):
        """A banded (TSP) tensor: sorted-address deltas compress well."""
        from repro.patterns import TSPPattern

        tensor = TSPPattern((512, 512), band_width=4).generate(3)
        tensor = tensor.sorted_by_linear()
        raw_store = FragmentStore(tmp_path / "raw", tensor.shape, "LINEAR")
        zip_store = FragmentStore(
            tmp_path / "zip", tensor.shape, "LINEAR", codec="delta-zlib"
        )
        r_raw = raw_store.write_tensor(tensor)
        r_zip = zip_store.write_tensor(tensor)
        assert r_zip.file_nbytes < r_raw.file_nbytes
