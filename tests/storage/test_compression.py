"""Unit tests for the fragment compression layer.

The cascade suite (``TestCascade*``) is property-style: seeded sweeps
over dtypes and distributions, asserting bit-identical decode and
advisor determinism rather than specific payload bytes.
"""

import numpy as np
import pytest

from repro.core.errors import FragmentError
from repro.storage import (
    FragmentStore,
    StoreOptions,
    pack_fragment,
    unpack_fragment,
)
from repro.storage.compression import (
    CASCADE,
    CODECS,
    advise_buffer,
    codec_sizes,
    decode_buffer,
    encode_buffer,
    encode_cascade,
    validate_codec,
)

UINT_DTYPES = (np.uint8, np.uint16, np.uint32, np.uint64)


def roundtrip(arr, codec):
    """Encode + tag-driven decode; returns (decoded, stored_tag, nbytes)."""
    blob, stored = encode_buffer(arr, codec)
    back = decode_buffer(blob, stored, arr.dtype, arr.size)
    return back.reshape(arr.shape), stored, len(blob)


class TestCodecPrimitives:
    def test_validate(self):
        for codec in CODECS:
            assert validate_codec(codec) == codec
        with pytest.raises(FragmentError, match="unknown codec"):
            validate_codec("lz77")

    @pytest.mark.parametrize("codec", CODECS)
    def test_round_trip_uint64(self, codec, rng):
        arr = rng.integers(0, 1 << 40, size=500, dtype=np.uint64)
        blob, stored = encode_buffer(arr, codec)
        back = decode_buffer(blob, stored, arr.dtype, arr.size)
        assert np.array_equal(back, arr)

    @pytest.mark.parametrize("codec", CODECS)
    def test_round_trip_floats(self, codec, rng):
        arr = rng.standard_normal(300)
        blob, stored = encode_buffer(arr, codec)
        back = decode_buffer(blob, stored, arr.dtype, arr.size)
        assert np.array_equal(back, arr)

    def test_delta_shrinks_sorted_addresses(self, rng):
        # Sorted addresses with small gaps: delta-zlib should crush them.
        addr = np.cumsum(
            rng.integers(1, 5, size=4000, dtype=np.uint64)
        ).astype(np.uint64)
        raw, _ = encode_buffer(addr, "raw")
        plain, _ = encode_buffer(addr, "zlib")
        delta, stored = encode_buffer(addr, "delta-zlib")
        assert stored == "delta+zlib"
        assert len(delta) < len(plain) < len(raw)
        assert len(delta) < len(raw) // 4

    def test_delta_falls_back_for_2d(self, rng):
        arr = rng.integers(0, 100, size=(10, 3), dtype=np.uint64)
        blob, stored = encode_buffer(arr, "delta-zlib")
        assert stored == "zlib"
        back = decode_buffer(blob, stored, arr.dtype, arr.size)
        assert np.array_equal(back.reshape(arr.shape), arr)

    def test_delta_exact_on_wraparound(self):
        # Unsorted input makes negative deltas -> uint wraparound must be
        # exactly invertible.
        arr = np.array([10, 3, 2**63, 1, 0], dtype=np.uint64)
        blob, stored = encode_buffer(arr, "delta-zlib")
        back = decode_buffer(blob, stored, arr.dtype, arr.size)
        assert np.array_equal(back, arr)

    def test_unknown_stored_codec(self):
        with pytest.raises(FragmentError):
            decode_buffer(b"", "brotli", np.dtype(np.uint8), 0)


class TestFragmentCodecs:
    @pytest.mark.parametrize("codec", CODECS)
    def test_pack_unpack(self, codec, rng):
        buffers = {
            "addresses": np.sort(
                rng.integers(0, 10000, size=200, dtype=np.uint64)
            ),
            "coords": rng.integers(0, 50, size=(100, 2), dtype=np.uint64),
        }
        values = rng.standard_normal(100)
        blob = pack_fragment("LINEAR", (100, 100), 100, {}, buffers, values,
                             codec=codec)
        payload = unpack_fragment(blob)
        assert np.array_equal(payload.buffers["addresses"],
                              buffers["addresses"])
        assert np.array_equal(payload.buffers["coords"], buffers["coords"])
        assert np.array_equal(payload.values, values)

    def test_compressed_fragment_is_smaller(self, rng):
        addr = np.sort(rng.integers(0, 1 << 20, size=5000, dtype=np.uint64))
        values = np.ones(5000)
        raw = pack_fragment("LINEAR", (1 << 20,), 5000, {},
                            {"addresses": addr}, values, codec="raw")
        packed = pack_fragment("LINEAR", (1 << 20,), 5000, {},
                               {"addresses": addr}, values,
                               codec="delta-zlib")
        assert len(packed) < len(raw) // 3

    def test_crc_still_guards_compressed(self, rng):
        blob = bytearray(
            pack_fragment("LINEAR", (100,), 10, {},
                          {"addresses": np.arange(10, dtype=np.uint64)},
                          np.ones(10), codec="zlib")
        )
        blob[len(blob) // 2] ^= 0x10
        with pytest.raises(FragmentError):
            unpack_fragment(bytes(blob))

    def test_invalid_codec_rejected(self):
        with pytest.raises(FragmentError):
            pack_fragment("COO", (4,), 0, {}, {}, np.empty(0), codec="xz")


class TestStoreCodec:
    @pytest.mark.parametrize("codec", CODECS)
    def test_store_round_trip(self, tmp_path, tensor_3d, codec):
        store = FragmentStore(
            tmp_path / codec, tensor_3d.shape, "LINEAR", codec=codec
        )
        store.write_tensor(tensor_3d)
        out = store.read_points(tensor_3d.coords)
        assert out.found.all()
        assert np.allclose(out.values, tensor_3d.values)

    def test_store_rejects_bad_codec(self, tmp_path):
        with pytest.raises(FragmentError):
            FragmentStore(tmp_path / "x", (4, 4), "COO", codec="rar")

    def test_compression_shrinks_clustered_fragment(self, tmp_path):
        """A banded (TSP) tensor: sorted-address deltas compress well."""
        from repro.patterns import TSPPattern

        tensor = TSPPattern((512, 512), band_width=4).generate(3)
        tensor = tensor.sorted_by_linear()
        raw_store = FragmentStore(tmp_path / "raw", tensor.shape, "LINEAR")
        zip_store = FragmentStore(
            tmp_path / "zip", tensor.shape, "LINEAR", codec="delta-zlib"
        )
        r_raw = raw_store.write_tensor(tensor)
        r_zip = zip_store.write_tensor(tensor)
        assert r_zip.file_nbytes < r_raw.file_nbytes


# ---------------------------------------------------------------------------
# Cascaded codec property/fuzz suite
# ---------------------------------------------------------------------------


def _fuzz_arrays(seed, dtype):
    """Deterministic battery of arrays covering codec edge cases."""
    rng = np.random.default_rng(seed)
    info = np.iinfo(dtype)
    hi = int(info.max)
    out = [
        np.empty(0, dtype=dtype),                      # empty
        np.array([0], dtype=dtype),                    # single element
        np.array([hi], dtype=dtype),                   # single max
        np.zeros(257, dtype=dtype),                    # constant zero run
        np.full(513, hi, dtype=dtype),                 # constant max run
        np.arange(1000, dtype=np.uint64).astype(dtype),  # unit stride
        (np.arange(500, dtype=np.uint64) * 7).astype(dtype),
        rng.integers(0, hi, size=777, endpoint=True, dtype=dtype),  # noise
        np.sort(rng.integers(0, hi, size=777, endpoint=True, dtype=dtype)),
        # adversarial near-overflow deltas: max positive and max negative
        # wraparound residuals back to back
        np.array([0, hi, 0, hi, 1, hi - 1], dtype=dtype),
        # descending (all-negative deltas -> full-width residuals)
        np.arange(300, 0, -1, dtype=np.uint64).astype(dtype),
        # sorted with one huge jump (max-bit-width residual amid small ones)
        np.concatenate([
            np.arange(100, dtype=np.uint64),
            np.arange(100, dtype=np.uint64) + hi - 200,
        ]).astype(dtype),
    ]
    return out


class TestCascadeFuzz:
    @pytest.mark.parametrize("dtype", UINT_DTYPES)
    @pytest.mark.parametrize("seed", [0, 1, 12345])
    def test_bit_identical_roundtrip_all_codecs(self, dtype, seed):
        for arr in _fuzz_arrays(seed, dtype):
            for codec in CODECS:
                back, stored, _ = roundtrip(arr, codec)
                assert back.dtype == arr.dtype, (codec, stored)
                assert np.array_equal(back, arr), (codec, stored, arr[:8])

    @pytest.mark.parametrize("seed", [0, 7])
    def test_cascade_never_worse_than_raw(self, seed):
        for dtype in UINT_DTYPES:
            for arr in _fuzz_arrays(seed, dtype):
                blob, chain, _advice = encode_cascade(arr)
                # The hard guarantee: cascade output never exceeds raw bytes.
                assert len(blob) <= arr.nbytes, (dtype, chain, arr[:8])

    def test_cascade_shrinks_sorted_addresses(self, rng):
        addr = np.cumsum(
            rng.integers(1, 5, size=100_000, dtype=np.uint64)
        ).astype(np.uint64)
        blob, chain, _ = encode_cascade(addr)
        assert chain.startswith(("dbp", "drle"))
        assert len(blob) * 2 < addr.nbytes

    def test_cascade_constant_stride_uses_rle(self):
        addr = np.arange(0, 500_000, 10, dtype=np.uint64)
        blob, chain, _ = encode_cascade(addr)
        assert chain.startswith("drle")
        assert len(blob) < 128  # one run collapses to a handful of bytes

    def test_cascade_random_full_width_stays_raw(self, rng):
        arr = rng.integers(0, 2**64 - 1, size=4096, endpoint=True,
                           dtype=np.uint64)
        blob, chain, _ = encode_cascade(arr)
        assert chain == "raw"
        assert len(blob) == arr.nbytes

    def test_floats_and_2d_fall_back(self, rng):
        for arr in (rng.standard_normal(64),
                    rng.integers(0, 9, size=(8, 3), dtype=np.uint64)):
            blob, stored = encode_buffer(arr, CASCADE)
            assert stored in ("raw", "zlib")
            back = decode_buffer(blob, stored, arr.dtype, arr.size)
            assert np.array_equal(back.reshape(arr.shape), arr)


class TestCodecAdvisor:
    def test_advice_is_deterministic(self, rng):
        arr = np.sort(rng.integers(0, 1 << 30, size=5000, dtype=np.uint64))
        a = advise_buffer(arr)
        b = advise_buffer(arr.copy())
        assert a == b
        blob1, chain1, _ = encode_cascade(arr)
        blob2, chain2, _ = encode_cascade(arr.copy())
        assert chain1 == chain2
        assert blob1 == blob2

    def test_candidate_sizes_are_exact(self, rng):
        arr = np.sort(rng.integers(0, 1 << 20, size=3000, dtype=np.uint64))
        advice = advise_buffer(arr)
        assert advice.candidate_sizes["raw"] == arr.nbytes
        blob, chain, _ = encode_cascade(arr)
        pre_zlib = chain.split("+zlib")[0]
        if pre_zlib in advice.candidate_sizes and "+zlib" not in chain:
            assert len(blob) == advice.candidate_sizes[pre_zlib]

    def test_advice_fields(self):
        arr = np.arange(0, 1000, 2, dtype=np.uint64)
        advice = advise_buffer(arr)
        assert advice.n == arr.size
        assert np.dtype(advice.dtype) == np.dtype(np.uint64)
        assert 0.9 < advice.run_fraction <= 1.0  # constant stride = one run
        assert advice.entropy_bits >= 0.0
        assert sum(advice.width_hist.values()) > 0

    def test_run_fraction_low_for_noise(self, rng):
        arr = rng.integers(0, 2**32, size=4096, dtype=np.uint64)
        advice = advise_buffer(arr)
        assert advice.run_fraction < 0.2


class TestChainTags:
    """Stored tags are self-describing: decode never consults store options."""

    @pytest.mark.parametrize("dtype", UINT_DTYPES)
    def test_known_chains_decode(self, dtype, rng):
        hi = int(np.iinfo(dtype).max)
        samples = [
            np.sort(rng.integers(0, hi, size=600, endpoint=True,
                                 dtype=dtype)),
            np.arange(0, 1200, 3, dtype=np.uint64).astype(dtype),
            rng.integers(0, hi, size=600, endpoint=True, dtype=dtype),
        ]
        seen = set()
        for arr in samples:
            blob, chain, _ = encode_cascade(arr)
            seen.add(chain)
            back = decode_buffer(blob, chain, arr.dtype, arr.size)
            assert np.array_equal(back, arr)
        assert seen  # at least one chain exercised per dtype

    def test_malformed_chain_rejected(self):
        arr = np.arange(16, dtype=np.uint64)
        blob, chain, _ = encode_cascade(arr)
        with pytest.raises(FragmentError):
            decode_buffer(blob, chain + "+bogus", arr.dtype, arr.size)

    def test_truncated_payload_rejected(self, rng):
        addr = np.sort(rng.integers(0, 1 << 30, size=2000, dtype=np.uint64))
        blob, chain, _ = encode_cascade(addr)
        assert chain != "raw"
        with pytest.raises(FragmentError):
            decode_buffer(blob[: len(blob) // 2], chain, addr.dtype,
                          addr.size)

    def test_wrong_count_rejected(self, rng):
        addr = np.sort(rng.integers(0, 1 << 30, size=2000, dtype=np.uint64))
        blob, chain, _ = encode_cascade(addr)
        with pytest.raises(FragmentError):
            decode_buffer(blob, chain, addr.dtype, addr.size + 1)


class TestTagDrivenReads:
    """Satellite: stored tag wins over store options (regression for the
    silent delta-zlib fallback)."""

    def test_fallback_tag_records_truth(self, rng):
        # 2-D buffer under delta-zlib silently fell back to zlib; the tag
        # must say so.
        arr = rng.integers(0, 99, size=(64, 3), dtype=np.uint64)
        _, stored = encode_buffer(arr, "delta-zlib")
        assert stored == "zlib"

    def test_fragment_read_ignores_store_codec(self, tmp_path, rng):
        """Write fragments as cascade, reopen with codec='raw': old
        fragments must still decode via their own tags."""
        addr = np.cumsum(
            rng.integers(1, 8, size=4096, dtype=np.uint64)
        ).astype(np.uint64)
        shape = (1 << 20,)
        store = FragmentStore(
            tmp_path / "s", shape, "LINEAR",
            options=StoreOptions(codec=CASCADE),
        )
        coords = addr.reshape(-1, 1)
        vals = rng.standard_normal(addr.size)
        from repro.core.tensor import SparseTensor

        tensor = SparseTensor(coords=coords, values=vals, shape=shape)
        store.write_tensor(tensor)
        stats = store.compression_stats()
        assert any(tag.startswith(("dbp", "drle"))
                   for tag in stats["by_codec"])

        reopened = FragmentStore(
            tmp_path / "s", shape, "LINEAR",
            options=StoreOptions(codec="raw"),
        )
        out = reopened.read_points(coords)
        assert out.found.all()
        assert np.array_equal(out.values, vals)
        # New fragments under the reopened store are raw-tagged while the
        # old cascade fragments stay readable side by side.
        tensor2 = SparseTensor(
            coords=coords + 1, values=vals * 2, shape=shape
        )
        reopened.write_tensor(tensor2)
        out2 = reopened.read_points(coords + 1)
        assert np.array_equal(out2.values, vals * 2)

    def test_codec_sizes_matches_blob(self, rng):
        addr = np.sort(rng.integers(0, 1 << 20, size=2048, dtype=np.uint64))
        blob = pack_fragment(
            "LINEAR", (1 << 20,), addr.size, {}, {"addresses": addr},
            np.ones(addr.size), codec=CASCADE,
        )
        from repro.storage import unpack_header

        header, _ = unpack_header(blob)
        by_codec, raw_total = codec_sizes(header)
        assert raw_total == addr.nbytes + addr.size * 8
        assert sum(by_codec.values()) <= raw_total
