"""ShardedStore: banding, routing, re-banding, and differential reads.

The differential classes pin the headline contract: a ShardedStore and a
single FragmentStore fed the same writes return **bit-identical** results
for every format, planner on or off, before and after compaction and
re-banding.
"""

import json

import numpy as np
import pytest

from repro import Box, ReadOptions, SparseTensor, StoreOptions, available_formats
from repro.core.errors import ManifestError, ShapeError
from repro.storage import (
    FragmentStore,
    ShardedStore,
    fsck_sharded,
    is_sharded_dir,
)
from repro.storage.sharded import SHARD_MANIFEST_NAME, SHARD_RANGE_NAME

SHAPE = (24, 24, 24)


def make_parts(seed=0, n_parts=3, n=300, shape=SHAPE):
    rng = np.random.default_rng(seed)
    parts = []
    for _ in range(n_parts):
        coords = np.column_stack(
            [rng.integers(0, m, size=n) for m in shape]
        ).astype(np.uint64)
        values = rng.random(n)
        parts.append((coords, values))
    return parts


def build_pair(tmp_path, format_name="LINEAR", *, parts=None, planner=True,
               n_shards=4):
    """The same writes into a ShardedStore and a plain FragmentStore."""
    opts = StoreOptions(planner=planner)
    sharded = ShardedStore(tmp_path / "sharded", SHAPE, format_name,
                           n_shards=n_shards, options=opts)
    single = FragmentStore(tmp_path / "single", SHAPE, format_name,
                           options=opts)
    for coords, values in (parts or make_parts()):
        sharded.write(coords, values)
        single.write(coords, values)
    return sharded, single


def assert_reads_identical(sharded, single, *, seed=7):
    rng = np.random.default_rng(seed)
    hits = np.column_stack(
        [rng.integers(0, m, size=200) for m in SHAPE]
    ).astype(np.uint64)
    a = sharded.read_points(hits)
    b = single.read_points(hits)
    assert np.array_equal(a.found, b.found)
    assert a.values.dtype == b.values.dtype
    assert np.array_equal(a.values, b.values)

    for box in (Box((0, 0, 0), SHAPE),           # everything
                Box((6, 6, 6), (12, 12, 12)),    # interior
                Box((20, 20, 20), (4, 4, 4))):   # tail band
        ta = sharded.read_box(box)
        tb = single.read_box(box)
        assert ta.coords.dtype == tb.coords.dtype
        assert np.array_equal(ta.coords, tb.coords)
        assert np.array_equal(ta.values, tb.values)


class TestBanding:
    def test_bands_cover_address_space(self, tmp_path):
        store = ShardedStore(tmp_path / "s", SHAPE, "LINEAR", n_shards=4)
        bands = store.shards
        assert len(bands) == 4
        assert bands[0].addr_lo == 0
        assert bands[-1].addr_hi == 24 * 24 * 24
        for a, b in zip(bands, bands[1:]):
            assert a.addr_hi == b.addr_lo

    def test_tiny_shape_clamps_shard_count(self, tmp_path):
        store = ShardedStore(tmp_path / "s", (2,), "COO", n_shards=16)
        assert len(store.shards) == 2

    def test_each_shard_is_a_directory_with_sidecar(self, tmp_path):
        store = ShardedStore(tmp_path / "s", SHAPE, "LINEAR", n_shards=3)
        for entry in store.shards:
            assert entry.path.is_dir()
            sidecar = json.loads((entry.path / SHARD_RANGE_NAME).read_text())
            assert sidecar["addr_lo"] == entry.addr_lo
            assert sidecar["addr_hi"] == entry.addr_hi

    def test_reopen_adopts_committed_bands(self, tmp_path):
        store = ShardedStore(tmp_path / "s", SHAPE, "LINEAR", n_shards=4)
        names = [e.name for e in store.shards]
        # n_shards is ignored on reopen; the committed table wins.
        again = ShardedStore(tmp_path / "s", SHAPE, "LINEAR", n_shards=9)
        assert [e.name for e in again.shards] == names

    def test_rejects_relative_coords(self, tmp_path):
        with pytest.raises(ShapeError):
            ShardedStore(tmp_path / "s", SHAPE, "LINEAR",
                         options=StoreOptions(relative_coords=True))

    def test_rejects_bad_shard_count(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedStore(tmp_path / "s", SHAPE, "LINEAR", n_shards=0)

    def test_is_sharded_dir(self, tmp_path):
        ShardedStore(tmp_path / "s", SHAPE, "LINEAR")
        FragmentStore(tmp_path / "f", SHAPE, "LINEAR")
        assert is_sharded_dir(tmp_path / "s")
        assert not is_sharded_dir(tmp_path / "f")
        # Detection survives a lost parent manifest (via range.json).
        (tmp_path / "s" / SHARD_MANIFEST_NAME).unlink()
        assert is_sharded_dir(tmp_path / "s")


class TestRouting:
    def test_write_routes_each_point_to_exactly_one_shard(self, tmp_path):
        store = ShardedStore(tmp_path / "s", SHAPE, "LINEAR", n_shards=4)
        coords, values = make_parts(n_parts=1, n=500)[0]
        store.write(coords, values)
        # No cross-shard duplication: per-shard nnz sums to the part
        # size (duplicates counted, same as a single FragmentStore).
        assert store.nnz == coords.shape[0]
        assert sum(e.nnz for e in store.shards) == coords.shape[0]

    def test_parent_stats_track_writes(self, tmp_path):
        store = ShardedStore(tmp_path / "s", SHAPE, "LINEAR", n_shards=4)
        gen0 = store.generation
        coords, values = make_parts(n_parts=1)[0]
        store.write(coords, values)
        assert store.generation > gen0
        touched = [e for e in store.shards if e.nnz]
        assert touched
        for e in touched:
            assert e.bbox is not None and not e.bbox.is_empty()
            assert e.zone is not None

    def test_untouched_shard_stays_empty(self, tmp_path):
        store = ShardedStore(tmp_path / "s", SHAPE, "LINEAR", n_shards=4)
        # All points in the first row -> lowest band only.
        coords = np.column_stack([
            np.zeros(10, dtype=np.uint64),
            np.zeros(10, dtype=np.uint64),
            np.arange(10, dtype=np.uint64),
        ])
        store.write(coords, np.ones(10))
        assert store.shards[0].nnz == 10
        for e in store.shards[1:]:
            assert e.nnz == 0 and e.bbox is None

    def test_empty_write_is_noop(self, tmp_path):
        store = ShardedStore(tmp_path / "s", SHAPE, "LINEAR")
        gen = store.generation
        receipts = store.write(
            np.empty((0, 3), dtype=np.uint64), np.empty(0)
        )
        assert receipts == []
        assert store.generation == gen

    def test_write_many_routes_all_parts(self, tmp_path):
        store = ShardedStore(tmp_path / "s", SHAPE, "LINEAR")
        parts = make_parts(n_parts=3)
        out = store.write_many(parts)
        assert len(out) == 3
        assert all(receipts for receipts in out)

    def test_write_tensor(self, tmp_path):
        store = ShardedStore(tmp_path / "s", SHAPE, "LINEAR")
        coords, values = make_parts(n_parts=1)[0]
        store.write_tensor(SparseTensor(SHAPE, coords, values))
        assert store.nnz > 0


class TestPlanner:
    def test_explain_prunes_untouched_shards(self, tmp_path):
        store = ShardedStore(tmp_path / "s", SHAPE, "LINEAR", n_shards=4)
        coords = np.column_stack([
            np.zeros(10, dtype=np.uint64),
            np.zeros(10, dtype=np.uint64),
            np.arange(10, dtype=np.uint64),
        ])
        store.write(coords, np.ones(10))
        plan = store.explain(Box((0, 0, 0), (1, 1, 24)))
        # Only the first band can hold row 0; empty shards masked out.
        assert len(plan.fragments) == 1
        assert plan.fragments[0].name == store.shards[0].name
        assert plan.total_fragments == 4

    def test_point_explain(self, tmp_path):
        store = ShardedStore(tmp_path / "s", SHAPE, "LINEAR", n_shards=4)
        parts = make_parts(n_parts=1)
        store.write(*parts[0])
        q = parts[0][0][:16]
        plan = store.explain(q)
        assert 1 <= len(plan.fragments) <= 4


FORMATS = available_formats()


class TestDifferentialReads:
    """ShardedStore must read bit-identically to one FragmentStore."""

    @pytest.mark.parametrize("format_name", FORMATS)
    def test_all_formats(self, tmp_path, format_name):
        sharded, single = build_pair(tmp_path, format_name)
        assert_reads_identical(sharded, single)

    @pytest.mark.parametrize("planner", [True, False])
    def test_plan_on_off(self, tmp_path, planner):
        sharded, single = build_pair(tmp_path, planner=planner)
        assert_reads_identical(sharded, single)

    def test_overwrite_semantics_match(self, tmp_path):
        """Newest-wins duplicates behave identically across the cut."""
        rng = np.random.default_rng(3)
        coords = np.column_stack(
            [rng.integers(0, m, size=100) for m in SHAPE]
        ).astype(np.uint64)
        parts = [
            (coords, np.full(100, 1.0)),
            (coords[:50], np.full(50, 2.0)),   # overwrite half
            (np.repeat(coords[:5], 3, axis=0),  # in-part duplicates
             np.arange(15, dtype=float)),
        ]
        sharded, single = build_pair(tmp_path, parts=parts)
        assert_reads_identical(sharded, single)
        out_s = sharded.read_points(coords)
        out_f = single.read_points(coords)
        assert np.array_equal(out_s.values, out_f.values)

    def test_identical_after_compact(self, tmp_path):
        sharded, single = build_pair(tmp_path)
        sharded.compact()
        assert_reads_identical(sharded, single)

    def test_identical_after_split_and_merge(self, tmp_path):
        sharded, single = build_pair(tmp_path)
        sharded.split(1)
        assert_reads_identical(sharded, single)
        sharded.merge(0)
        assert_reads_identical(sharded, single)

    def test_identical_after_reopen(self, tmp_path):
        sharded, single = build_pair(tmp_path)
        reopened = ShardedStore(tmp_path / "sharded", SHAPE, "LINEAR")
        assert_reads_identical(reopened, single)

    def test_identical_with_parallel_reads(self, tmp_path):
        sharded, single = build_pair(tmp_path)
        rng = np.random.default_rng(11)
        q = np.column_stack(
            [rng.integers(0, m, size=100) for m in SHAPE]
        ).astype(np.uint64)
        a = sharded.read_points(q, options=ReadOptions(parallel="thread"))
        b = single.read_points(q)
        assert np.array_equal(a.found, b.found)
        assert np.array_equal(a.values, b.values)

    def test_empty_store_reads(self, tmp_path):
        sharded = ShardedStore(tmp_path / "s", SHAPE, "LINEAR")
        out = sharded.read_points(np.zeros((4, 3), dtype=np.uint64))
        assert not out.found.any()
        t = sharded.read_box(Box((0, 0, 0), SHAPE))
        assert t.nnz == 0


class TestCompaction:
    def test_compact_merges_each_shard_to_one_fragment(self, tmp_path):
        sharded, _ = build_pair(tmp_path)
        before = len(sharded.fragments)
        assert before > len(sharded.shards)
        sharded.compact()
        for i, entry in enumerate(sharded.shards):
            if entry.nnz:
                assert len(sharded._child(i).fragments) == 1

    def test_compact_skips_single_fragment_shards(self, tmp_path):
        sharded, _ = build_pair(tmp_path)
        sharded.compact()
        gens = [s["generation"] for s in sharded.stats()]
        receipts = sharded.compact()       # everything already compacted
        assert receipts == []
        assert [s["generation"] for s in sharded.stats()] == gens

    def test_compact_max_workers(self, tmp_path):
        sharded, single = build_pair(tmp_path)
        sharded.compact(max_workers=2)
        assert_reads_identical(sharded, single)


class TestSplitMerge:
    def test_split_halves_the_band(self, tmp_path):
        sharded, _ = build_pair(tmp_path)
        entry = sharded.shards[0]
        lo, hi, nnz = entry.addr_lo, entry.addr_hi, entry.nnz
        sharded.split(0)
        a, b = sharded.shards[0], sharded.shards[1]
        assert a.addr_lo == lo and b.addr_hi == hi and a.addr_hi == b.addr_lo
        # The split rewrite merges fragments, so duplicates collapse.
        assert 0 < a.nnz + b.nnz <= nnz
        assert a.nnz > 0 and b.nnz > 0   # median split puts data both sides

    def test_split_at_explicit_address(self, tmp_path):
        sharded, _ = build_pair(tmp_path)
        entry = sharded.shards[0]
        at = entry.addr_lo + (entry.addr_hi - entry.addr_lo) // 3
        sharded.split(0, at=at)
        assert sharded.shards[0].addr_hi == at

    def test_split_rejects_out_of_band_cut(self, tmp_path):
        sharded, _ = build_pair(tmp_path)
        with pytest.raises(ValueError):
            sharded.split(0, at=sharded.shards[0].addr_hi + 10)

    def test_split_removes_old_directory(self, tmp_path):
        sharded, _ = build_pair(tmp_path)
        old = sharded.shards[0].path
        sharded.split(0)
        assert not old.exists()
        assert fsck_sharded(sharded.directory).clean

    def test_merge_joins_neighbours(self, tmp_path):
        sharded, _ = build_pair(tmp_path)
        a, b = sharded.shards[0], sharded.shards[1]
        n_before = len(sharded.shards)
        sharded.merge(0)
        merged = sharded.shards[0]
        assert merged.addr_lo == a.addr_lo and merged.addr_hi == b.addr_hi
        assert merged.nnz == a.nnz + b.nnz
        assert len(sharded.shards) == n_before - 1
        assert fsck_sharded(sharded.directory).clean

    def test_merge_needs_right_neighbour(self, tmp_path):
        sharded, _ = build_pair(tmp_path)
        with pytest.raises(ValueError):
            sharded.merge(len(sharded.shards) - 1)

    def test_auto_split_on_threshold(self, tmp_path):
        store = ShardedStore(tmp_path / "s", SHAPE, "LINEAR", n_shards=2,
                             split_nnz=100)
        coords, values = make_parts(n_parts=1, n=600)[0]
        store.write(coords, values)
        assert len(store.shards) > 2
        for e in store.shards:
            # Post-split every shard is at/below threshold (or unsplittable).
            assert e.nnz <= 100 or e.addr_hi - e.addr_lo <= 1

    def test_auto_merge_on_threshold(self, tmp_path):
        store = ShardedStore(tmp_path / "s", SHAPE, "LINEAR", n_shards=4,
                             merge_nnz=5)
        coords = np.column_stack([
            np.zeros(3, dtype=np.uint64),
            np.zeros(3, dtype=np.uint64),
            np.arange(3, dtype=np.uint64),
        ])
        store.write(coords, np.ones(3))
        # Every adjacent pair is under threshold -> collapse to one shard.
        assert len(store.shards) == 1


class TestFsckSharded:
    def test_clean_tree(self, tmp_path):
        sharded, _ = build_pair(tmp_path)
        report = sharded.fsck()
        assert report.clean
        assert report.checked > 0

    def test_orphan_shard_dir_quarantined(self, tmp_path):
        sharded, _ = build_pair(tmp_path)
        orphan = sharded.directory / "shard-9999"
        orphan.mkdir()
        (orphan / SHARD_RANGE_NAME).write_text(
            json.dumps({"addr_lo": 0, "addr_hi": 1, "epoch": 99})
        )
        report = fsck_sharded(sharded.directory)
        assert any(i.kind == "extra" for i in report.issues)
        report = fsck_sharded(sharded.directory, repair=True)
        assert any(i.repaired == "quarantined" for i in report.issues)
        assert not orphan.exists()
        assert fsck_sharded(sharded.directory).clean

    def test_missing_shard_dir_recreated_empty(self, tmp_path):
        import shutil

        sharded, _ = build_pair(tmp_path)
        victim = sharded.shards[1]
        shutil.rmtree(victim.path)
        report = fsck_sharded(sharded.directory)
        assert not report.clean
        assert any(i.kind == "missing" for i in report.issues)
        report = fsck_sharded(sharded.directory, repair=True)
        assert any(i.kind == "missing" for i in report.issues)
        # Coverage survives: the store reopens, the band reads empty.
        reopened = ShardedStore(tmp_path / "sharded", SHAPE, "LINEAR")
        assert reopened.shards[1].nnz == 0
        assert fsck_sharded(sharded.directory).clean

    def test_lost_parent_manifest_rebuilt(self, tmp_path):
        sharded, single = build_pair(tmp_path)
        nnz = sharded.nnz
        (sharded.directory / SHARD_MANIFEST_NAME).unlink()
        with pytest.raises(ManifestError):
            ShardedStore(tmp_path / "sharded", SHAPE, "LINEAR")
        report = fsck_sharded(sharded.directory, repair=True)
        assert report.repaired
        reopened = ShardedStore(tmp_path / "sharded", SHAPE, "LINEAR")
        assert reopened.nnz == nnz
        assert_reads_identical(reopened, single)

    def test_corrupt_parent_manifest_rebuilt(self, tmp_path):
        sharded, single = build_pair(tmp_path)
        (sharded.directory / SHARD_MANIFEST_NAME).write_text("{ not json")
        with pytest.raises(ManifestError):
            ShardedStore(tmp_path / "sharded", SHAPE, "LINEAR")
        fsck_sharded(sharded.directory, repair=True)
        reopened = ShardedStore(tmp_path / "sharded", SHAPE, "LINEAR")
        assert_reads_identical(reopened, single)

    def test_repair_refreshes_band_stats(self, tmp_path):
        """Rebuilt parents recompute nnz/bbox from child manifests, so
        bbox=None still means *genuinely empty* (the pruning invariant)."""
        sharded, _ = build_pair(tmp_path)
        expect = {e.name: e.nnz for e in sharded.shards}
        (sharded.directory / SHARD_MANIFEST_NAME).unlink()
        fsck_sharded(sharded.directory, repair=True)
        reopened = ShardedStore(tmp_path / "sharded", SHAPE, "LINEAR")
        assert {e.name: e.nnz for e in reopened.shards} == expect
        for e in reopened.shards:
            assert (e.bbox is None) == (e.nnz == 0)

    def test_stale_parent_tmp_cleaned(self, tmp_path):
        sharded, _ = build_pair(tmp_path)
        (sharded.directory / "shards.json.tmp").write_bytes(b"torn")
        report = fsck_sharded(sharded.directory, repair=True)
        assert any(i.kind == "tmp" and i.repaired == "deleted"
                   for i in report.issues)
        assert fsck_sharded(sharded.directory).clean

    def test_child_issue_reported_with_prefix(self, tmp_path):
        sharded, _ = build_pair(tmp_path)
        victim = sharded.shards[0]
        frag = next(victim.path.glob("frag-*.bin"))
        frag.write_bytes(b"garbage")
        report = fsck_sharded(sharded.directory)
        bad = [i for i in report.issues if i.name.startswith(victim.name)]
        assert bad


class TestStats:
    def test_rows(self, tmp_path):
        sharded, _ = build_pair(tmp_path)
        rows = sharded.stats()
        assert len(rows) == len(sharded.shards)
        assert sum(r["nnz"] for r in rows) == sharded.nnz
        for row in rows:
            assert set(row) == {"shard", "addr_lo", "addr_hi", "nnz",
                                "fragments", "nbytes", "generation"}

    def test_counters(self, tmp_path):
        from repro import obs

        obs.reset()
        sharded, _ = build_pair(tmp_path)
        rng = np.random.default_rng(5)
        q = np.column_stack(
            [rng.integers(0, m, size=50) for m in SHAPE]
        ).astype(np.uint64)
        sharded.read_points(q)
        counters = {
            c["name"]: c["value"] for c in obs.snapshot()["counters"]
        }
        assert counters.get("store.shard.routed_parts", 0) > 0
        assert counters.get("store.shard.visited", 0) > 0
