"""Unit tests for block decomposition."""

import numpy as np
import pytest

from repro.core import Box, IndexOverflowError, ShapeError, check_linearizable
from repro.storage import (
    BlockedDataset,
    block_box,
    block_grid_shape,
    block_of_coords,
    partition_coords,
)


class TestGrid:
    def test_grid_shape_ceil(self):
        assert block_grid_shape((100, 64), (32, 32)) == (4, 2)

    def test_grid_mismatch(self):
        with pytest.raises(ShapeError):
            block_grid_shape((10, 10), (4,))

    def test_zero_block_rejected(self):
        with pytest.raises(ShapeError):
            block_grid_shape((10,), (0,))

    def test_block_of_coords(self):
        coords = np.array([[0, 0], [31, 31], [32, 0]], dtype=np.uint64)
        assert block_of_coords(coords, (32, 32)).tolist() == [
            [0, 0], [0, 0], [1, 0]
        ]

    def test_block_box_clipped(self):
        box = block_box((3, 1), (32, 32), (100, 64))
        assert box.origin == (96, 32)
        assert box.size == (4, 32)  # clipped at the tensor edge


class TestPartition:
    def test_partition_covers_everything(self, rng):
        shape = (64, 64)
        coords = np.column_stack(
            [rng.integers(0, 64, 100, dtype=np.uint64) for _ in range(2)]
        )
        values = rng.standard_normal(100)
        seen = 0
        for box, bc, bv in partition_coords(coords, values, shape, (16, 16)):
            assert box.contains_points(bc).all()
            assert bc.shape[0] == bv.shape[0]
            seen += bc.shape[0]
        assert seen == 100

    def test_partition_empty(self):
        parts = list(
            partition_coords(
                np.empty((0, 2), dtype=np.uint64), np.empty(0), (8, 8), (4, 4)
            )
        )
        assert parts == []

    def test_values_stay_aligned(self):
        coords = np.array([[0, 0], [40, 40], [1, 1]], dtype=np.uint64)
        values = np.array([1.0, 2.0, 3.0])
        blocks = {
            box.origin: (bc, bv)
            for box, bc, bv in partition_coords(coords, values, (64, 64),
                                                (32, 32))
        }
        bc, bv = blocks[(0, 0)]
        assert sorted(bv.tolist()) == [1.0, 3.0]
        bc, bv = blocks[(32, 32)]
        assert bv.tolist() == [2.0]


class TestBlockedDataset:
    def test_round_trip(self, tmp_path, tensor_3d):
        ds = BlockedDataset(tmp_path / "ds", tensor_3d.shape, (8, 8, 8),
                            "LINEAR")
        summary = ds.write_tensor(tensor_3d)
        assert summary.total_points == tensor_3d.nnz
        assert summary.n_blocks >= 1
        out = ds.read_points(tensor_3d.coords)
        assert out.found.all()
        assert np.allclose(out.values, tensor_3d.values)

    def test_read_box(self, tmp_path, tensor_3d):
        ds = BlockedDataset(tmp_path / "ds", tensor_3d.shape, (8, 8, 8), "CSF")
        ds.write_tensor(tensor_3d)
        box = Box((4, 4, 4), (8, 8, 8))
        got = ds.read_box(box)
        want = tensor_3d.select_box(box).sorted_by_linear()
        assert got.same_points(want)

    def test_overflowing_global_shape_supported(self, tmp_path):
        """The paper's §II-B scenario: the whole tensor's address space
        exceeds uint64, but block-local addressing stores it anyway."""
        shape = (2**22, 2**22, 2**22)  # 2^66 cells
        with pytest.raises(IndexOverflowError):
            check_linearizable(shape)
        coords = np.array(
            [[5, 7, 9], [2**21, 3, 4], [5, 7, 10]], dtype=np.uint64
        )
        ds = BlockedDataset(tmp_path / "big", shape, (1024, 1024, 1024),
                            "LINEAR")
        ds.write(coords, np.array([1.0, 2.0, 3.0]))
        out = ds.read_points(coords)
        assert out.found.all()
        assert sorted(out.values.tolist()) == [1.0, 2.0, 3.0]

    def test_block_shape_must_be_linearizable(self, tmp_path):
        with pytest.raises(IndexOverflowError):
            BlockedDataset(tmp_path / "x", (2**40, 2**40),
                           (2**35, 2**35), "LINEAR")

    def test_shape_mismatch(self, tmp_path, tensor_3d):
        ds = BlockedDataset(tmp_path / "ds", tensor_3d.shape, (8, 8, 8), "COO")
        from repro.core import SparseTensor

        with pytest.raises(ShapeError):
            ds.write_tensor(SparseTensor.empty((1, 1, 1)))
