"""Unit tests for the streaming writer."""

import numpy as np
import pytest

from repro.core import ShapeError
from repro.storage import FragmentStore
from repro.storage.streaming import StreamingWriter


@pytest.fixture
def store(tmp_path):
    return FragmentStore(tmp_path / "ds", (64, 64), "LINEAR")


def chunk(rng, n):
    coords = np.column_stack(
        [rng.integers(0, 64, n, dtype=np.uint64) for _ in range(2)]
    )
    return coords, rng.standard_normal(n)


class TestStreamingWriter:
    def test_flushes_at_budget(self, store, rng):
        w = StreamingWriter(store, flush_points=100)
        for _ in range(5):
            w.append(*chunk(rng, 30))
        # 150 points crossed the budget once -> one fragment so far.
        assert w.fragments_written == 1
        assert w.buffered_points == 150 - w.points_written

    def test_context_manager_flushes_tail(self, store, rng):
        coords, values = chunk(rng, 42)
        with StreamingWriter(store, flush_points=1000) as w:
            w.append(coords, values)
            assert w.fragments_written == 0
        assert w.fragments_written == 1
        out = store.read_points(coords)
        assert out.found.all()

    def test_everything_readable_after_close(self, store, rng):
        all_coords = []
        all_values = []
        with StreamingWriter(store, flush_points=64) as w:
            for _ in range(10):
                c, v = chunk(rng, 25)
                all_coords.append(c)
                all_values.append(v)
                w.append(c, v)
        assert w.points_written == 250
        coords = np.vstack(all_coords)
        out = store.read_points(coords)
        assert out.found.all()

    def test_error_drops_buffer(self, store, rng):
        coords, values = chunk(rng, 10)
        with pytest.raises(RuntimeError):
            with StreamingWriter(store, flush_points=1000) as w:
                w.append(coords, values)
                raise RuntimeError("producer died")
        assert w.fragments_written == 0
        assert len(store.fragments) == 0

    def test_empty_append_is_noop(self, store):
        w = StreamingWriter(store)
        w.append(np.empty((0, 2), dtype=np.uint64), np.empty(0))
        assert w.buffered_points == 0
        assert w.flush() is None

    def test_oversized_single_append(self, store, rng):
        w = StreamingWriter(store, flush_points=50)
        w.append(*chunk(rng, 500))
        assert w.fragments_written >= 1
        assert w.buffered_points == 0

    def test_validation(self, store, rng):
        w = StreamingWriter(store)
        with pytest.raises(ShapeError):
            w.append(np.zeros((2, 3), dtype=np.uint64), np.zeros(2))
        with pytest.raises(ShapeError):
            w.append(np.zeros((2, 2), dtype=np.uint64), np.zeros(3))
        with pytest.raises(ValueError):
            StreamingWriter(store, flush_points=0)
