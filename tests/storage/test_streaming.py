"""Unit tests for the streaming writer."""

import numpy as np
import pytest

from repro.core import ShapeError
from repro.storage import FragmentStore
from repro.storage.streaming import StreamingWriter


@pytest.fixture
def store(tmp_path):
    return FragmentStore(tmp_path / "ds", (64, 64), "LINEAR")


def chunk(rng, n):
    coords = np.column_stack(
        [rng.integers(0, 64, n, dtype=np.uint64) for _ in range(2)]
    )
    return coords, rng.standard_normal(n)


class TestStreamingWriter:
    def test_appends_are_durable_immediately(self, store, rng):
        coords, values = chunk(rng, 42)
        w = StreamingWriter(store, pack_points=1000)
        w.append(coords, values)
        # No fragment yet, but the points are already readable (WAL tail)
        # and survive a reopen without any flush.
        assert w.fragments_written == 0
        assert store.read_points(coords).found.all()
        reopened = FragmentStore(store.directory, (64, 64), "LINEAR")
        assert reopened.read_points(coords).found.all()

    def test_packs_at_budget(self, store, rng):
        w = StreamingWriter(store, pack_points=100)
        for _ in range(5):
            w.append(*chunk(rng, 30))
        # 150 points crossed the budget once -> one packed fragment.
        assert w.fragments_written == 1
        assert w.buffered_points == 150 - w.points_written

    def test_context_manager_packs_tail(self, store, rng):
        coords, values = chunk(rng, 42)
        with StreamingWriter(store, pack_points=1000) as w:
            w.append(coords, values)
            assert w.fragments_written == 0
        assert w.fragments_written == 1
        assert store.wal_stats()["points"] == 0
        out = store.read_points(coords)
        assert out.found.all()

    def test_everything_readable_after_close(self, store, rng):
        all_coords = []
        with StreamingWriter(store, pack_points=64) as w:
            for _ in range(10):
                c, v = chunk(rng, 25)
                all_coords.append(c)
                w.append(c, v)
        assert w.points_written == 250
        assert w.buffered_points == 0
        out = store.read_points(np.vstack(all_coords))
        assert out.found.all()

    def test_error_never_commits_a_fragment(self, store, rng):
        coords, values = chunk(rng, 10)
        with pytest.raises(RuntimeError):
            with pytest.warns(RuntimeWarning, match="unpacked"):
                with StreamingWriter(store, pack_points=1000) as w:
                    w.append(coords, values)
                    raise RuntimeError("producer died")
        assert w.fragments_written == 0
        assert len(store.fragments) == 0
        # Durable mode: the appended points survive in the WAL anyway.
        assert store.read_points(coords).found.all()

    def test_non_durable_error_drops_buffer(self, store, rng):
        coords, values = chunk(rng, 10)
        with pytest.raises(RuntimeError):
            with pytest.warns(RuntimeWarning, match="discarding"):
                with StreamingWriter(
                    store, pack_points=1000, durable=False
                ) as w:
                    w.append(coords, values)
                    raise RuntimeError("producer died")
        assert w.fragments_written == 0
        assert len(store.fragments) == 0
        assert not store.read_points(coords).found.any()

    def test_non_durable_buffers_in_memory(self, store, rng):
        coords, values = chunk(rng, 42)
        with StreamingWriter(store, pack_points=1000, durable=False) as w:
            w.append(coords, values)
            assert w.buffered_points == 42
            assert store.wal_stats()["points"] == 0
        assert w.fragments_written == 1
        assert store.read_points(coords).found.all()

    def test_flush_points_shim(self, store, rng):
        import repro.storage.streaming as streaming

        streaming._WARNED_FLUSH_POINTS = False
        with pytest.warns(DeprecationWarning, match="flush_points"):
            w = StreamingWriter(store, flush_points=77)
        assert w.pack_points == 77
        # Warn-once: the second use is silent.
        with warnings_catcher() as caught:
            StreamingWriter(store, flush_points=77)
        assert not caught

    def test_empty_append_is_noop(self, store):
        w = StreamingWriter(store)
        w.append(np.empty((0, 2), dtype=np.uint64), np.empty(0))
        assert w.buffered_points == 0
        assert w.flush() is None

    def test_oversized_single_append(self, store, rng):
        w = StreamingWriter(store, pack_points=50)
        w.append(*chunk(rng, 500))
        assert w.fragments_written >= 1
        assert w.buffered_points == 0

    def test_validation(self, store, rng):
        w = StreamingWriter(store)
        with pytest.raises(ShapeError):
            w.append(np.zeros((2, 3), dtype=np.uint64), np.zeros(2))
        with pytest.raises(ShapeError):
            w.append(np.zeros((2, 2), dtype=np.uint64), np.zeros(3))
        with pytest.raises(ValueError):
            StreamingWriter(store, pack_points=0)
        with pytest.raises(ValueError):
            import repro.storage.streaming as streaming

            streaming._WARNED_FLUSH_POINTS = True  # silence the shim
            StreamingWriter(store, flush_points=0)


def warnings_catcher():
    import warnings

    class _Catcher:
        def __enter__(self):
            self._cm = warnings.catch_warnings(record=True)
            caught = self._cm.__enter__()
            warnings.simplefilter("always")
            return caught

        def __exit__(self, *exc):
            return self._cm.__exit__(*exc)

    return _Catcher()
