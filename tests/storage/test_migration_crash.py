"""Crash-consistency for format migration: kill every durable op.

A deterministic workload — open, two writes, migrate a fragment,
compact, migrate again — runs once under
:class:`~repro.testing.faults.OpRecorder` to enumerate every
durability-layer op, then once per op with a plan that kills exactly
that op.  Invariants:

* reopening always succeeds and yields a *consistent prefix* of the
  writes — each write is atomic, and migration/compaction never lose or
  duplicate a committed point;
* every fragment the reopened store serves is in either its **old or
  its new** format (the manifest commit is the atomic switch point) and
  reads bit-identically either way;
* ``fsck --repair`` then ``fsck`` is clean — a replacement fragment
  orphaned between its file write and the manifest commit is detected
  and recovered from its self-describing header.
"""

import warnings

import numpy as np
import pytest

from repro.core.boundary import Box
from repro.storage import FragmentStore, StoreOptions, fsck
from repro.testing.faults import OpRecorder, inject, plan_for_crash_point

SHAPE = (32, 32)
N_WRITES = 2

#: Formats the workload moves through; any fragment the recovered store
#: serves must be in one of these (old-or-new, never half-migrated).
ALLOWED_FORMATS = {"COO-SORTED", "LINEAR", "GCSR++"}

OPTS = StoreOptions(fsync=True)


def part(j):
    """Write ``j``'s payload: 10 points on row ``j``, disjoint per write."""
    coords = np.column_stack(
        [np.full(10, j, dtype=np.uint64), np.arange(10, dtype=np.uint64)]
    )
    values = float(j * 100) + np.arange(10, dtype=float)
    return coords, values


def run_workload(directory):
    """Open, write twice, migrate, compact, migrate the survivor again."""
    store = FragmentStore(directory, SHAPE, "COO-SORTED", options=OPTS)
    for j in range(N_WRITES):
        store.write(*part(j))
    store.migrate_fragment(0, "LINEAR")
    store.compact()
    store.migrate_fragment(0, "GCSR++")


def reopen(directory):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        return FragmentStore(directory, SHAPE, "COO-SORTED", options=OPTS)


def record_injection_points(tmp_path):
    recorder = OpRecorder()
    with inject(recorder):
        run_workload(tmp_path / "record")
    return recorder.events


def assert_consistent(store, allowed=frozenset(ALLOWED_FORMATS)):
    """Writes are atomic and prefix-visible; formats are old-or-new."""
    present = []
    for j in range(N_WRITES):
        coords, values = part(j)
        out = store.read_points(coords)
        if out.found.all():
            assert np.allclose(out.values, values)
            present.append(True)
        else:
            assert not out.found.any(), f"write {j} is half-visible"
            present.append(False)
    k = sum(present)
    assert present == [True] * k + [False] * (N_WRITES - k), (
        f"visible writes {present} are not a prefix"
    )
    for frag in store.fragments:
        assert frag.format_name in allowed, (
            f"unexpected fragment format {frag.format_name!r}"
        )
    box = store.read_box(Box((0, 0), SHAPE))
    lin = box.coords[:, 0] * SHAPE[1] + box.coords[:, 1]
    assert np.unique(lin).size == lin.size, "duplicate coords in read view"
    assert lin.size == 10 * k, "migration lost or duplicated points"
    return k


def crash_and_recover(tmp_path, events, index, torn_bytes=None):
    directory = tmp_path / f"crash-{index}-{torn_bytes}"
    plan = plan_for_crash_point(events, index, torn_bytes=torn_bytes)
    with inject(plan):
        # The workload dies at the injected op — except when the victim
        # is the advisory workload ledger, whose persistence failure is
        # swallowed by design (observations are not data).
        try:
            run_workload(directory)
        except OSError:
            pass
    assert plan.fired, "the planned fault never triggered"

    k = assert_consistent(reopen(directory))

    report = fsck(directory, repair=True)
    assert fsck(directory).clean, f"fsck not clean after repair: {report}"
    # Repair may *recover* a write whose fragment was durable but whose
    # manifest commit was the crashed op (the orphan's self-describing
    # header carries its format and codec) — it must never lose one.
    k_repaired = assert_consistent(reopen(directory))
    assert k_repaired >= k, "fsck repair lost a committed write"
    return k


class TestInjectionPointEnumeration:
    def test_recorded_ops_cover_the_migration_lifecycle(self, tmp_path):
        events = record_injection_points(tmp_path)
        ops = [e.op for e in events]
        names = [e.path.name for e in events]
        assert "fsync" in ops
        assert "rename" in ops
        # Each migration writes a replacement fragment and removes the
        # doomed original after the manifest commit.
        assert "unlink" in ops
        assert any(n.startswith("frag-") for n in names)
        assert "manifest.json" in names


class TestMigrationCrashConsistency:
    def test_every_injection_point_recovers(self, tmp_path):
        events = record_injection_points(tmp_path)
        sizes = []
        for index in range(len(events)):
            sizes.append(crash_and_recover(tmp_path, events, index))
        # The earliest crash commits nothing; crashes during/after the
        # migrations keep both writes.
        assert sizes[0] == 0
        assert max(sizes) == N_WRITES

    def test_torn_fragment_writes_during_migration(self, tmp_path):
        events = record_injection_points(tmp_path)
        frag_writes = [
            i for i, e in enumerate(events)
            if e.op == "write" and e.path.name.startswith("frag-")
        ]
        assert frag_writes
        for index in frag_writes:
            for torn in (0, 1, 37):
                crash_and_recover(tmp_path, events, index, torn_bytes=torn)

    def test_crash_then_migrate_again(self, tmp_path):
        """Recovery is not read-only: migration keeps working after it."""
        events = record_injection_points(tmp_path)
        directory = tmp_path / "resume"
        plan = plan_for_crash_point(events, len(events) - 1)
        with inject(plan):
            try:
                run_workload(directory)
            except OSError:
                pass
        assert plan.fired
        store = reopen(directory)
        k = assert_consistent(store)
        store.migrate_all("CSF")
        assert all(f.format_name == "CSF" for f in store.fragments)
        recovered = reopen(directory)
        assert assert_consistent(recovered, allowed={"CSF"}) == k


def run_order_workload(directory):
    """Open, write twice, re-linearize to ALTO, compact."""
    store = FragmentStore(directory, SHAPE, "COO-SORTED", options=OPTS)
    for j in range(N_WRITES):
        store.write(*part(j))
    store.set_addr_order("alto")
    store.compact()


def assert_order_consistent(store):
    """Reads are prefix-consistent and every fragment's manifest tag is
    old-or-new *and* agrees with its self-describing file header."""
    from repro.storage.serialization import unpack_header

    k = assert_consistent(store, allowed={"COO-SORTED"})
    for frag in store.fragments:
        assert frag.addr_order in ("row_major", "alto"), frag.addr_order
        header, _ = unpack_header(frag.path.read_bytes())
        want = str(
            (header.get("extra") or {}).get("addr_order")
            or (header.get("meta") or {}).get("addr_order")
            or "row_major"
        )
        assert frag.addr_order == want, (
            f"{frag.path.name}: manifest tag {frag.addr_order!r} "
            f"disagrees with header tag {want!r}"
        )
    return k


class TestAddrOrderMigrationCrashConsistency:
    """Kill every durable op in write -> set_addr_order("alto") ->
    compact.  The per-fragment commit protocol must leave a readable
    (possibly mixed-order) store, and ``fsck --repair`` must recover
    orphaned re-linearized fragments with the correct ``addr_order``
    tag taken from their self-describing headers."""

    def record(self, tmp_path):
        recorder = OpRecorder()
        with inject(recorder):
            run_order_workload(tmp_path / "order-record")
        return recorder.events

    def test_recorded_ops_cover_the_reorder_lifecycle(self, tmp_path):
        events = self.record(tmp_path)
        ops = [e.op for e in events]
        names = [e.path.name for e in events]
        assert "fsync" in ops and "rename" in ops and "unlink" in ops
        assert any(n.startswith("frag-") for n in names)
        assert "manifest.json" in names

    def test_every_injection_point_recovers(self, tmp_path):
        events = self.record(tmp_path)
        sizes = []
        for index in range(len(events)):
            directory = tmp_path / f"order-crash-{index}"
            plan = plan_for_crash_point(events, index)
            with inject(plan):
                try:
                    run_order_workload(directory)
                except OSError:
                    pass
            assert plan.fired, "the planned fault never triggered"
            k = assert_order_consistent(reopen(directory))
            report = fsck(directory, repair=True)
            assert fsck(directory).clean, (
                f"fsck not clean after repair: {report}"
            )
            k_repaired = assert_order_consistent(reopen(directory))
            assert k_repaired >= k, "fsck repair lost a committed write"
            sizes.append(k_repaired)
        assert sizes[0] == 0
        assert max(sizes) == N_WRITES

    def test_torn_reorder_fragment_writes(self, tmp_path):
        """A torn replacement fragment must never be adopted: the
        original (row-major) fragment stays live, reads stay intact,
        and repair discards or completes the orphan — with whatever
        order tag its header managed to claim."""
        events = self.record(tmp_path)
        frag_writes = [
            i for i, e in enumerate(events)
            if e.op == "write" and e.path.name.startswith("frag-")
        ]
        assert frag_writes
        for index in frag_writes:
            for torn in (0, 37):
                directory = tmp_path / f"order-torn-{index}-{torn}"
                plan = plan_for_crash_point(events, index, torn_bytes=torn)
                with inject(plan):
                    try:
                        run_order_workload(directory)
                    except OSError:
                        pass
                assert plan.fired
                k = assert_order_consistent(reopen(directory))
                fsck(directory, repair=True)
                assert fsck(directory).clean
                assert assert_order_consistent(reopen(directory)) >= k

    def test_crash_then_reorder_again(self, tmp_path):
        """Re-running set_addr_order after recovery converges: every
        fragment ends tagged alto and reads are unchanged."""
        events = self.record(tmp_path)
        # Crash on every manifest commit in turn, then finish the job.
        manifest_commits = [
            i for i, e in enumerate(events)
            if e.op == "rename" and e.path.name == "manifest.json"
        ]
        assert manifest_commits
        for index in manifest_commits[:4]:
            directory = tmp_path / f"order-resume-{index}"
            plan = plan_for_crash_point(events, index)
            with inject(plan):
                try:
                    run_order_workload(directory)
                except OSError:
                    pass
            assert plan.fired
            store = reopen(directory)
            k = assert_order_consistent(store)
            store.set_addr_order("alto")
            assert all(f.addr_order == "alto" for f in store.fragments)
            assert store.addr_order == "alto"
            recovered = reopen(directory)
            assert recovered.addr_order == "alto"
            assert assert_order_consistent(recovered) == k
