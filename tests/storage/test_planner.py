"""Read-side query planner: zone maps, spatial index, plan execution."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core.boundary import Box
from repro.core.errors import ShapeError
from repro.storage import (
    ZONE_HIST_BUCKETS,
    FragmentIndex,
    FragmentStore,
    QueryPlan,
    ZoneMap,
)


@pytest.fixture(autouse=True)
def clean_obs():
    was_enabled = obs.is_enabled()
    obs.enable()
    obs.reset()
    yield
    obs.reset()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()


def _counter(name: str) -> int:
    return sum(
        c["value"] for c in obs.snapshot()["counters"] if c["name"] == name
    )


def _band_store(tmp_path, *, n_fragments=8, points=64, seed=0, **kwargs):
    """Disjoint-row-band LINEAR store; returns (store, per-band coords)."""
    shape = (n_fragments * 16, 64)
    rng = np.random.default_rng(seed)
    store = FragmentStore(tmp_path / "ds", shape, "LINEAR", **kwargs)
    bands = []
    for i in range(n_fragments):
        rows = rng.integers(i * 16, (i + 1) * 16, size=points,
                            dtype=np.uint64)
        cols = rng.integers(0, 64, size=points, dtype=np.uint64)
        coords = np.column_stack([rows, cols])
        store.write(coords, rng.random(points))
        bands.append(coords)
    return store, bands


class TestZoneMap:
    def test_empty_addresses_yield_no_zone(self):
        assert ZoneMap.from_addresses(np.empty(0, dtype=np.uint64)) is None

    def test_single_address(self):
        zm = ZoneMap.from_addresses(np.array([42], dtype=np.uint64))
        assert zm.addr_min == zm.addr_max == 42
        assert sum(zm.hist) == 1
        assert zm.may_contain_any(np.array([42], dtype=np.uint64))
        assert not zm.may_contain_any(np.array([41, 43], dtype=np.uint64))

    def test_sorted_and_unsorted_agree(self):
        a = np.array([9, 3, 77, 3, 50], dtype=np.uint64)
        zm = ZoneMap.from_addresses(a)
        zs = ZoneMap.from_addresses(np.sort(a), assume_sorted=True)
        assert zm == zs
        assert sum(zm.hist) == a.size

    def test_json_round_trip(self):
        zm = ZoneMap.from_addresses(np.arange(100, dtype=np.uint64))
        assert ZoneMap.from_json(zm.to_json()) == zm
        assert json.loads(json.dumps(zm.to_json())) == zm.to_json()

    @pytest.mark.parametrize("bad", [
        None, "garbage", 7, [], {"addr_min": 0},
        {"addr_min": "x", "addr_max": 3, "hist": []},
        {"addr_min": 0, "addr_max": 3, "hist": ["x"]},
    ])
    def test_from_json_tolerates_malformed(self, bad):
        assert ZoneMap.from_json(bad) is None

    def test_overlaps_range(self):
        # Points clustered at both ends; the middle buckets are empty.
        a = np.concatenate([
            np.arange(0, 10, dtype=np.uint64),
            np.arange(1590, 1600, dtype=np.uint64),
        ])
        zm = ZoneMap.from_addresses(a)
        assert zm.overlaps_range(0, 5)
        assert zm.overlaps_range(1595, 10_000)
        assert not zm.overlaps_range(1700, 1800)  # beyond addr_max
        assert not zm.overlaps_range(700, 800)    # empty middle bucket
        width = zm.bucket_width
        assert width == -(-1600 // ZONE_HIST_BUCKETS)

    def test_may_contain_any_clips_to_range(self):
        zm = ZoneMap.from_addresses(np.arange(100, 200, dtype=np.uint64))
        assert not zm.may_contain_any(np.empty(0, dtype=np.uint64))
        assert not zm.may_contain_any(np.array([0, 99], dtype=np.uint64))
        assert not zm.may_contain_any(np.array([201, 500], dtype=np.uint64))
        assert zm.may_contain_any(np.array([0, 150, 500], dtype=np.uint64))

    def test_huge_addresses_do_not_overflow(self):
        # Near the top of the uint64 address space: span math must run in
        # arbitrary precision, bucketing in uint64.
        top = np.iinfo(np.uint64).max
        a = np.array([0, top - 1, top], dtype=np.uint64)
        zm = ZoneMap.from_addresses(a)
        assert zm.addr_min == 0 and zm.addr_max == int(top)
        assert zm.bucket_width > 0
        assert zm.may_contain_any(np.array([top - 1], dtype=np.uint64))
        assert zm.overlaps_range(top - 2, top)
        rt = ZoneMap.from_json(zm.to_json())
        assert rt == zm


@dataclass
class _Frag:
    bbox: Box
    nnz: int = 1
    zone: ZoneMap | None = None


class TestFragmentIndex:
    def test_matches_linear_intersects_scan(self):
        rng = np.random.default_rng(1)
        frags = []
        for _ in range(64):
            origin = rng.integers(0, 96, size=3)
            size = rng.integers(0, 16, size=3)  # includes empty boxes
            frags.append(_Frag(Box(tuple(origin), tuple(size))))
        index = FragmentIndex(frags)
        for _ in range(64):
            origin = rng.integers(0, 96, size=3)
            size = rng.integers(0, 32, size=3)
            q = Box(tuple(origin), tuple(size))
            expected = [
                i for i, f in enumerate(frags) if f.bbox.intersects(q)
            ]
            assert index.candidates(q).tolist() == expected

    def test_empty_inputs(self):
        assert len(FragmentIndex([])) == 0
        assert FragmentIndex([]).candidates(Box((0,), (4,))).size == 0
        index = FragmentIndex([_Frag(Box((0, 0), (4, 4)))])
        assert index.candidates(Box((0, 0), (0, 4))).size == 0

    def test_stale_zone_count(self):
        zm = ZoneMap.from_addresses(np.arange(4, dtype=np.uint64))
        frags = [
            _Frag(Box((0,), (4,)), nnz=4, zone=None),    # stale
            _Frag(Box((4,), (4,)), nnz=4, zone=zm),      # has zone
            _Frag(Box((0,), (8,)), nnz=0, zone=None),    # empty: not stale
        ]
        assert FragmentIndex(frags).stale_zone_count == 1


class TestStorePlanning:
    def test_scattered_points_prune_by_zone(self, tmp_path):
        store, bands = _band_store(tmp_path)
        queries = np.vstack([bands[0][:8], bands[7][:8]])
        plan = store.explain(queries)
        # The batch bbox spans every band, so bbox pruning gets nothing;
        # zone maps cut the visit list to the two touched bands.
        assert plan.kind == "points"
        assert plan.total_fragments == 8
        assert plan.pruned_bbox == 0
        assert plan.used_index and plan.used_zonemaps
        assert len(plan.fragments) == 2
        assert plan.pruned_zonemap == 6
        out = store.read_points(queries)
        assert out.found.all()
        assert out.fragments_visited == 2

    def test_plan_on_off_results_identical(self, tmp_path):
        store_on, bands = _band_store(tmp_path)
        store_off = FragmentStore(
            tmp_path / "ds", store_on.shape, "LINEAR", planner=False
        )
        queries = np.vstack([b[:4] for b in bands])
        a = store_on.read_points(queries)
        b = store_off.read_points(queries)
        np.testing.assert_array_equal(a.found, b.found)
        np.testing.assert_array_equal(a.values, b.values)
        box = Box((8, 0), (24, 64))
        ta = store_on.read_box(box)
        tb = store_off.read_box(box)
        np.testing.assert_array_equal(ta.coords, tb.coords)
        np.testing.assert_array_equal(ta.values, tb.values)

    def test_box_plan_uses_index(self, tmp_path):
        store, _ = _band_store(tmp_path)
        plan = store.explain(Box((0, 0), (16, 64)))
        assert plan.kind == "box"
        assert plan.used_index
        assert len(plan.fragments) == 1
        assert "bbox-index" in plan.summary()

    def test_explain_empty_and_invalid_queries(self, tmp_path):
        store, _ = _band_store(tmp_path, n_fragments=2)
        plan = store.explain(np.empty((0, 2), dtype=np.uint64))
        assert isinstance(plan, QueryPlan)
        assert plan.fragments == [] and plan.total_fragments == 2
        with pytest.raises(ShapeError):
            store.explain(np.zeros((3, 5), dtype=np.uint64))

    def test_plan_off_explain_is_seed_scan(self, tmp_path):
        store, bands = _band_store(tmp_path, n_fragments=4, planner=False)
        plan = store.explain(np.vstack([bands[0][:4], bands[3][:4]]))
        assert not plan.used_index and not plan.used_zonemaps
        assert plan.pruned_zonemap == 0
        # Spanning batch bbox -> the seed scan keeps every fragment.
        assert len(plan.fragments) == 4
        assert "bbox-scan" in plan.summary()

    def test_index_rebuilds_once_per_generation(self, tmp_path):
        store, bands = _band_store(tmp_path, n_fragments=4)
        store.read_points(bands[0][:4])
        store.read_points(bands[1][:4])
        assert _counter("store.plan.index_rebuilds") == 1
        store.write(bands[0][:4], np.ones(4))  # generation bump
        store.read_points(bands[0][:4])
        assert _counter("store.plan.index_rebuilds") == 2

    def test_pruning_counters_split(self, tmp_path):
        store, bands = _band_store(tmp_path, n_fragments=4)
        # One band's points: bbox stage prunes the other 3 bands; the
        # zone stage has nothing left to prune.
        store.read_points(bands[2][:8])
        assert _counter("store.fragments_pruned") == 3
        assert _counter("store.plan.fragments_pruned_index") == 3
        assert _counter("store.plan.fragments_pruned_zonemap") == 0
        # Scattered batch: bbox prunes nothing, zones prune 2 of 4.
        store.read_points(np.vstack([bands[0][:8], bands[3][:8]]))
        # Unchanged: store.fragments_pruned counts bbox prunes only.
        assert _counter("store.fragments_pruned") == 3
        assert _counter("store.plan.fragments_pruned_zonemap") == 2

    def test_invalid_crc_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FragmentStore(tmp_path / "ds", (8, 8), "LINEAR", crc_mode="bad")


class TestBackfill:
    def _strip_zones(self, directory: Path) -> None:
        """Rewrite the manifest as a pre-planner (v1) store would have."""
        path = directory / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest.pop("version", None)
        for entry in manifest["fragments"]:
            entry.pop("zone", None)
        path.write_text(json.dumps(manifest))

    def test_v1_manifest_backfilled_and_persisted(self, tmp_path):
        store, bands = _band_store(tmp_path, n_fragments=4)
        self._strip_zones(store.directory)
        reopened = FragmentStore(tmp_path / "ds", store.shape, "LINEAR")
        assert all(f.zone is None for f in reopened.fragments)
        out = reopened.read_points(bands[1][:8])
        assert out.found.all()
        assert all(f.zone is not None for f in reopened.fragments)
        assert _counter("store.plan.zone_backfilled") == 4
        # Persisted: a third open sees v2 zones without re-backfilling.
        manifest = json.loads(
            (store.directory / "manifest.json").read_text()
        )
        assert manifest["version"] == 2
        assert all(e["zone"] for e in manifest["fragments"])
        third = FragmentStore(tmp_path / "ds", store.shape, "LINEAR")
        assert all(f.zone is not None for f in third.fragments)

    def test_backfill_runs_once_per_load(self, tmp_path):
        store, bands = _band_store(tmp_path, n_fragments=2)
        self._strip_zones(store.directory)
        reopened = FragmentStore(tmp_path / "ds", store.shape, "LINEAR")
        assert reopened.backfill_zone_maps() == 2
        assert reopened.backfill_zone_maps() == 0  # idempotent
        reopened.read_points(bands[0][:4])
        assert _counter("store.plan.zone_backfilled") == 2

    def test_plan_off_store_leaves_v1_manifest_alone(self, tmp_path):
        store, bands = _band_store(tmp_path, n_fragments=2)
        self._strip_zones(store.directory)
        off = FragmentStore(
            tmp_path / "ds", store.shape, "LINEAR", planner=False
        )
        assert off.read_points(bands[0][:4]).found.all()
        manifest = json.loads(
            (store.directory / "manifest.json").read_text()
        )
        assert "version" not in manifest  # no surprise schema upgrade


class TestCrcMemoAndLazy:
    def test_crc_memo_hits_on_repeat_reads(self, tmp_path):
        store, bands = _band_store(
            tmp_path, n_fragments=2, crc_mode="once"
        )
        q = bands[0][:8]
        store.read_points(q)  # first read verifies + memoizes
        assert _counter("store.plan.crc_memo_hits") == 0
        store.read_points(q)
        assert _counter("store.plan.crc_memo_hits") == 1
        # A write invalidates the memo alongside the decoded cache.
        store.write(bands[0][:4], np.ones(4))
        store.read_points(q)
        assert _counter("store.plan.crc_memo_hits") == 1
        store.read_points(q)
        assert _counter("store.plan.crc_memo_hits") > 1

    def test_eager_mode_never_memoizes(self, tmp_path):
        store, bands = _band_store(tmp_path, n_fragments=2)
        store.read_points(bands[0][:8])
        store.read_points(bands[0][:8])
        assert _counter("store.plan.crc_memo_hits") == 0

    def test_lazy_load_identical_results(self, tmp_path):
        store, bands = _band_store(tmp_path, n_fragments=4)
        lazy = FragmentStore(
            tmp_path / "ds", store.shape, "LINEAR",
            lazy_load=True, crc_mode="once",
        )
        queries = np.vstack([b[:8] for b in bands])
        a = store.read_points(queries)
        b = lazy.read_points(queries)
        np.testing.assert_array_equal(a.found, b.found)
        np.testing.assert_array_equal(a.values, b.values)
        assert _counter("store.plan.lazy_bytes_avoided") > 0
        box = Box((0, 0), store.shape)
        np.testing.assert_array_equal(
            store.read_box(box).values, lazy.read_box(box).values
        )

    def test_lazy_load_detects_corruption(self, tmp_path):
        store, bands = _band_store(tmp_path, n_fragments=2)
        frag_path = store.fragments[0].path
        blob = bytearray(frag_path.read_bytes())
        blob[-3] ^= 0xFF
        frag_path.write_bytes(bytes(blob))
        lazy = FragmentStore(
            tmp_path / "ds", store.shape, "LINEAR", lazy_load=True
        )
        from repro.core.errors import FragmentError

        with pytest.raises(FragmentError):
            lazy.read_points(bands[0][:8])
