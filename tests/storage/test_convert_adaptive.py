"""Unit tests for store conversion and the adaptive store."""

import numpy as np
import pytest

from repro.analysis import ANALYTICAL, ARCHIVAL
from repro.core import Box
from repro.core.errors import FragmentError
from repro.patterns import GSPPattern, TSPPattern
from repro.storage import FragmentStore
from repro.storage.adaptive import AdaptiveStore
from repro.storage.convert import convert_store


class TestConvertStore:
    def test_round_trip_content(self, tmp_path, tensor_3d):
        src = FragmentStore(tmp_path / "src", tensor_3d.shape, "COO")
        half = tensor_3d.nnz // 2
        src.write(tensor_3d.coords[:half], tensor_3d.values[:half])
        src.write(tensor_3d.coords[half:], tensor_3d.values[half:])
        dest = convert_store(src, tmp_path / "dst", "CSF")
        assert len(dest.fragments) == 2
        assert all(f.format_name == "CSF" for f in dest.fragments)
        out = dest.read_points(tensor_3d.coords)
        assert out.found.all()
        assert np.allclose(out.values, tensor_3d.values)

    def test_source_untouched(self, tmp_path, tensor_2d):
        src = FragmentStore(tmp_path / "src", tensor_2d.shape, "LINEAR")
        src.write_tensor(tensor_2d)
        before = src.fragments[0].path.read_bytes()
        convert_store(src, tmp_path / "dst", "GCSR++")
        assert src.fragments[0].path.read_bytes() == before

    def test_compact_option(self, tmp_path, tensor_2d):
        src = FragmentStore(tmp_path / "src", tensor_2d.shape, "COO")
        src.write_tensor(tensor_2d)
        src.write_tensor(tensor_2d)  # duplicate content
        dest = convert_store(src, tmp_path / "dst", "LINEAR", compact=True)
        assert len(dest.fragments) == 1
        assert dest.nnz == tensor_2d.nnz  # dedup applied

    def test_codec_override(self, tmp_path, tensor_2d):
        src = FragmentStore(tmp_path / "src", tensor_2d.shape, "COO")
        src.write_tensor(tensor_2d)
        dest = convert_store(src, tmp_path / "dst", "LINEAR",
                             codec="delta-zlib")
        assert dest.codec == "delta-zlib"
        out = dest.read_points(tensor_2d.coords)
        assert out.found.all()

    def test_nonempty_destination_rejected(self, tmp_path, tensor_2d):
        src = FragmentStore(tmp_path / "src", tensor_2d.shape, "COO")
        src.write_tensor(tensor_2d)
        dest_dir = tmp_path / "dst"
        convert_store(src, dest_dir, "LINEAR")
        with pytest.raises(FragmentError, match="already contains"):
            convert_store(src, dest_dir, "CSF")

    def test_conversion_can_shrink(self, tmp_path, tensor_4d):
        """COO -> LINEAR drops the index footprint ~d-fold."""
        src = FragmentStore(tmp_path / "src", tensor_4d.shape, "COO")
        src.write_tensor(tensor_4d)
        dest = convert_store(src, tmp_path / "dst", "LINEAR")
        assert dest.total_file_nbytes < src.total_file_nbytes


class TestAdaptiveStore:
    def test_reads_work_across_mixed_formats(self, tmp_path):
        shape = (96, 96, 96)
        store = AdaptiveStore(tmp_path / "ds", shape, workload=ANALYTICAL)
        clustered = TSPPattern(shape, band_width=1).generate(1)
        uniform = GSPPattern(shape, threshold=0.995).generate(2)
        store.write_tensor(clustered)
        store.write_tensor(uniform)
        assert len(store.choices) == 2
        out = store.read_points(clustered.coords)
        assert out.found.all()
        out = store.read_points(uniform.coords)
        assert out.found.all()
        box = Box((0, 0, 0), (48, 96, 96))
        got = store.read_box(box)
        # The two patterns can collide on coordinates; the store dedups
        # newest-wins, so the expectation is the merged union.
        from repro.core import SparseTensor

        merged = SparseTensor(
            shape,
            np.vstack([clustered.coords, uniform.coords]),
            np.concatenate([clustered.values, uniform.values]),
        ).deduplicated(keep="last")
        assert got.same_points(merged.select_box(box).sorted_by_linear())

    def test_never_picks_coo(self, tmp_path):
        shape = (64, 64, 64)
        store = AdaptiveStore(tmp_path / "ds", shape)
        for seed in range(3):
            store.write_tensor(GSPPattern(shape, threshold=0.99).generate(seed))
        assert "COO" not in store.format_histogram()

    def test_workload_changes_choices(self, tmp_path):
        shape = (64, 64, 64)
        tensor = GSPPattern(shape, threshold=0.99).generate(7)
        archival = AdaptiveStore(tmp_path / "a", shape, workload=ARCHIVAL)
        analytical = AdaptiveStore(tmp_path / "b", shape,
                                   workload=ANALYTICAL)
        archival.write_tensor(tensor)
        analytical.write_tensor(tensor)
        assert archival.choices[0] == "LINEAR"
        assert analytical.choices[0] in ("CSF", "GCSR++", "GCSC++")

    def test_candidate_restriction(self, tmp_path):
        shape = (32, 32)
        store = AdaptiveStore(
            tmp_path / "ds", shape, candidates=("LINEAR", "COO")
        )
        store.write_tensor(GSPPattern(shape, threshold=0.9).generate(1))
        assert store.choices[0] in ("LINEAR", "COO")

    def test_manifest_reload_keeps_fragment_formats(self, tmp_path):
        shape = (64, 64, 64)
        store = AdaptiveStore(tmp_path / "ds", shape, workload=ANALYTICAL)
        tensor = GSPPattern(shape, threshold=0.99).generate(3)
        store.write_tensor(tensor)
        picked = store.choices[0]
        reloaded = FragmentStore(tmp_path / "ds", shape, "LINEAR")
        assert reloaded.fragments[0].format_name == picked
        out = reloaded.read_points(tensor.coords)
        assert out.found.all()
