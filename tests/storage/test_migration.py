"""Workload-adaptive format migration: kernels, policy, ledger, stores.

The heart of the suite is :class:`TestMigrationDifferential`: every
registered direct-conversion kernel must produce **byte-identical**
payloads to the canonical (extract_addresses → CanonicalCoords → build)
path, and every store-level migration must read **bit-identically**
before and after — across codecs, planner settings, and store kinds
(including :class:`~repro.storage.sharded.ShardedStore`).
"""

import json

import numpy as np
import pytest

from repro.analysis.advisor import ARCHIVAL, BALANCED
from repro.build.canonical import CanonicalCoords
from repro.core import Box, SparseTensor
from repro.formats.registry import get_format, resolve_format
from repro.obs.workload import FragmentWorkload, WorkloadLedger
from repro.storage import (
    AdaptiveStore,
    FragmentStore,
    MigrationPolicy,
    ShardedStore,
    StoreOptions,
    convert_store,
    direct_convert,
    get_kernel,
    registered_pairs,
)
from repro.storage.store import WORKLOAD_LEDGER_NAME

#: Shapes whose CSF dimension permutation is identity (ascending extents)
#: so every registered kernel — CSF pairs included — actually fires.
SHAPE_3D = (48, 64, 96)
SHAPE_2D = (96, 128)

HOT_PAIRS = registered_pairs()


def make_tensor(shape, n, seed=7) -> SparseTensor:
    """``n`` unique random points over ``shape``, canonical order."""
    rng = np.random.default_rng(seed)
    total = int(np.prod(shape))
    addr = np.sort(rng.choice(total, size=n, replace=False)).astype(np.uint64)
    coords = np.stack(np.unravel_index(addr, shape), axis=1).astype(np.uint64)
    return SparseTensor(shape, coords, rng.standard_normal(n))


def canonical_convert(enc, fmt):
    """The registry-free reference: payload → canonical run → payload."""
    fmt = resolve_format(fmt)
    addresses, order = enc.fmt.extract_addresses(
        enc.payload, enc.meta, enc.shape
    )
    canon = CanonicalCoords.from_addresses(
        addresses, enc.shape, is_sorted=True
    )
    values = enc.values if order is None else enc.values[order]
    return fmt.encode_canonical(canon, values)


def assert_encoded_identical(got, want):
    """Payload buffers, dtypes, meta, and value alignment all match."""
    assert got.fmt.name == want.fmt.name
    assert got.nnz == want.nnz
    assert set(got.payload) == set(want.payload)
    for key in want.payload:
        g, w = np.asarray(got.payload[key]), np.asarray(want.payload[key])
        assert g.dtype == w.dtype, f"{key}: {g.dtype} != {w.dtype}"
        assert g.shape == w.shape, f"{key}: {g.shape} != {w.shape}"
        assert np.array_equal(g, w), f"buffer {key} differs"
    assert json.dumps(got.meta, sort_keys=True, default=str) == json.dumps(
        want.meta, sort_keys=True, default=str
    )
    assert np.array_equal(got.values, want.values)


class TestMigrationDifferential:
    """Kernels vs canonical, byte for byte; stores bit-identical."""

    @pytest.mark.parametrize("pair", HOT_PAIRS, ids=lambda p: f"{p[0]}->{p[1]}")
    @pytest.mark.parametrize("shape", [SHAPE_2D, SHAPE_3D], ids=["2d", "3d"])
    def test_kernel_matches_canonical(self, pair, shape):
        src_name, dst_name = pair
        tensor = make_tensor(shape, 2500)
        enc = get_format(src_name).encode(tensor)
        want = canonical_convert(enc, dst_name)
        got = direct_convert(enc, dst_name)
        assert got is not None, f"kernel {pair} refused an eligible payload"
        assert_encoded_identical(got, want)
        # The public entry point must take the same path.
        assert_encoded_identical(enc.convert(dst_name), want)

    @pytest.mark.parametrize("pair", HOT_PAIRS, ids=lambda p: f"{p[0]}->{p[1]}")
    def test_kernel_small_and_single_point(self, pair):
        src_name, dst_name = pair
        for n in (1, 17):
            enc = get_format(src_name).encode(make_tensor(SHAPE_3D, n, seed=n))
            want = canonical_convert(enc, dst_name)
            got = direct_convert(enc, dst_name)
            assert got is not None
            assert_encoded_identical(got, want)

    def test_unregistered_pair_falls_back_correctly(self):
        assert get_kernel("GCSR++", "CSF") is None
        tensor = make_tensor(SHAPE_3D, 1200)
        enc = get_format("GCSR++").encode(tensor)
        assert direct_convert(enc, "CSF") is None
        out = enc.convert("CSF").decode()
        assert np.array_equal(out.coords, tensor.coords)
        assert np.array_equal(out.values, tensor.values)

    def test_csf_non_identity_perm_falls_back(self):
        # Descending extents → CSF sorts dimensions into a non-identity
        # permutation; the CSF kernels must refuse and the canonical
        # fallback must still convert correctly.
        shape = (96, 64, 48)
        tensor = make_tensor(shape, 1000)
        enc = get_format("CSF").encode(tensor)
        assert list(enc.meta["dim_perm"]) != sorted(enc.meta["dim_perm"]) or (
            direct_convert(enc, "LINEAR") is not None
        )
        out = enc.convert("LINEAR").decode()
        assert np.array_equal(out.coords, tensor.coords)
        assert np.array_equal(out.values, tensor.values)

    def test_empty_payload_falls_back_to_exact_empty(self):
        empty = SparseTensor.empty(SHAPE_3D)
        for src_name, dst_name in HOT_PAIRS:
            enc = get_format(src_name).encode(empty)
            want = canonical_convert(enc, dst_name)
            assert_encoded_identical(enc.convert(dst_name), want)

    @pytest.mark.parametrize("codec", ["raw", "cascade"])
    @pytest.mark.parametrize("planner", [True, False], ids=["plan", "noplan"])
    def test_store_migration_reads_bit_identical(
        self, tmp_path, codec, planner
    ):
        tensor = make_tensor(SHAPE_3D, 3000)
        opts = StoreOptions(codec=codec, planner=planner)
        store = FragmentStore(tmp_path, SHAPE_3D, "COO-SORTED", options=opts)
        half = tensor.nnz // 2
        store.write(tensor.coords[:half], tensor.values[:half])
        store.write(tensor.coords[half:], tensor.values[half:])

        box = Box((8, 8, 8), (40, 48, 72))
        before_pts = store.read_points(tensor.coords)
        before_box = store.read_box(box)

        for target in ("LINEAR", "GCSR++", "GCSC++", "CSF", "COO-SORTED"):
            migrated = store.migrate_all(target)
            assert migrated, f"nothing migrated to {target}"
            assert all(f.format_name == target for f in store.fragments)
            after_pts = store.read_points(tensor.coords)
            assert after_pts.found.all()
            assert np.array_equal(before_pts.values, after_pts.values)
            after_box = store.read_box(box)
            assert np.array_equal(before_box.coords, after_box.coords)
            assert np.array_equal(before_box.values, after_box.values)

        # The final state survives a reopen under the same options.
        reopened = FragmentStore(
            tmp_path, SHAPE_3D, "COO-SORTED", options=opts
        )
        again = reopened.read_points(tensor.coords)
        assert again.found.all()
        assert np.array_equal(before_pts.values, again.values)

    def test_migration_preserves_newest_wins(self, tmp_path):
        """Overlapping fragments keep their overwrite order through
        migration — the replacement fragment stays in its slot."""
        shape = (32, 32)
        store = FragmentStore(tmp_path, shape, "COO-SORTED")
        coords = np.array([[1, 1], [2, 2], [3, 3]], dtype=np.uint64)
        store.write(coords, np.array([10.0, 20.0, 30.0]))
        store.write(coords[:2], np.array([11.0, 22.0]))  # overwrites
        before = store.read_points(coords)
        assert np.array_equal(before.values, [11.0, 22.0, 30.0])
        store.migrate_fragment(0, "GCSR++")  # migrate the *older* fragment
        after = store.read_points(coords)
        assert np.array_equal(after.values, [11.0, 22.0, 30.0])
        reopened = FragmentStore(tmp_path, shape, "COO-SORTED")
        assert np.array_equal(
            reopened.read_points(coords).values, [11.0, 22.0, 30.0]
        )

    def test_migrate_noop_when_already_target(self, tmp_path):
        tensor = make_tensor(SHAPE_2D, 500)
        store = FragmentStore(tmp_path, SHAPE_2D, "LINEAR")
        store.write_tensor(tensor)
        frag_before = store.fragments[0]
        assert store.migrate_fragment(0, "LINEAR") is None
        assert store.fragments[0] is frag_before

    def test_sharded_store_migration(self, tmp_path):
        tensor = make_tensor(SHAPE_3D, 2400, seed=11)
        store = ShardedStore(tmp_path, SHAPE_3D, "COO-SORTED", n_shards=4)
        store.write(tensor.coords, tensor.values)
        before = store.read_points(tensor.coords)
        assert before.found.all()
        infos = store.migrate_all("GCSR++")
        assert infos and all(f.format_name == "GCSR++" for f in infos)
        after = store.read_points(tensor.coords)
        assert np.array_equal(before.values, after.values)
        reopened = ShardedStore(
            tmp_path, SHAPE_3D, "COO-SORTED", n_shards=4
        )
        again = reopened.read_points(tensor.coords)
        assert again.found.all()
        assert np.array_equal(before.values, again.values)
        assert all(
            f.format_name == "GCSR++" for f in reopened.fragments
        )

    def test_snapshot_pinned_generation_survives_migration(self, tmp_path):
        tensor = make_tensor(SHAPE_2D, 800)
        store = FragmentStore(
            tmp_path, SHAPE_2D, "COO-SORTED",
            options=StoreOptions(retain_generations=2),
        )
        store.write_tensor(tensor)
        snap = store.snapshot()
        store.migrate_fragment(0, "LINEAR")
        out = snap.read_points(tensor.coords)
        assert out.found.all()
        assert np.array_equal(out.values, tensor.values)


class TestConvertStoreWalTail:
    """Satellite: ``convert_store`` must not drop an unpacked WAL tail."""

    def test_pending_tail_reaches_destination(self, tmp_path):
        shape = (64, 64)
        store = FragmentStore(
            tmp_path / "src", shape, "LINEAR",
            options=StoreOptions(wal_segment_bytes=1 << 20),
        )
        base = make_tensor(shape, 400, seed=1)
        store.write_tensor(base)
        tail_coords = np.array([[60, 60], [61, 61], [62, 62]], dtype=np.uint64)
        tail_values = np.array([7.0, 8.0, 9.0])
        store.append(tail_coords, tail_values)
        assert store._wal_tail() is not None and store._wal_tail().n == 3

        dest = convert_store(store, tmp_path / "dst", "GCSR++")
        out = dest.read_points(tail_coords)
        assert out.found.all(), "WAL-tail points missing from conversion"
        assert np.array_equal(out.values, tail_values)
        src_all = store.read_box(Box((0, 0), shape))
        dst_all = dest.read_box(Box((0, 0), shape))
        assert np.array_equal(src_all.coords, dst_all.coords)
        assert np.array_equal(src_all.values, dst_all.values)
        # Source untouched: tail still pending there.
        assert store._wal_tail() is not None and store._wal_tail().n == 3

    def test_tail_overwrite_priority_preserved(self, tmp_path):
        shape = (16, 16)
        store = FragmentStore(tmp_path / "src", shape, "COO-SORTED")
        coords = np.array([[2, 2], [3, 3]], dtype=np.uint64)
        store.write(coords, np.array([1.0, 2.0]))
        store.append(coords[:1], np.array([99.0]))  # tail overwrites (2,2)
        dest = convert_store(store, tmp_path / "dst", "LINEAR")
        out = dest.read_points(coords)
        assert np.array_equal(out.values, [99.0, 2.0])


class TestWorkloadLedger:
    def test_record_and_roundtrip(self, tmp_path):
        ledger = WorkloadLedger()
        ledger.record_point_read("a.bin", queried=10, matched=4)
        ledger.record_box_read("a.bin", matched=25)
        ledger.record_load("a.bin", 0.25)
        ledger.record_write("b.bin")
        assert ledger.dirty
        path = tmp_path / "workload.json"
        ledger.save(path)
        assert not ledger.dirty
        loaded = WorkloadLedger.load(path)
        a = loaded.get("a.bin")
        assert a.point_reads == 1 and a.box_reads == 1
        assert a.points_queried == 10 and a.points_matched == 4
        assert a.selectivity == pytest.approx(0.4)
        assert a.reads == 2
        assert a.load_seconds == pytest.approx(0.25)
        assert loaded.get("b.bin").writes == 1

    def test_damaged_file_loads_empty(self, tmp_path):
        path = tmp_path / "workload.json"
        path.write_text("{ not json")
        assert len(WorkloadLedger.load(path)) == 0
        assert len(WorkloadLedger.load(tmp_path / "absent.json")) == 0

    def test_merge_into_and_carry_over(self):
        ledger = WorkloadLedger()
        ledger.record_point_read("a.bin", queried=5, matched=5)
        ledger.record_point_read("b.bin", queried=3, matched=1)
        ledger.merge_into(["a.bin", "b.bin"], "merged.bin")
        m = ledger.get("merged.bin")
        assert m.point_reads == 2 and m.points_queried == 8
        assert ledger.get("a.bin") is None
        ledger.carry_over("merged.bin", "migrated.bin")
        mig = ledger.get("migrated.bin")
        assert mig.point_reads == 2 and mig.writes == 1
        assert ledger.get("merged.bin") is None

    def test_store_persists_ledger_at_durable_points(self, tmp_path):
        tensor = make_tensor(SHAPE_2D, 600)
        store = FragmentStore(tmp_path, SHAPE_2D, "COO-SORTED")
        store.write_tensor(tensor)
        store.read_points(tensor.coords[:50])
        store.close()
        path = tmp_path / WORKLOAD_LEDGER_NAME
        assert path.exists()
        doc = json.loads(path.read_text())
        (name, entry), = doc["fragments"].items()
        assert entry["point_reads"] == 1
        assert entry["points_queried"] == 50
        # Reopen resumes the same history.
        reopened = FragmentStore(tmp_path, SHAPE_2D, "COO-SORTED")
        assert reopened.workload_ledger.get(name).point_reads == 1

    def test_migration_carries_history_to_replacement(self, tmp_path):
        tensor = make_tensor(SHAPE_2D, 600)
        store = FragmentStore(tmp_path, SHAPE_2D, "COO-SORTED")
        store.write_tensor(tensor)
        for _ in range(3):
            store.read_points(tensor.coords[:20])
        old_name = store.fragments[0].path.name
        info = store.migrate_fragment(0, "LINEAR")
        assert info.path.name != old_name
        carried = store.workload_ledger.get(info.path.name)
        assert carried.point_reads == 3
        assert store.workload_ledger.get(old_name) is None


class TestMigrationPolicy:
    def _recommendation(self, tensor, workload):
        from repro.patterns.stats import characterize
        from repro.storage.migrate import score_fragment

        return score_fragment(characterize(tensor), workload)

    def test_validation(self):
        with pytest.raises(ValueError):
            MigrationPolicy(min_reads=-1)
        with pytest.raises(ValueError):
            MigrationPolicy(hysteresis=1.0)
        with pytest.raises(ValueError):
            MigrationPolicy(max_fragment_nnz=-5)

    def test_cold_fragment_keeps_format(self):
        from repro.storage.migrate import decide

        rec = self._recommendation(make_tensor(SHAPE_3D, 500), BALANCED)
        d = decide(0, "LINEAR", rec, FragmentWorkload(),
                   MigrationPolicy(min_reads=4))
        assert not d.migrate and "cold" in d.reason

    def test_hysteresis_blocks_marginal_wins(self):
        from repro.storage.migrate import decide

        rec = self._recommendation(make_tensor(SHAPE_3D, 500), BALANCED)
        stats = FragmentWorkload(point_reads=10, points_queried=100,
                                 points_matched=100)
        worst = rec.ranked[-1]
        assert worst.combined > rec.ranked[0].combined
        second_best = worst.format_name
        eager = decide(0, second_best, rec, stats,
                       MigrationPolicy(min_reads=1, hysteresis=0.0,
                                       direct_only=False))
        blocked = decide(0, second_best, rec, stats,
                         MigrationPolicy(min_reads=1, hysteresis=0.99,
                                         direct_only=False))
        assert eager.migrate
        assert not blocked.migrate and "hysteresis" in blocked.reason

    def test_direct_only_restricts_targets(self):
        from repro.storage.migrate import decide

        rec = self._recommendation(make_tensor(SHAPE_3D, 500), BALANCED)
        stats = FragmentWorkload(point_reads=10)
        d = decide(0, "GCSR++", rec, stats,
                   MigrationPolicy(min_reads=1, hysteresis=0.0,
                                   direct_only=True))
        if d.migrate:
            assert get_kernel("GCSR++", d.target_format) is not None

    def test_max_fragment_nnz_gate(self, tmp_path):
        tensor = make_tensor(SHAPE_2D, 600)
        store = AdaptiveStore(
            tmp_path, SHAPE_2D,
            policy=MigrationPolicy(min_reads=1, max_fragment_nnz=10),
        )
        store.write_tensor(tensor)
        store.read_points(tensor.coords[:10])
        (d,) = store.plan_migrations()
        assert not d.migrate and "max_fragment_nnz" in d.reason


class TestAdaptiveMigration:
    def _shifted_store(self, directory, migrate="off"):
        """ARCHIVAL picks LINEAR at write time; heavy selective point
        reads shift the observed workload until GCSR++ wins."""
        tensor = make_tensor((64, 64, 64), 3000, seed=3)
        store = AdaptiveStore(
            directory, tensor.shape,
            workload=ARCHIVAL,
            policy=MigrationPolicy(min_reads=2, hysteresis=0.0),
            options=StoreOptions(migrate=migrate),
        )
        half = tensor.nnz // 2
        store.write(tensor.coords[:half], tensor.values[:half])
        store.write(tensor.coords[half:], tensor.values[half:])
        assert store.format_histogram() == {"LINEAR": 2}
        rng = np.random.default_rng(5)
        for _ in range(8):
            idx = rng.choice(tensor.nnz, size=50, replace=False)
            store.read_points(tensor.coords[idx])
        return store, tensor

    def test_explicit_sweep_migrates_after_shift(self, tmp_path):
        store, tensor = self._shifted_store(tmp_path)
        before = store.read_points(tensor.coords)
        decisions = store.migrate_fragments()
        assert any(d.migrate for d in decisions)
        assert store.format_histogram() == {"GCSR++": 2}
        after = store.read_points(tensor.coords)
        assert after.found.all()
        assert np.array_equal(before.values, after.values)
        # Converged: a second sweep plans nothing.
        assert not any(d.migrate for d in store.plan_migrations())

    def test_compact_policy_triggers_sweep(self, tmp_path):
        store, tensor = self._shifted_store(tmp_path, migrate="compact")
        before = store.read_points(tensor.coords)
        store.compact()
        assert store.format_histogram() == {"GCSR++": 1}
        after = store.read_points(tensor.coords)
        assert after.found.all()
        assert np.array_equal(before.values, after.values)

    def test_off_policy_never_migrates(self, tmp_path):
        store, tensor = self._shifted_store(tmp_path, migrate="off")
        store.compact()
        assert set(store.format_histogram()) == {"LINEAR"}

    def test_auto_policy_sweeps_after_reads(self, tmp_path):
        from repro.storage.adaptive import AUTO_MIGRATE_READ_INTERVAL

        store, tensor = self._shifted_store(tmp_path, migrate="auto")
        for _ in range(AUTO_MIGRATE_READ_INTERVAL):
            store.read_points(tensor.coords[:5])
        assert store.format_histogram() == {"GCSR++": 2}

    def test_options_validation(self):
        with pytest.raises(ValueError):
            StoreOptions(migrate="sometimes")

    def test_format_histogram_counts_live_manifest(self, tmp_path):
        tensor = make_tensor(SHAPE_2D, 600)
        store = AdaptiveStore(
            tmp_path, SHAPE_2D,
            options=StoreOptions(retain_generations=2),
        )
        half = tensor.nnz // 2
        store.write(tensor.coords[:half], tensor.values[:half])
        store.write(tensor.coords[half:], tensor.values[half:])
        assert sum(store.format_histogram().values()) == 2
        store.compact()
        live = store.format_histogram()
        assert sum(live.values()) == 1, (
            "histogram must reflect the live manifest, not the decision log"
        )
        both = store.format_histogram(include_retired=True)
        assert sum(both.values()) == 3  # 1 live + 2 retained
        # Survives a reopen (the in-session choices log does not).
        reopened = AdaptiveStore(
            tmp_path, SHAPE_2D,
            options=StoreOptions(retain_generations=2),
        )
        assert reopened.format_histogram() == live
