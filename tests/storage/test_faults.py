"""Semantics of the deterministic fault-injection harness itself."""

import errno
from pathlib import Path

import pytest

from repro.storage import durability
from repro.storage.durability import read_bytes, write_bytes_atomic
from repro.testing.faults import (
    OPS,
    FaultEvent,
    FaultPlan,
    FaultRule,
    OpRecorder,
    SeededFaults,
    inject,
    plan_for_crash_point,
)


class TestFaultRule:
    def test_matches_op_and_name_pattern(self, tmp_path):
        rule = FaultRule(op="read", pattern="frag-*.bin")
        assert rule.matches("read", tmp_path / "frag-000000.bin")
        assert not rule.matches("write", tmp_path / "frag-000000.bin")
        assert not rule.matches("read", tmp_path / "manifest.json")

    def test_wildcard_op(self, tmp_path):
        rule = FaultRule(op="*", pattern="*")
        for op in OPS:
            assert rule.matches(op, tmp_path / "anything")

    def test_after_skips_then_times_bounds(self):
        rule = FaultRule(after=2, times=2)
        fired = [rule.should_fire() for _ in range(6)]
        assert fired == [False, False, True, True, False, False]

    def test_times_none_fires_forever(self):
        rule = FaultRule(times=None)
        assert all(rule.should_fire() for _ in range(10))

    def test_custom_errno(self, tmp_path):
        rule = FaultRule(errno_code=errno.ENOSPC)
        err = rule.make_error("write", tmp_path / "f")
        assert err.errno == errno.ENOSPC


class TestFaultPlan:
    def test_fails_matching_op(self, tmp_path):
        plan = FaultPlan([FaultRule(op="read", pattern="x.bin")])
        target = tmp_path / "x.bin"
        target.write_bytes(b"data")
        with inject(plan):
            with pytest.raises(OSError) as ei:
                read_bytes(target)
        assert ei.value.errno == errno.EIO
        assert [(e.op, e.path.name) for e in plan.fired] == [("read", "x.bin")]

    def test_unmatched_ops_pass_through(self, tmp_path):
        plan = FaultPlan([FaultRule(op="read", pattern="other.bin")])
        target = tmp_path / "x.bin"
        target.write_bytes(b"data")
        with inject(plan):
            assert read_bytes(target) == b"data"
        assert not plan.fired

    def test_torn_rule_does_not_fire_as_plain_write_fault(self, tmp_path):
        # A torn rule must tear (persist a prefix), not fail the op before
        # any bytes hit the disk — and must fire exactly once per write.
        plan = FaultPlan(
            [FaultRule(op="write", pattern="f.bin.tmp", torn_bytes=3)]
        )
        with inject(plan), pytest.raises(OSError):
            write_bytes_atomic(tmp_path / "f.bin", b"abcdef")
        assert len(plan.fired) == 1
        assert plan.fired[0].torn_at == 3
        assert (tmp_path / "f.bin.tmp").read_bytes() == b"abc"

    def test_torn_bytes_clamped_to_blob(self, tmp_path):
        plan = FaultPlan(
            [FaultRule(op="write", pattern="f.bin.tmp", torn_bytes=10_000)]
        )
        with inject(plan), pytest.raises(OSError):
            write_bytes_atomic(tmp_path / "f.bin", b"abc")
        assert plan.fired[0].torn_at == 3

    def test_second_write_succeeds_after_single_shot_rule(self, tmp_path):
        plan = FaultPlan([FaultRule(op="write", pattern="f.bin.tmp")])
        with inject(plan):
            with pytest.raises(OSError):
                write_bytes_atomic(tmp_path / "f.bin", b"first")
            write_bytes_atomic(tmp_path / "f.bin", b"second")
        assert (tmp_path / "f.bin").read_bytes() == b"second"


class TestPlanForCrashPoint:
    def test_targets_nth_occurrence(self, tmp_path):
        target = tmp_path / "f.bin"
        recorder = OpRecorder()
        with inject(recorder):
            for i in range(3):
                write_bytes_atomic(target, b"v%d" % i)
        # Kill the second rename of f.bin (event index 3: w,r,w,r,w,r).
        plan = plan_for_crash_point(recorder.events, 3)
        with inject(plan):
            write_bytes_atomic(target, b"a")  # first rename passes
            with pytest.raises(OSError):
                write_bytes_atomic(target, b"b")  # second rename killed
            write_bytes_atomic(target, b"c")  # rule exhausted
        assert target.read_bytes() == b"c"

    def test_torn_bytes_only_applies_to_writes(self, tmp_path):
        events = [
            FaultEvent("write", Path("f.bin.tmp")),
            FaultEvent("rename", Path("f.bin")),
        ]
        torn_plan = plan_for_crash_point(events, 0, torn_bytes=5)
        assert torn_plan.rules[0].torn_bytes == 5
        rename_plan = plan_for_crash_point(events, 1, torn_bytes=5)
        assert rename_plan.rules[0].torn_bytes is None


class TestSeededFaults:
    def test_deterministic_per_seed(self, tmp_path):
        target = tmp_path / "f.bin"
        target.write_bytes(b"data")

        def outcomes(seed):
            faults = SeededFaults(seed, p=0.5, ops=("read",))
            results = []
            with inject(faults):
                for _ in range(20):
                    try:
                        read_bytes(target)
                        results.append(True)
                    except OSError:
                        results.append(False)
            return results

        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)  # different seed, different chaos
        assert not all(outcomes(7))  # p=0.5 over 20 ops does fail sometimes

    def test_p_bounds_validated(self):
        with pytest.raises(ValueError):
            SeededFaults(1, p=1.5)

    def test_op_filter(self, tmp_path):
        faults = SeededFaults(1, p=1.0, ops=("rename",))
        with inject(faults), pytest.raises(OSError):
            write_bytes_atomic(tmp_path / "f.bin", b"x")
        assert [e.op for e in faults.fired] == ["rename"]


class TestInjectContextManager:
    def test_restores_previous_hook(self):
        outer = OpRecorder()
        inner = OpRecorder()
        old = durability.set_fault_hook(outer)
        try:
            assert durability.get_fault_hook() is outer
            with inject(inner):
                assert durability.get_fault_hook() is inner
            assert durability.get_fault_hook() is outer
        finally:
            durability.set_fault_hook(old)

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with inject(OpRecorder()):
                raise RuntimeError("boom")
        assert durability.get_fault_hook() is None
