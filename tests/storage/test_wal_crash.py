"""Crash-consistency for the WAL ingest path: kill every durable op.

Mirrors ``test_crash_consistency.py`` for the append pipeline.  A
deterministic workload — open, three durable appends, ``pack_wal``, one
more append — runs once under :class:`~repro.testing.faults.OpRecorder`
to enumerate every durability-layer op, then once per op (plus torn-write
variants) with a plan that kills exactly that op.  Invariants, per
docs/WAL_SNAPSHOTS.md:

* reopening always succeeds and yields a *consistent prefix* of the
  appends — each append is atomic (all 10 points or none) and a later
  append is never visible without every earlier one;
* the merged read view never contains duplicate coordinates, even when a
  crash between the pack's manifest commit and its segment unlinks leaves
  points both packed and still in the log (over-coverage);
* ``fsck --repair`` then ``fsck`` is clean, and repair never loses a
  committed append.
"""

import warnings

import numpy as np
import pytest

from repro.core.boundary import Box
from repro.storage import FragmentStore, StoreOptions, fsck
from repro.testing.faults import (
    FaultPlan,
    FaultRule,
    OpRecorder,
    inject,
    plan_for_crash_point,
)

SHAPE = (32, 32)
N_APPENDS = 3          # durable appends before the pack
N_PARTS = N_APPENDS + 1  # one more append lands after the pack

WAL_OPTS = StoreOptions(wal_segment_bytes=512, wal_fsync=True)


def part(j):
    """Append ``j``'s payload: 10 points on row ``j``, disjoint per append."""
    coords = np.column_stack(
        [np.full(10, j, dtype=np.uint64), np.arange(10, dtype=np.uint64)]
    )
    values = float(j * 100) + np.arange(10, dtype=float)
    return coords, values


def run_workload(directory):
    """Open, append three parts durably, pack, append one more."""
    store = FragmentStore(directory, SHAPE, "LINEAR", options=WAL_OPTS)
    for j in range(N_APPENDS):
        store.append(*part(j))
    store.pack_wal()
    store.append(*part(N_APPENDS))


def reopen(directory):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        return FragmentStore(directory, SHAPE, "LINEAR", options=WAL_OPTS)


def record_injection_points(tmp_path):
    recorder = OpRecorder()
    with inject(recorder):
        run_workload(tmp_path / "record")
    return recorder.events


def assert_consistent_prefix(store):
    """Appends are atomic and visible as a prefix; no duplicate coords."""
    present = []
    for j in range(N_PARTS):
        coords, values = part(j)
        out = store.read_points(coords)
        if out.found.all():
            assert np.allclose(out.values, values)
            present.append(True)
        else:
            assert not out.found.any(), f"append {j} is half-visible"
            present.append(False)
    k = sum(present)
    assert present == [True] * k + [False] * (N_PARTS - k), (
        f"visible appends {present} are not a prefix"
    )
    box = store.read_box(Box((0, 0), SHAPE))
    lin = box.coords[:, 0] * SHAPE[1] + box.coords[:, 1]
    assert np.unique(lin).size == lin.size, "duplicate coords in read view"
    assert int((box.coords[:, 0] < N_PARTS).sum()) == 10 * k
    return k


def crash_and_recover(tmp_path, events, index, torn_bytes=None):
    directory = tmp_path / f"crash-{index}-{torn_bytes}"
    plan = plan_for_crash_point(events, index, torn_bytes=torn_bytes)
    with inject(plan), pytest.raises(OSError):
        run_workload(directory)
    assert plan.fired, "the planned fault never triggered"

    # First reopen replays the log, truncating/quarantining damage.
    k = assert_consistent_prefix(reopen(directory))

    report = fsck(directory, repair=True)
    assert fsck(directory).clean, f"fsck not clean after repair: {report}"
    assert assert_consistent_prefix(reopen(directory)) == k
    return k


class TestInjectionPointEnumeration:
    def test_recorded_ops_cover_the_wal_lifecycle(self, tmp_path):
        events = record_injection_points(tmp_path)
        ops = [e.op for e in events]
        names = [e.path.name for e in events]
        # Durable appends fsync; the pack seals (rename), commits a
        # fragment + manifest, and retires segments (unlink).
        assert "fsync" in ops
        assert "unlink" in ops
        assert any(n.startswith("seg-") for n in names)
        assert any(n.startswith("frag-") for n in names)
        assert "manifest.json" in names

    def test_acknowledged_appends_are_fsynced(self, tmp_path):
        events = record_injection_points(tmp_path)
        record_writes = [
            i for i, e in enumerate(events)
            if e.op == "write" and e.path.name.endswith(".open")
        ]
        for i in record_writes:
            following = [e.op for e in events[i + 1:i + 2]]
            assert following == ["fsync"], (
                f"WAL write at op {i} not followed by fsync"
            )


class TestCrashAtEveryPoint:
    def test_every_injection_point_recovers(self, tmp_path):
        events = record_injection_points(tmp_path)
        prefix_sizes = []
        for index in range(len(events)):
            prefix_sizes.append(crash_and_recover(tmp_path, events, index))
        # Coverage sanity: the earliest crash commits nothing; a crash
        # after the pack's commit (or during the final append) keeps all
        # three packed appends.
        assert prefix_sizes[0] == 0
        assert max(prefix_sizes) >= N_APPENDS

    def test_torn_wal_writes_at_byte_offsets(self, tmp_path):
        events = record_injection_points(tmp_path)
        wal_writes = [
            i for i, e in enumerate(events)
            if e.op == "write" and e.path.name.startswith("seg-")
        ]
        assert wal_writes
        for index in wal_writes:
            for torn in (0, 1, 37):
                crash_and_recover(tmp_path, events, index,
                                  torn_bytes=torn)

    def test_crash_then_continue_appending(self, tmp_path):
        """Recovery is not read-only: appends and packs keep working."""
        events = record_injection_points(tmp_path)
        directory = tmp_path / "resume"
        plan = plan_for_crash_point(events, len(events) - 1)
        with inject(plan), pytest.raises(OSError):
            run_workload(directory)
        store = reopen(directory)
        k = assert_consistent_prefix(store)
        extra = np.column_stack(
            [np.full(5, 31, dtype=np.uint64),
             np.arange(5, dtype=np.uint64)]
        )
        store.append(extra, np.ones(5))
        store.pack_wal()
        assert store.wal_stats()["points"] == 0
        recovered = reopen(directory)
        assert recovered.read_points(extra).found.all()
        assert assert_consistent_prefix(recovered) >= k


class TestTargetedWindows:
    def test_pack_crash_never_loses_acknowledged_appends(self, tmp_path):
        """Killing the pack's fragment commit keeps every acked append."""
        directory = tmp_path / "ds"
        store = FragmentStore(directory, SHAPE, "LINEAR", options=WAL_OPTS)
        for j in range(N_APPENDS):
            store.append(*part(j))
        plan = FaultPlan([FaultRule(op="write", pattern="frag-*", times=1)])
        with inject(plan), pytest.raises(OSError):
            store.pack_wal()
        assert plan.fired

        recovered = reopen(directory)
        assert assert_consistent_prefix(recovered) == N_APPENDS
        assert recovered.wal_stats()["points"] == 10 * N_APPENDS

    def test_pack_crash_between_commit_and_retire(self, tmp_path):
        """Over-coverage window: fragment committed, segments not yet
        unlinked.  Reads stay duplicate-free and the next pack retires."""
        directory = tmp_path / "ds"
        store = FragmentStore(directory, SHAPE, "LINEAR", options=WAL_OPTS)
        for j in range(N_APPENDS):
            store.append(*part(j))
        plan = FaultPlan([FaultRule(op="unlink", pattern="seg-*", times=1)])
        with inject(plan), pytest.raises(OSError):
            store.pack_wal()
        assert plan.fired

        recovered = reopen(directory)
        assert len(recovered.fragments) == 1       # the pack committed
        assert recovered.wal_stats()["points"] > 0  # over-coverage
        assert assert_consistent_prefix(recovered) == N_APPENDS
        recovered.pack_wal()
        assert recovered.wal_stats()["points"] == 0
        assert assert_consistent_prefix(recovered) == N_APPENDS

    def test_gc_crash_between_commit_and_delete(self, tmp_path):
        """GC is manifest-then-delete: a failed unlink leaves only a
        stray file for fsck to account for, never a manifest entry
        pointing at a deleted file — and the GC itself still succeeds."""
        directory = tmp_path / "ds"
        store = FragmentStore(
            directory, SHAPE, "LINEAR",
            options=StoreOptions(retain_generations=2),
        )
        store.write(*part(0))
        store.write(*part(1))
        store.compact()
        plan = FaultPlan([FaultRule(op="unlink", pattern="frag-*", times=1)])
        with inject(plan):
            deleted = store.gc(keep_generations=0)
        assert plan.fired
        # The trimmed manifest committed before any unlink; the fragment
        # whose unlink was killed survives on disk as an unreferenced
        # stray rather than as a dangling manifest entry.
        assert deleted == 2
        strays = [
            p for p in directory.glob("frag-*.bin")
            if p.name not in {f.path.name for f in store.fragments}
        ]
        assert len(strays) == 1

        recovered = reopen(directory)
        for j in range(2):
            coords, values = part(j)
            out = recovered.read_points(coords)
            assert out.found.all()
            assert np.allclose(out.values, values)
        report = fsck(directory, repair=True)
        assert report.repaired or report.clean
        assert fsck(directory).clean
