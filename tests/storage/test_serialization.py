"""Unit tests for the fragment binary codec, including fault injection."""

import numpy as np
import pytest

from repro.core.errors import FragmentError
from repro.storage import pack_fragment, unpack_fragment, unpack_header, verify_crc


def sample_blob(**overrides):
    kwargs = dict(
        format_name="LINEAR",
        shape=(8, 8),
        nnz=3,
        meta={"note": "test"},
        buffers={"addresses": np.array([1, 9, 17], dtype=np.uint64)},
        values=np.array([0.5, -1.0, 2.0]),
        bbox_origin=(0, 1),
        bbox_size=(3, 2),
    )
    kwargs.update(overrides)
    return pack_fragment(**kwargs)


class TestRoundTrip:
    def test_basic(self):
        blob = sample_blob()
        payload = unpack_fragment(blob)
        assert payload.format_name == "LINEAR"
        assert payload.shape == (8, 8)
        assert payload.nnz == 3
        assert payload.meta == {"note": "test"}
        assert payload.buffers["addresses"].tolist() == [1, 9, 17]
        assert payload.values.tolist() == [0.5, -1.0, 2.0]
        assert payload.bbox_origin == (0, 1)
        assert payload.bbox_size == (3, 2)

    def test_2d_buffer(self):
        coords = np.arange(12, dtype=np.uint64).reshape(4, 3)
        blob = sample_blob(buffers={"coords": coords}, nnz=4,
                           values=np.zeros(4))
        payload = unpack_fragment(blob)
        assert np.array_equal(payload.buffers["coords"], coords)

    def test_multiple_buffers_preserve_order_and_content(self):
        bufs = {
            "a": np.array([1], dtype=np.uint64),
            "b": np.array([2, 3], dtype=np.uint32),
            "c": np.array([[4, 5]], dtype=np.uint8),
        }
        payload = unpack_fragment(sample_blob(buffers=bufs))
        assert list(payload.buffers) == ["a", "b", "c"]
        assert payload.buffers["b"].dtype == np.uint32
        assert payload.buffers["c"].dtype == np.uint8

    def test_empty_buffers_and_values(self):
        blob = sample_blob(
            buffers={"addresses": np.empty(0, dtype=np.uint64)},
            values=np.empty(0),
            nnz=0,
        )
        payload = unpack_fragment(blob)
        assert payload.buffers["addresses"].shape == (0,)
        assert payload.values.shape == (0,)

    def test_extra_annotations(self):
        blob = sample_blob(extra={"relative": True, "block": [1, 2]})
        payload = unpack_fragment(blob)
        assert payload.extra == {"relative": True, "block": [1, 2]}

    def test_header_only(self):
        header, offset = unpack_header(sample_blob())
        assert header["format"] == "LINEAR"
        assert header["nnz"] == 3
        assert offset % 8 == 0


class TestFaultInjection:
    def test_bit_flip_detected(self):
        blob = bytearray(sample_blob())
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(FragmentError, match="checksum"):
            unpack_fragment(bytes(blob))

    def test_truncation_detected(self):
        blob = sample_blob()
        with pytest.raises(FragmentError):
            unpack_fragment(blob[: len(blob) // 2])

    def test_bad_magic(self):
        blob = b"XXXX" + sample_blob()[4:]
        with pytest.raises(FragmentError, match="magic"):
            unpack_header(blob)

    def test_bad_version(self):
        import struct

        blob = bytearray(sample_blob())
        struct.pack_into("<I", blob, 4, 99)
        with pytest.raises(FragmentError, match="version"):
            unpack_header(bytes(blob))

    def test_tiny_blob(self):
        with pytest.raises(FragmentError):
            verify_crc(b"ab")
        with pytest.raises(FragmentError):
            unpack_header(b"abcdef")

    def test_crc_skip_flag(self):
        # check_crc=False lets a corrupted-but-parseable fragment through;
        # corrupt a *value* byte so the structure still parses.
        blob = bytearray(sample_blob())
        blob[-12] ^= 0x01  # inside the value buffer, before the CRC
        with pytest.raises(FragmentError):
            unpack_fragment(bytes(blob))
        payload = unpack_fragment(bytes(blob), check_crc=False)
        assert payload.format_name == "LINEAR"

    def test_corrupt_header_json(self):
        blob = bytearray(sample_blob())
        # Smash the first header byte (after magic+8).
        blob[12] = 0x00
        with pytest.raises(FragmentError):
            unpack_header(bytes(blob))


class TestErrorTaxonomy:
    """Corruption raises typed subclasses of FragmentError (satellite of
    the durability PR): ChecksumError for CRC failures, plain
    FragmentError for structural damage — old `except FragmentError`
    handlers keep working."""

    def test_checksum_error_is_fragment_error(self):
        from repro.core.errors import ChecksumError, FragmentError, ReproError

        assert issubclass(ChecksumError, FragmentError)
        assert issubclass(FragmentError, ReproError)
        assert issubclass(FragmentError, IOError)

    def test_payload_bit_flip_raises_checksum_error(self):
        from repro.core.errors import ChecksumError

        blob = bytearray(sample_blob())
        blob[-12] ^= 0x01  # value buffer
        with pytest.raises(ChecksumError, match="checksum mismatch"):
            verify_crc(bytes(blob))
        with pytest.raises(ChecksumError):
            unpack_fragment(bytes(blob))

    def test_header_bit_flip_raises_checksum_error_first(self):
        from repro.core.errors import ChecksumError

        blob = bytearray(sample_blob())
        blob[16] ^= 0xFF  # inside the JSON header
        # With CRC checking on, corruption is caught before parsing.
        with pytest.raises(ChecksumError):
            unpack_fragment(bytes(blob))
        # Without it, the damage surfaces as a structural parse error.
        with pytest.raises(FragmentError):
            unpack_fragment(bytes(blob), check_crc=False)

    def test_truncation_raises_checksum_error(self):
        from repro.core.errors import ChecksumError

        blob = sample_blob()
        with pytest.raises(ChecksumError):
            unpack_fragment(blob[:-1])
        # Truncated below the 4-byte CRC tail.
        with pytest.raises(ChecksumError, match="too small"):
            unpack_fragment(blob[:2])

    def test_truncation_without_crc_check_is_structural(self):
        blob = sample_blob()
        with pytest.raises(FragmentError, match="truncated"):
            unpack_fragment(blob[: len(blob) // 2], check_crc=False)

    def test_tail_corruption_only_detected_by_crc(self):
        # Flip a bit in the stored CRC itself: the body is intact, so only
        # the checksum pass can notice.
        from repro.core.errors import ChecksumError

        blob = bytearray(sample_blob())
        blob[-1] ^= 0x01
        with pytest.raises(ChecksumError):
            unpack_fragment(bytes(blob))
        payload = unpack_fragment(bytes(blob), check_crc=False)
        assert payload.values.tolist() == [0.5, -1.0, 2.0]
