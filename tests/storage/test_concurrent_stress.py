"""Concurrency stress: mixed readers/writers/compaction on one store.

The read pipeline's thread-safety contract (``docs/READ_PATH.md``):

* a read never observes a torn state — every value it returns is the value
  some committed write stored for that coordinate;
* points committed before a read began are always found;
* a compaction never yanks fragment files out from under in-flight reads,
  and the decoded-fragment cache never serves pre-compaction entries;
* the cache byte bound holds at every instant;
* the ``store.cache.*`` observability counters equal the cache's own
  cumulative totals once the dust settles.

Values are a pure function of the coordinate (``value_of``), so any
returned value is checkable without knowing which writes a read raced
with.  The fast variant runs in tier-1; the soak variant is
``@pytest.mark.slow``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import obs
from repro.core import Box
from repro.storage import FragmentStore

SHAPE = (48, 48)
SIDE = SHAPE[1]


def value_of(coords: np.ndarray) -> np.ndarray:
    """Deterministic value per coordinate: linear address + 1."""
    return (coords[:, 0] * SIDE + coords[:, 1]).astype(np.float64) + 1.0


def row_block(row: int, width: int = SIDE) -> np.ndarray:
    cols = np.arange(width, dtype=np.uint64)
    return np.column_stack([np.full(width, row, dtype=np.uint64), cols])


def run_stress(tmp_path, *, n_readers, iterations, cache_bytes, compactions):
    obs.enable()
    obs.reset()
    store = FragmentStore(
        tmp_path / "ds", SHAPE, "LINEAR", cache_bytes=cache_bytes
    )
    base = np.vstack([row_block(r) for r in range(4)])
    store.write(base, value_of(base))

    errors: list[BaseException] = []
    written_rows: set[int] = set(range(4))
    rows_lock = threading.Lock()
    stop = threading.Event()

    def check(condition, message):
        if not condition:
            raise AssertionError(message)

    def reader(seed):
        rng = np.random.default_rng(seed)
        modes = ("none", "thread")
        try:
            for i in range(iterations):
                parallel = modes[i % 2]
                n = int(rng.integers(1, 40))
                queries = np.column_stack([
                    rng.integers(0, SHAPE[0], size=n, dtype=np.uint64),
                    rng.integers(0, SHAPE[1], size=n, dtype=np.uint64),
                ])
                out = store.read_points(queries, parallel=parallel)
                got = out.values
                want = value_of(queries[out.found])
                check(
                    np.array_equal(got, want),
                    f"torn point read: {got} != {want}",
                )
                base_mask = queries[:, 0] < 4
                check(
                    bool(out.found[base_mask].all()),
                    "base fragment point missing from read",
                )
                r0 = int(rng.integers(0, SHAPE[0]))
                box = Box((r0, 0), (min(6, SHAPE[0] - r0), SHAPE[1]))
                tensor = store.read_box(box, parallel=parallel)
                check(
                    np.array_equal(tensor.values, value_of(tensor.coords)),
                    "torn box read",
                )
                coords_list = [tuple(c) for c in tensor.coords.tolist()]
                check(
                    len(coords_list) == len(set(coords_list)),
                    "box read returned duplicate coordinates",
                )
                check(
                    store.cache.current_bytes <= max(cache_bytes, 0)
                    or cache_bytes == 0,
                    "cache byte bound violated",
                )
        except BaseException as exc:  # noqa: BLE001 - collected for main
            errors.append(exc)
        finally:
            stop.set()

    def writer(seed):
        rng = np.random.default_rng(seed)
        try:
            while not stop.is_set():
                row = int(rng.integers(4, SHAPE[0]))
                coords = row_block(row)
                store.write(coords, value_of(coords))
                with rows_lock:
                    written_rows.add(row)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    def compactor():
        try:
            done = 0
            while not stop.is_set() and done < compactions:
                if len(store.fragments) >= 3:
                    store.compact()
                    done += 1
                stop.wait(0.01)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(1000 + i,))
        for i in range(n_readers)
    ]
    threads.append(threading.Thread(target=writer, args=(2000,)))
    threads.append(threading.Thread(target=compactor))
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not any(t.is_alive() for t in threads), "stress thread hung"
    assert not errors, f"invariant violated under concurrency: {errors[:3]}"

    # Post-join: the store holds exactly the written rows, right values.
    with rows_lock:
        rows = sorted(written_rows)
    all_coords = np.vstack([row_block(r) for r in rows])
    out = store.read_points(all_coords, parallel="thread")
    assert out.found.all()
    np.testing.assert_array_equal(out.values, value_of(all_coords))
    full = store.read_box(Box((0, 0), SHAPE))
    assert full.nnz == len(rows) * SIDE

    # Obs counters and the cache's own totals must agree exactly.
    snap = obs.snapshot()
    by_name = {m["name"]: m["value"] for m in snap["counters"]}
    stats = store.cache.stats()
    for kind in ("hits", "misses", "evictions", "invalidations"):
        assert by_name.get(f"store.cache.{kind}", 0) == stats[kind], kind
    assert store.cache.current_bytes <= store.cache.max_bytes
    return store


class TestConcurrentStress:
    def test_mixed_traffic_fast(self, tmp_path):
        run_stress(
            tmp_path, n_readers=3, iterations=30,
            cache_bytes=64 * 1024, compactions=2,
        )

    def test_mixed_traffic_cache_disabled(self, tmp_path):
        store = run_stress(
            tmp_path, n_readers=2, iterations=15,
            cache_bytes=0, compactions=1,
        )
        assert store.cache.stats()["hits"] == 0

    def test_tiny_cache_thrashes_safely(self, tmp_path):
        """A cache too small for the working set evicts but never corrupts."""
        store = run_stress(
            tmp_path, n_readers=2, iterations=15,
            cache_bytes=2048, compactions=1,
        )
        assert store.cache.current_bytes <= 2048

    @pytest.mark.slow
    def test_mixed_traffic_soak(self, tmp_path):
        run_stress(
            tmp_path, n_readers=6, iterations=150,
            cache_bytes=256 * 1024, compactions=8,
        )
