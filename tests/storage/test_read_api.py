"""Unified read-side API: one protocol across encodings and stores,
deprecation shims, and str|SparseFormat constructor arguments."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AdaptiveStore,
    BlockedDataset,
    Box,
    FragmentStore,
    Readable,
    ReadOutcome,
    SparseTensor,
    get_format,
)
from repro.formats import base as formats_base


@pytest.fixture
def tensor(rng) -> SparseTensor:
    coords = np.column_stack([
        rng.integers(0, 32, size=400, dtype=np.uint64) for _ in range(3)
    ])
    return SparseTensor((32, 32, 32), coords, rng.random(400)).deduplicated()


@pytest.fixture
def queries(tensor, rng) -> np.ndarray:
    misses = np.column_stack([
        rng.integers(0, 32, size=50, dtype=np.uint64) for _ in range(3)
    ])
    return np.vstack([tensor.coords[:50], misses])


def _readables(tmp_path, tensor):
    """One instance of every queryable storage object, same content."""
    enc = get_format("LINEAR").encode(tensor)
    store = FragmentStore(tmp_path / "store", tensor.shape, "LINEAR")
    store.write_tensor(tensor)
    ada = AdaptiveStore(tmp_path / "ada", tensor.shape)
    ada.write(tensor.coords, tensor.values)
    blocked = BlockedDataset(tmp_path / "blk", tensor.shape, (8, 8, 8), "LINEAR")
    blocked.write_tensor(tensor)
    return {"encoded": enc, "store": store, "adaptive": ada, "blocked": blocked}


class TestUnifiedProtocol:
    def test_all_implement_readable(self, tmp_path, tensor):
        for name, obj in _readables(tmp_path, tensor).items():
            assert isinstance(obj, Readable), name

    def test_read_points_agrees_everywhere(self, tmp_path, tensor, queries):
        expected = None
        for name, obj in _readables(tmp_path, tensor).items():
            out = obj.read_points(queries)
            assert isinstance(out, ReadOutcome), name
            assert out.found.shape == (queries.shape[0],)
            assert out.values.shape == (int(out.found.sum()),)
            assert out.points_matched == int(out.found.sum())
            assert out.fragments_visited >= 1
            if expected is None:
                expected = out
            else:
                np.testing.assert_array_equal(out.found, expected.found, name)
                np.testing.assert_allclose(out.values, expected.values, err_msg=name)
        assert expected.found[:50].all()
        # The second half of the queries are (mostly) misses; at least the
        # protocol must agree on them, which the loop above asserted.

    def test_read_box_agrees_everywhere(self, tmp_path, tensor):
        box = Box((4, 4, 4), (12, 12, 12))
        expected = tensor.select_box(box).sorted_by_linear()
        for name, obj in _readables(tmp_path, tensor).items():
            got = obj.read_box(box)
            assert isinstance(got, SparseTensor), name
            np.testing.assert_array_equal(got.coords, expected.coords, name)
            np.testing.assert_allclose(got.values, expected.values, err_msg=name)

    def test_blocked_read_box_is_structural_for_huge_boxes(self, tmp_path):
        # A box with ~2^30 cells: cell enumeration would never finish
        # instantly; the structural path scales with stored points.
        shape = (2**15, 2**15)
        ds = BlockedDataset(tmp_path / "big", shape, (1024, 1024), "LINEAR")
        coords = np.array([[5, 5], [20000, 20000]], dtype=np.uint64)
        ds.write(coords, np.array([1.0, 2.0]))
        got = ds.read_box(Box((0, 0), shape))
        np.testing.assert_array_equal(
            got.coords, np.array([[5, 5], [20000, 20000]], dtype=np.uint64)
        )
        np.testing.assert_allclose(got.values, [1.0, 2.0])


class TestDeprecatedRead:
    @pytest.fixture(autouse=True)
    def rearm_warning(self):
        formats_base._DEPRECATION_WARNED.clear()
        yield
        formats_base._DEPRECATION_WARNED.clear()

    def test_warns_exactly_once_and_matches_read_points(self, tensor, queries):
        enc = get_format("COO").encode(tensor)
        with pytest.warns(DeprecationWarning, match="read_points"):
            found, values = enc.read(queries)
        # Second call: the shim stays quiet.
        import warnings as _w

        with _w.catch_warnings():
            _w.simplefilter("error", DeprecationWarning)
            found2, values2 = enc.read(queries)
        out = enc.read_points(queries)
        for f, v in ((found, values), (found2, values2)):
            np.testing.assert_array_equal(f, out.found)
            np.testing.assert_allclose(v, out.values)


class TestFormatArguments:
    def test_stores_accept_format_instances(self, tmp_path, tensor):
        fmt = get_format("CSF")
        store = FragmentStore(tmp_path / "s", tensor.shape, fmt)
        assert store.format_name == "CSF"
        store.write_tensor(tensor)
        assert store.read_points(tensor.coords[:5]).found.all()

        blocked = BlockedDataset(
            tmp_path / "b", tensor.shape, (8, 8, 8), get_format("COO")
        )
        assert blocked.store.format_name == "COO"

        ada = AdaptiveStore(
            tmp_path / "a", tensor.shape,
            candidates=(get_format("LINEAR"), "coo"),
        )
        assert ada.candidates == ("LINEAR", "COO")

    def test_convert_store_accepts_instance(self, tmp_path, tensor):
        from repro import convert_store

        src = FragmentStore(tmp_path / "src", tensor.shape, "LINEAR")
        src.write_tensor(tensor)
        dest = convert_store(src, tmp_path / "dst", get_format("CSF"))
        assert dest.format_name == "CSF"
        assert dest.read_points(tensor.coords[:5]).found.all()

    def test_bad_format_argument_raises(self, tmp_path):
        from repro.core.errors import FormatError

        with pytest.raises(FormatError):
            FragmentStore(tmp_path / "s", (4, 4), 123)

    def test_tuning_parameters_are_keyword_only(self, tmp_path):
        with pytest.raises(TypeError):
            FragmentStore(tmp_path / "s", (4, 4), "LINEAR", True)
        with pytest.raises(TypeError):
            AdaptiveStore(tmp_path / "a", (4, 4), None)
        from repro import StreamingWriter

        store = FragmentStore(tmp_path / "ok", (4, 4), "LINEAR")
        with pytest.raises(TypeError):
            StreamingWriter(store, 100)
