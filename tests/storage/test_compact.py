"""Unit tests for fragment decode and store compaction."""

import json

import numpy as np
import pytest

from repro import obs
from repro.core import SparseTensor
from repro.core.errors import FragmentError
from repro.formats import available_formats
from repro.storage import AdaptiveStore, FragmentStore


def counter_total(name: str) -> int:
    """Sum an obs counter across all label sets (0 when absent)."""
    return sum(
        c["value"] for c in obs.snapshot()["counters"] if c["name"] == name
    )


@pytest.fixture
def metered():
    was_enabled = obs.is_enabled()
    obs.enable()
    obs.reset()
    yield counter_total
    obs.reset()
    if not was_enabled:
        obs.disable()


def write_chunks(store, rng, n_chunks=3, n=80):
    """Write several overlapping chunks; returns the newest-wins overlay."""
    written = []
    for _ in range(n_chunks):
        coords = np.column_stack(
            [rng.integers(0, m, size=n, dtype=np.uint64)
             for m in store.shape]
        )
        chunk = SparseTensor(
            store.shape, coords, rng.standard_normal(n)
        ).deduplicated()
        store.write(chunk.coords, chunk.values)
        written.append(chunk)
    return SparseTensor(
        store.shape,
        np.vstack([t.coords for t in written]),
        np.concatenate([t.values for t in written]),
    ).deduplicated(keep="last")


class TestDecodeFragment:
    @pytest.mark.parametrize("fmt_name", available_formats())
    def test_round_trip(self, tmp_path, tensor_3d, fmt_name):
        store = FragmentStore(tmp_path / "ds", tensor_3d.shape, fmt_name)
        store.write_tensor(tensor_3d)
        back = store.decode_fragment(0)
        assert back.same_points(tensor_3d)

    def test_relative_fragment_rebased(self, tmp_path):
        shape = (1000, 1000)
        coords = np.array([[900, 900], [905, 910]], dtype=np.uint64)
        store = FragmentStore(tmp_path / "ds", shape, "LINEAR",
                              relative_coords=True)
        store.write(coords, np.array([1.0, 2.0]))
        back = store.decode_fragment(0)
        assert back.same_points(SparseTensor(shape, coords,
                                             np.array([1.0, 2.0])))


class TestCompact:
    def test_merges_to_single_fragment(self, tmp_path, tensor_3d):
        store = FragmentStore(tmp_path / "ds", tensor_3d.shape, "CSF")
        half = tensor_3d.nnz // 2
        store.write(tensor_3d.coords[:half], tensor_3d.values[:half])
        store.write(tensor_3d.coords[half:], tensor_3d.values[half:])
        assert len(store.fragments) == 2
        store.compact()
        assert len(store.fragments) == 1
        out = store.read_points(tensor_3d.coords)
        assert out.found.all()
        assert np.allclose(out.values, tensor_3d.values)

    def test_newest_wins_on_overlap(self, tmp_path):
        store = FragmentStore(tmp_path / "ds", (8, 8), "LINEAR")
        store.write(np.array([[1, 1], [2, 2]], dtype=np.uint64),
                    np.array([1.0, 2.0]))
        store.write(np.array([[1, 1]], dtype=np.uint64), np.array([9.0]))
        store.compact()
        assert store.nnz == 2  # duplicate collapsed
        out = store.read_points(np.array([[1, 1]], dtype=np.uint64))
        assert out.values[0] == 9.0

    def test_old_files_deleted(self, tmp_path, tensor_2d):
        store = FragmentStore(tmp_path / "ds", tensor_2d.shape, "COO")
        store.write_tensor(tensor_2d)
        store.write_tensor(tensor_2d)
        store.compact()
        frag_files = list((tmp_path / "ds").glob("frag-*.bin"))
        assert len(frag_files) == 1

    def test_survives_reload(self, tmp_path, tensor_2d):
        store = FragmentStore(tmp_path / "ds", tensor_2d.shape, "GCSC++")
        store.write_tensor(tensor_2d)
        store.write_tensor(tensor_2d)
        store.compact()
        reloaded = FragmentStore(tmp_path / "ds", tensor_2d.shape, "GCSC++")
        assert len(reloaded.fragments) == 1
        out = reloaded.read_points(tensor_2d.coords)
        assert out.found.all()

    def test_empty_store_rejected(self, tmp_path):
        store = FragmentStore(tmp_path / "ds", (4, 4), "COO")
        with pytest.raises(FragmentError, match="nothing to compact"):
            store.compact()

    def test_compact_with_relative_coords(self, tmp_path):
        shape = (512, 512)
        store = FragmentStore(tmp_path / "ds", shape, "LINEAR",
                              relative_coords=True)
        a = np.array([[10, 10], [20, 20]], dtype=np.uint64)
        b = np.array([[400, 400]], dtype=np.uint64)
        store.write(a, np.array([1.0, 2.0]))
        store.write(b, np.array([3.0]))
        store.compact()
        out = store.read_points(np.vstack([a, b]))
        assert out.found.all()
        assert sorted(out.values.tolist()) == [1.0, 2.0, 3.0]

    def test_unknown_strategy_rejected(self, tmp_path):
        store = FragmentStore(tmp_path / "ds", (4, 4), "COO")
        store.write(np.array([[1, 1]], dtype=np.uint64), np.array([1.0]))
        with pytest.raises(ValueError, match="strategy"):
            store.compact(strategy="vacuum")


class TestMergeCompaction:
    """The merge strategy vs the legacy decode-and-rebuild strategy."""

    @pytest.mark.parametrize("fmt_name", available_formats())
    @pytest.mark.parametrize("relative", [False, True])
    def test_bit_identical_to_decode_rebuild(self, tmp_path, rng,
                                             fmt_name, relative):
        """Both strategies must produce byte-identical fragment files."""
        shape = (17, 9, 11)
        stores = {}
        for strategy in ("merge", "decode"):
            store = FragmentStore(
                tmp_path / strategy, shape, fmt_name,
                relative_coords=relative,
            )
            chunk_rng = np.random.default_rng(99)
            write_chunks(store, chunk_rng, n_chunks=4, n=120)
            store.compact(strategy=strategy)
            stores[strategy] = store
        merge_frag = stores["merge"].fragments[0]
        decode_frag = stores["decode"].fragments[0]
        assert merge_frag.bbox == decode_frag.bbox
        assert merge_frag.nnz == decode_frag.nnz
        assert (merge_frag.path.read_bytes()
                == decode_frag.path.read_bytes())

    def test_merge_performs_zero_full_decodes(self, tmp_path, rng, metered):
        """Acceptance criterion: merge compaction never reconstructs a
        full tensor from any fragment."""
        store = FragmentStore(tmp_path / "ds", (20, 20, 20), "LINEAR")
        overlay = write_chunks(store, rng, n_chunks=4)
        obs.reset()
        store.compact(strategy="merge")
        assert counter_total("store.full_tensor_decodes") == 0
        assert counter_total("build.merge.runs") == 4
        out = store.read_points(overlay.coords)
        assert out.found.all()
        np.testing.assert_array_equal(out.values, overlay.values)

    def test_decode_strategy_does_decode(self, tmp_path, rng, metered):
        store = FragmentStore(tmp_path / "ds", (20, 20, 20), "CSF")
        write_chunks(store, rng, n_chunks=3)
        obs.reset()
        store.compact(strategy="decode")
        assert counter_total("store.full_tensor_decodes") == 3

    def test_merge_is_default_strategy(self, tmp_path, rng, metered):
        store = FragmentStore(tmp_path / "ds", (20, 20, 20), "GCSR++")
        write_chunks(store, rng, n_chunks=3)
        obs.reset()
        store.compact()
        assert counter_total("store.full_tensor_decodes") == 0
        assert counter_total("build.merge.runs") == 3


class TestCodecPreservedOnCompact:
    """Regression: compact() used to silently rewrite with the default
    codec when a store was reopened without repeating ``codec=``."""

    def test_reopen_adopts_manifest_codec(self, tmp_path, tensor_2d):
        store = FragmentStore(tmp_path / "ds", tensor_2d.shape, "LINEAR",
                              codec="zlib")
        store.write_tensor(tensor_2d)
        reopened = FragmentStore(tmp_path / "ds", tensor_2d.shape, "LINEAR")
        assert reopened.codec == "zlib"

    @pytest.mark.parametrize("strategy", ["merge", "decode"])
    def test_compact_after_reopen_keeps_codec(self, tmp_path, tensor_2d,
                                              strategy):
        store = FragmentStore(tmp_path / "ds", tensor_2d.shape, "LINEAR",
                              codec="zlib")
        half = tensor_2d.nnz // 2
        store.write(tensor_2d.coords[:half], tensor_2d.values[:half])
        store.write(tensor_2d.coords[half:], tensor_2d.values[half:])
        reopened = FragmentStore(tmp_path / "ds", tensor_2d.shape, "LINEAR")
        reopened.compact(strategy=strategy)
        manifest = json.loads((tmp_path / "ds" / "manifest.json").read_text())
        assert manifest["codec"] == "zlib"
        assert reopened.codec == "zlib"
        out = reopened.read_points(tensor_2d.coords)
        assert out.found.all()
        np.testing.assert_array_equal(out.values, tensor_2d.values)

    def test_mixed_format_adaptive_store_compacts(self, tmp_path, rng,
                                                  metered):
        """An adaptive store whose fragments use different formats must
        merge-compact without decoding and re-pick the format."""
        shape = (30, 30, 30)
        store = AdaptiveStore(tmp_path / "ds", shape, codec="zlib")
        overlay = write_chunks(store, rng, n_chunks=4, n=200)
        formats_before = {f.format_name for f in store.fragments}
        obs.reset()
        store.compact(strategy="merge")
        assert counter_total("store.full_tensor_decodes") == 0
        assert len(store.fragments) == 1
        assert store.codec == "zlib"
        assert store.fragments[0].format_name in (
            formats_before | set(available_formats())
        )
        out = store.read_points(overlay.coords)
        assert out.found.all()
        np.testing.assert_array_equal(out.values, overlay.values)
