"""Unit tests for fragment decode and store compaction."""

import numpy as np
import pytest

from repro.core import SparseTensor
from repro.core.errors import FragmentError
from repro.formats import available_formats
from repro.storage import FragmentStore


class TestDecodeFragment:
    @pytest.mark.parametrize("fmt_name", available_formats())
    def test_round_trip(self, tmp_path, tensor_3d, fmt_name):
        store = FragmentStore(tmp_path / "ds", tensor_3d.shape, fmt_name)
        store.write_tensor(tensor_3d)
        back = store.decode_fragment(0)
        assert back.same_points(tensor_3d)

    def test_relative_fragment_rebased(self, tmp_path):
        shape = (1000, 1000)
        coords = np.array([[900, 900], [905, 910]], dtype=np.uint64)
        store = FragmentStore(tmp_path / "ds", shape, "LINEAR",
                              relative_coords=True)
        store.write(coords, np.array([1.0, 2.0]))
        back = store.decode_fragment(0)
        assert back.same_points(SparseTensor(shape, coords,
                                             np.array([1.0, 2.0])))


class TestCompact:
    def test_merges_to_single_fragment(self, tmp_path, tensor_3d):
        store = FragmentStore(tmp_path / "ds", tensor_3d.shape, "CSF")
        half = tensor_3d.nnz // 2
        store.write(tensor_3d.coords[:half], tensor_3d.values[:half])
        store.write(tensor_3d.coords[half:], tensor_3d.values[half:])
        assert len(store.fragments) == 2
        store.compact()
        assert len(store.fragments) == 1
        out = store.read_points(tensor_3d.coords)
        assert out.found.all()
        assert np.allclose(out.values, tensor_3d.values)

    def test_newest_wins_on_overlap(self, tmp_path):
        store = FragmentStore(tmp_path / "ds", (8, 8), "LINEAR")
        store.write(np.array([[1, 1], [2, 2]], dtype=np.uint64),
                    np.array([1.0, 2.0]))
        store.write(np.array([[1, 1]], dtype=np.uint64), np.array([9.0]))
        store.compact()
        assert store.nnz == 2  # duplicate collapsed
        out = store.read_points(np.array([[1, 1]], dtype=np.uint64))
        assert out.values[0] == 9.0

    def test_old_files_deleted(self, tmp_path, tensor_2d):
        store = FragmentStore(tmp_path / "ds", tensor_2d.shape, "COO")
        store.write_tensor(tensor_2d)
        store.write_tensor(tensor_2d)
        store.compact()
        frag_files = list((tmp_path / "ds").glob("frag-*.bin"))
        assert len(frag_files) == 1

    def test_survives_reload(self, tmp_path, tensor_2d):
        store = FragmentStore(tmp_path / "ds", tensor_2d.shape, "GCSC++")
        store.write_tensor(tensor_2d)
        store.write_tensor(tensor_2d)
        store.compact()
        reloaded = FragmentStore(tmp_path / "ds", tensor_2d.shape, "GCSC++")
        assert len(reloaded.fragments) == 1
        out = reloaded.read_points(tensor_2d.coords)
        assert out.found.all()

    def test_empty_store_rejected(self, tmp_path):
        store = FragmentStore(tmp_path / "ds", (4, 4), "COO")
        with pytest.raises(FragmentError, match="nothing to compact"):
            store.compact()

    def test_compact_with_relative_coords(self, tmp_path):
        shape = (512, 512)
        store = FragmentStore(tmp_path / "ds", shape, "LINEAR",
                              relative_coords=True)
        a = np.array([[10, 10], [20, 20]], dtype=np.uint64)
        b = np.array([[400, 400]], dtype=np.uint64)
        store.write(a, np.array([1.0, 2.0]))
        store.write(b, np.array([3.0]))
        store.compact()
        out = store.read_points(np.vstack([a, b]))
        assert out.found.all()
        assert sorted(out.values.tolist()) == [1.0, 2.0, 3.0]
