"""Unit tests for fragment files."""

import numpy as np
import pytest

from repro.core import Box, SparseTensor
from repro.core.errors import FragmentError
from repro.formats import get_format
from repro.storage import (
    load_fragment,
    query_fragment,
    read_fragment_header,
    write_fragment,
)


@pytest.fixture
def encoded(fig1_tensor):
    return get_format("GCSR++").encode(fig1_tensor)


class TestWriteRead:
    def test_round_trip(self, tmp_path, encoded, fig1_tensor):
        path = tmp_path / "frag-000000.bin"
        info = write_fragment(path, encoded, coords_for_bbox=fig1_tensor.coords)
        assert info.nbytes == path.stat().st_size
        payload = load_fragment(path)
        assert payload.format_name == "GCSR++"
        assert payload.nnz == 5
        res, vals = query_fragment(payload, fig1_tensor.coords)
        assert res.found.all()
        assert np.allclose(vals, fig1_tensor.values)

    def test_bbox_recorded(self, tmp_path, encoded, fig1_tensor):
        path = tmp_path / "f.bin"
        info = write_fragment(path, encoded, coords_for_bbox=fig1_tensor.coords)
        assert info.bbox == Box((0, 0, 1), (3, 3, 2))

    def test_bbox_defaults_to_shape(self, tmp_path, encoded):
        path = tmp_path / "f.bin"
        info = write_fragment(path, encoded)
        assert info.bbox == Box((0, 0, 0), (3, 3, 3))

    def test_header_only_read(self, tmp_path, encoded, fig1_tensor):
        path = tmp_path / "f.bin"
        write_fragment(path, encoded, coords_for_bbox=fig1_tensor.coords)
        info = read_fragment_header(path)
        assert info.format_name == "GCSR++"
        assert info.nnz == 5

    def test_fsync_write(self, tmp_path, encoded):
        path = tmp_path / "f.bin"
        write_fragment(path, encoded, fsync=True)
        assert path.exists()

    def test_atomic_write_no_tmp_leftover(self, tmp_path, encoded):
        path = tmp_path / "f.bin"
        write_fragment(path, encoded)
        assert not list(tmp_path.glob("*.tmp"))

    def test_missing_file(self, tmp_path):
        with pytest.raises(FragmentError):
            load_fragment(tmp_path / "nope.bin")
        with pytest.raises(FragmentError):
            read_fragment_header(tmp_path / "nope.bin")

    def test_faithful_query_path(self, tmp_path, encoded, fig1_tensor):
        path = tmp_path / "f.bin"
        write_fragment(path, encoded)
        payload = load_fragment(path)
        res, vals = query_fragment(payload, fig1_tensor.coords, faithful=True)
        assert res.found.all()
        assert np.allclose(vals, fig1_tensor.values)

    def test_all_formats_survive_disk(self, tmp_path, tensor_3d):
        from repro.formats import available_formats

        for name in available_formats():
            enc = get_format(name).encode(tensor_3d)
            path = tmp_path / f"{name.replace('+','p')}.bin"
            write_fragment(path, enc, coords_for_bbox=tensor_3d.coords)
            payload = load_fragment(path)
            res, vals = query_fragment(payload, tensor_3d.coords)
            assert res.found.all(), name
            assert np.allclose(vals, tensor_3d.values), name
