"""Unit tests for parallel fragment packaging and write_many."""

import numpy as np
import pytest

from repro.core import Box, ShapeError
from repro.storage import FragmentStore
from repro.storage.parallel import pack_part, pack_parts_parallel


def split_parts(tensor, k):
    """Split a tensor's points into k round-robin parts."""
    parts = []
    for i in range(k):
        sel = slice(i, None, k)
        parts.append((tensor.coords[sel], tensor.values[sel]))
    return parts


class TestPackPart:
    def test_blob_is_valid_fragment(self, tensor_3d):
        from repro.storage import unpack_fragment

        item = pack_part(tensor_3d.shape, "GCSR++", "raw", False,
                         tensor_3d.coords, tensor_3d.values)
        payload = unpack_fragment(item.blob)
        assert payload.format_name == "GCSR++"
        assert payload.nnz == tensor_3d.nnz
        assert item.index_nbytes > 0

    def test_relative_mode(self):
        coords = np.array([[100, 100], [110, 120]], dtype=np.uint64)
        item = pack_part((1024, 1024), "LINEAR", "raw", True,
                         coords, np.array([1.0, 2.0]))
        assert item.bbox_origin == (100, 100)

    def test_misaligned_rejected(self):
        with pytest.raises(ShapeError):
            pack_part((4, 4), "COO", "raw", False,
                      np.zeros((2, 2), dtype=np.uint64), np.zeros(3))


class TestPackParallel:
    def test_inline_and_pooled_agree(self, tensor_3d):
        parts = split_parts(tensor_3d, 4)
        inline = pack_parts_parallel(
            tensor_3d.shape, "LINEAR", parts, max_workers=0
        )
        pooled = pack_parts_parallel(
            tensor_3d.shape, "LINEAR", parts, max_workers=2
        )
        assert len(inline) == len(pooled) == 4
        for a, b in zip(inline, pooled):
            assert a.blob == b.blob  # deterministic, order-preserving

    def test_single_part_runs_inline(self, tensor_2d):
        out = pack_parts_parallel(
            tensor_2d.shape, "CSF",
            [(tensor_2d.coords, tensor_2d.values)],
        )
        assert len(out) == 1


class TestWriteMany:
    def test_equivalent_to_sequential(self, tmp_path, tensor_3d):
        parts = split_parts(tensor_3d, 3)
        seq_store = FragmentStore(tmp_path / "seq", tensor_3d.shape, "CSF")
        for c, v in parts:
            seq_store.write(c, v)
        par_store = FragmentStore(tmp_path / "par", tensor_3d.shape, "CSF")
        infos = par_store.write_many(parts, max_workers=2)
        assert len(infos) == 3
        assert par_store.nnz == seq_store.nnz
        out = par_store.read_points(tensor_3d.coords)
        assert out.found.all()
        assert np.allclose(out.values, tensor_3d.values)

    def test_fragment_files_identical_to_sequential(self, tmp_path,
                                                    tensor_2d):
        parts = split_parts(tensor_2d, 2)
        seq = FragmentStore(tmp_path / "a", tensor_2d.shape, "GCSR++")
        for c, v in parts:
            seq.write(c, v)
        par = FragmentStore(tmp_path / "b", tensor_2d.shape, "GCSR++")
        par.write_many(parts, max_workers=2)
        for i in range(2):
            a = (tmp_path / "a" / f"frag-{i:06d}.bin").read_bytes()
            b = (tmp_path / "b" / f"frag-{i:06d}.bin").read_bytes()
            assert a == b

    def test_with_codec_and_relative(self, tmp_path, tensor_3d):
        store = FragmentStore(
            tmp_path / "ds", tensor_3d.shape, "LINEAR",
            relative_coords=True, codec="delta-zlib",
        )
        store.write_many(split_parts(tensor_3d, 3), max_workers=2)
        out = store.read_points(tensor_3d.coords)
        assert out.found.all()

    def test_manifest_persisted(self, tmp_path, tensor_2d):
        store = FragmentStore(tmp_path / "ds", tensor_2d.shape, "COO")
        store.write_many(split_parts(tensor_2d, 2), max_workers=0)
        reloaded = FragmentStore(tmp_path / "ds", tensor_2d.shape, "COO")
        assert len(reloaded.fragments) == 2


class TestWorkerErrorPropagation:
    """A failing part surfaces as WorkerError naming the part index, for
    every executor, and a partial batch commits nothing."""

    def bad_parts(self, tensor):
        parts = split_parts(tensor, 3)
        c, v = parts[1]
        parts[1] = (c, v[:-1])  # misaligned: fails inside pack_part
        return parts

    @pytest.mark.parametrize("executor,max_workers", [
        ("process", 2),
        ("thread", 2),
        ("process", 0),  # inline path
    ])
    def test_worker_error_carries_part_index(self, tensor_3d, executor,
                                             max_workers):
        from repro.core import WorkerError

        with pytest.raises(WorkerError) as ei:
            pack_parts_parallel(
                tensor_3d.shape, "LINEAR", self.bad_parts(tensor_3d),
                max_workers=max_workers, executor=executor,
            )
        assert ei.value.part_index == 1
        assert "part 1" in str(ei.value)

    def test_write_many_commits_nothing_on_failure(self, tmp_path,
                                                   tensor_3d):
        from repro.core import WorkerError

        store = FragmentStore(tmp_path / "ds", tensor_3d.shape, "LINEAR")
        with pytest.raises(WorkerError):
            store.write_many(self.bad_parts(tensor_3d), max_workers=2,
                             executor="thread")
        assert len(store.fragments) == 0
        assert not list((tmp_path / "ds").glob("frag-*.bin"))
        # The store still works after the failed batch.
        store.write_many(split_parts(tensor_3d, 3), max_workers=0)
        assert len(store.fragments) == 3
