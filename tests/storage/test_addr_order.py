"""Store-level behavior of the persisted address order.

The serialization/compat side is pinned by the differential suite
(``tests/property/test_differential.py::TestAddressOrderDifferential``)
and the crash suite; this file covers the lifecycle contracts:
option resolution and adoption on reopen, the ``set_addr_order``
migration, the workload-driven ``addr_order="auto"`` policy, plan
explainability, the codec-advisor diagnostics, and the sharded store's
order-pinned banding.
"""

import numpy as np
import pytest

from repro.core.boundary import Box
from repro.core.errors import ManifestError, ShapeError
from repro.storage import FragmentStore, StoreOptions
from repro.storage.compression import advise_buffer
from repro.storage.migrate import MigrationPolicy, decide_addr_order
from repro.storage.sharded import ShardedStore

SHAPE = (32, 16, 8)


def sample(n=200, seed=0):
    rng = np.random.default_rng(seed)
    coords = np.column_stack(
        [rng.integers(0, m, size=n) for m in SHAPE]
    ).astype(np.uint64)
    return coords, rng.standard_normal(n)


class TestOptionResolution:
    def test_unknown_order_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FragmentStore(
                tmp_path / "ds", SHAPE, "LINEAR",
                options=StoreOptions(addr_order="hilbert"),
            )

    def test_fresh_store_defaults_to_row_major(self, tmp_path):
        store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR")
        assert store.addr_order == "row_major"

    def test_reopen_adopts_committed_order(self, tmp_path):
        coords, values = sample()
        store = FragmentStore(
            tmp_path / "ds", SHAPE, "COO-SORTED",
            options=StoreOptions(addr_order="alto"),
        )
        store.write(coords, values)
        for opts in (StoreOptions(), StoreOptions(addr_order="auto")):
            reopened = FragmentStore(
                tmp_path / "ds", SHAPE, "COO-SORTED", options=opts
            )
            assert reopened.addr_order == "alto"

    def test_overflowing_shape_rejected_for_alto(self, tmp_path):
        wide = (1 << 22, 1 << 22, 1 << 22)  # 66 interleaved bits
        with pytest.raises(ShapeError):
            FragmentStore(
                tmp_path / "ds", wide, "LINEAR",
                options=StoreOptions(addr_order="alto"),
            )
        # ...but stays fine under the row-major default.
        FragmentStore(tmp_path / "ok", wide, "LINEAR")


class TestSetAddrOrder:
    def test_round_trip_migration(self, tmp_path):
        coords, values = sample(seed=1)
        store = FragmentStore(tmp_path / "ds", SHAPE, "COO-SORTED")
        for chunk in np.array_split(np.arange(coords.shape[0]), 3):
            store.write(coords[chunk], values[chunk])
        before = store.read_points(coords)

        changed = store.set_addr_order("alto")
        assert changed == len(store.fragments) == 3
        assert all(f.addr_order == "alto" for f in store.fragments)
        manifest = (tmp_path / "ds" / "manifest.json").read_text()
        assert '"addr_order": "alto"' in manifest
        out = store.read_points(coords)
        np.testing.assert_array_equal(out.found, before.found)
        np.testing.assert_array_equal(out.values, before.values)

        # Migrating back retires every trace of the non-default order.
        assert store.set_addr_order("row_major") == 3
        manifest = (tmp_path / "ds" / "manifest.json").read_text()
        assert "addr_order" not in manifest
        out = store.read_points(coords)
        np.testing.assert_array_equal(out.values, before.values)

    def test_idempotent(self, tmp_path):
        coords, values = sample(seed=2)
        store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR")
        store.write(coords, values)
        assert store.set_addr_order("row_major") == 0


class TestAutoPolicy:
    def test_decide_addr_order_thresholds(self):
        policy = MigrationPolicy()
        # Cold ledgers never move.
        assert decide_addr_order("row_major", 7, 0, policy) is None
        # Box-heavy ledgers pull to ALTO.
        assert decide_addr_order("row_major", 8, 2, policy) == "alto"
        assert decide_addr_order("alto", 8, 2, policy) is None
        # Reverting needs the full hysteresis gap, not a near-tie.
        assert decide_addr_order("alto", 4, 6, policy) is None
        assert decide_addr_order("alto", 1, 9, policy) == "row_major"
        assert decide_addr_order("row_major", 1, 9, policy) is None

    def test_box_heavy_workload_triggers_migration(self, tmp_path):
        coords, values = sample(seed=3)
        store = FragmentStore(
            tmp_path / "ds", SHAPE, "COO-SORTED",
            options=StoreOptions(addr_order="auto"),
        )
        store.write(coords[:100], values[:100])
        store.write(coords[100:], values[100:])
        assert store.addr_order == "row_major"
        box = Box((0, 0, 0), (16, 8, 4))
        for _ in range(12):
            store.read_box(box)
        # The verdict lands at the next maintenance point, not mid-read.
        store.compact()
        assert store.addr_order == "alto"
        assert all(f.addr_order == "alto" for f in store.fragments)
        # A reopen with the same policy keeps the migrated order.
        reopened = FragmentStore(
            tmp_path / "ds", SHAPE, "COO-SORTED",
            options=StoreOptions(addr_order="auto"),
        )
        assert reopened.addr_order == "alto"


class TestExplain:
    def test_summary_reports_order_and_intervals(self, tmp_path):
        coords, values = sample(seed=4)
        store = FragmentStore(
            tmp_path / "ds", SHAPE, "COO-SORTED",
            options=StoreOptions(addr_order="alto"),
        )
        store.write(coords, values)
        plan = store.explain(Box((0, 0, 0), (8, 8, 8)))
        text = plan.summary()
        assert "order: alto" in text
        assert "intervals: alto=" in text
        point_plan = store.explain(coords[:4])
        assert "order: alto" in point_plan.summary()

    def test_row_major_summary(self, tmp_path):
        coords, values = sample(seed=5)
        store = FragmentStore(tmp_path / "ds", SHAPE, "COO-SORTED")
        store.write(coords, values)
        text = store.explain(Box((0, 0, 0), (8, 8, 8))).summary()
        assert "order: row_major" in text
        assert "intervals: row_major=1" in text


class TestCodecAdvisorDiagnostics:
    def test_advice_carries_residual_diagnostics(self):
        # Sorted row-major addresses: near-constant deltas — dbp/drle
        # territory; the advice must expose the residual width and run
        # count it costed, so ALTO-vs-row-major codec choices are
        # explainable.
        arr = np.arange(0, 4096, 4, dtype=np.uint64)
        advice = advise_buffer(arr)
        assert advice.width_bits >= 0
        assert advice.n_runs >= 1
        assert advice.chain  # some cascade was chosen
        assert advice.candidate_sizes  # the byte counts it keyed on

    def test_alto_addresses_still_compress(self):
        from repro.core.linearize import linearize_alto

        rng = np.random.default_rng(6)
        coords = np.column_stack(
            [rng.integers(0, m, size=512) for m in (64, 64, 64)]
        ).astype(np.uint64)
        addrs = np.sort(linearize_alto(coords, (64, 64, 64)))
        advice = advise_buffer(addrs)
        # Interleaved residuals are wider than row-major ones, but the
        # advisor still quantifies them rather than bailing out.
        assert advice.width_bits > 0
        assert advice.n_runs > 0


class TestShardedOrder:
    def test_children_pinned_and_bands_in_order_space(self, tmp_path):
        coords, values = sample(n=400, seed=7)
        store = ShardedStore(
            tmp_path / "sh", SHAPE, "COO-SORTED", n_shards=4,
            options=StoreOptions(addr_order="alto"),
        )
        store.write(coords, values)
        assert store.addr_order == "alto"
        from repro.core.linearize import address_space_size

        assert store._cells == address_space_size(SHAPE, "alto")
        for i in range(len(store.shards)):
            child = store._child(i)
            assert child.addr_order == "alto"
            for frag in child.fragments:
                assert frag.addr_order == "alto"
        out = store.read_points(coords)
        assert out.found.all()

    def test_conflicting_reopen_rejected(self, tmp_path):
        store = ShardedStore(
            tmp_path / "sh", SHAPE, "LINEAR", n_shards=2,
            options=StoreOptions(addr_order="alto"),
        )
        coords, values = sample(n=50, seed=8)
        store.write(coords, values)
        with pytest.raises(ManifestError):
            ShardedStore(
                tmp_path / "sh", SHAPE, "LINEAR", n_shards=2,
                options=StoreOptions(addr_order="row_major"),
            )
        # Adoption (no explicit order) is always allowed.
        adopted = ShardedStore(tmp_path / "sh", SHAPE, "LINEAR", n_shards=2)
        assert adopted.addr_order == "alto"
        assert adopted.read_points(coords).found.all()
