"""Durability layer: atomic commits, retry policy, quarantine, fsck."""

import json

import numpy as np
import pytest

from repro.core import (
    Box,
    ChecksumError,
    FragmentError,
    FragmentIOError,
    ManifestError,
)
from repro.storage import FragmentStore, fsck
from repro.storage.durability import (
    NO_RETRY,
    RetryPolicy,
    clean_temp_files,
    file_crc,
    fragment_file_crc,
    quarantine_file,
    write_bytes_atomic,
)
from repro.testing.faults import FaultPlan, FaultRule, SeededFaults, inject


def make_store(path, *, n=30, seed=7, **kwargs):
    rng = np.random.default_rng(seed)
    store = FragmentStore(path, (32, 32), "LINEAR", **kwargs)
    # Distinct coordinates so value comparisons are unambiguous.
    lin = rng.choice(32 * 32, size=n, replace=False)
    coords = np.column_stack([lin // 32, lin % 32]).astype(np.uint64)
    values = rng.random(n)
    store.write(coords, values)
    return store, coords, values


def corrupt_file(path, offset=-12):
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestAtomicCommit:
    def test_write_bytes_atomic_commits(self, tmp_path):
        target = tmp_path / "blob.bin"
        assert write_bytes_atomic(target, b"hello", fsync=True) == 5
        assert target.read_bytes() == b"hello"
        assert not list(tmp_path.glob("*.tmp"))

    def test_failed_rename_leaves_old_content(self, tmp_path):
        target = tmp_path / "blob.bin"
        target.write_bytes(b"old")
        plan = FaultPlan([FaultRule(op="rename", pattern="blob.bin")])
        with inject(plan), pytest.raises(OSError):
            write_bytes_atomic(target, b"new")
        assert target.read_bytes() == b"old"

    def test_torn_write_never_reaches_target(self, tmp_path):
        target = tmp_path / "blob.bin"
        plan = FaultPlan(
            [FaultRule(op="write", pattern="blob.bin.tmp", torn_bytes=2)]
        )
        with inject(plan), pytest.raises(OSError):
            write_bytes_atomic(target, b"abcdef")
        assert not target.exists()
        # The torn temp file holds exactly the prefix.
        assert (tmp_path / "blob.bin.tmp").read_bytes() == b"ab"

    def test_clean_temp_files(self, tmp_path):
        (tmp_path / "a.tmp").write_bytes(b"x")
        (tmp_path / "b.bin").write_bytes(b"y")
        removed = clean_temp_files(tmp_path)
        assert [p.name for p in removed] == ["a.tmp"]
        assert (tmp_path / "b.bin").exists()

    def test_store_open_cleans_temp_files(self, tmp_path):
        store, *_ = make_store(tmp_path / "ds")
        stale = tmp_path / "ds" / "frag-000099.bin.tmp"
        stale.write_bytes(b"torn")
        FragmentStore(tmp_path / "ds", (32, 32), "LINEAR")
        assert not stale.exists()

    def test_manifest_generation_monotonic(self, tmp_path):
        store, coords, values = make_store(tmp_path / "ds")
        g1 = store.generation
        store.write(coords, values)
        assert store.generation > g1
        manifest = json.loads((tmp_path / "ds" / "manifest.json").read_text())
        assert manifest["generation"] == store.generation

    def test_manifest_records_fragment_crc(self, tmp_path):
        store, *_ = make_store(tmp_path / "ds")
        manifest = json.loads((tmp_path / "ds" / "manifest.json").read_text())
        entry = manifest["fragments"][0]
        data = (tmp_path / "ds" / entry["file"]).read_bytes()
        assert entry["crc"] == file_crc(data)

    def test_fragment_file_crc_matches_full_crc(self):
        from repro.storage import pack_fragment

        blob = pack_fragment(
            "LINEAR", (8, 8), 2, {},
            {"addresses": np.array([1, 2], dtype=np.uint64)},
            np.array([0.5, 1.5]),
        )
        assert fragment_file_crc(blob) == file_crc(blob)

    def test_corrupt_manifest_raises_manifest_error(self, tmp_path):
        make_store(tmp_path / "ds")
        (tmp_path / "ds" / "manifest.json").write_text("{not json")
        with pytest.raises(ManifestError):
            FragmentStore(tmp_path / "ds", (32, 32), "LINEAR")
        # Backward compatible: still a FragmentError.
        with pytest.raises(FragmentError):
            FragmentStore(tmp_path / "ds", (32, 32), "LINEAR")


class TestRetryPolicy:
    def test_schedule_bounded_and_capped(self):
        policy = RetryPolicy(
            attempts=4, base_delay=0.1, multiplier=10.0, max_delay=1.0,
        )
        assert policy.delays() == [0.1, 1.0, 1.0]
        assert NO_RETRY.delays() == []

    def test_transient_error_retried_then_succeeds(self):
        sleeps = []
        policy = RetryPolicy(attempts=3, base_delay=0.5, sleep=sleeps.append)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError(5, "transient")
            return "ok"

        assert policy.run(flaky) == "ok"
        assert sleeps == [0.5, 1.0]

    def test_exhausted_retries_reraise(self):
        policy = RetryPolicy(attempts=2, sleep=lambda s: None)

        def always_fails():
            raise FragmentIOError("disk is sad")

        with pytest.raises(FragmentIOError):
            policy.run(always_fails)

    def test_checksum_error_never_retried(self):
        policy = RetryPolicy(attempts=5, sleep=lambda s: None)
        calls = {"n": 0}

        def corrupt():
            calls["n"] += 1
            raise ChecksumError("bad crc")

        with pytest.raises(ChecksumError):
            policy.run(corrupt)
        assert calls["n"] == 1

    def test_invalid_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)

    def test_store_retry_absorbs_intermittent_reads(self, tmp_path):
        store, coords, values = make_store(
            tmp_path / "ds",
            retry=RetryPolicy(attempts=10, sleep=lambda s: None),
        )
        faults = SeededFaults(seed=3, p=0.5, ops=("read",), pattern="frag-*")
        with inject(faults):
            for _ in range(4):
                out = store.read_points(coords)
                assert out.found.all()
                assert np.allclose(out.values, values)
        assert faults.fired  # the flaky reads actually happened


class TestCorruptionPolicies:
    def test_invalid_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FragmentStore(tmp_path / "ds", (8, 8), "LINEAR",
                          on_corruption="ignore")

    def test_raise_policy_propagates_checksum_error(self, tmp_path):
        store, coords, _ = make_store(tmp_path / "ds")
        corrupt_file(store.fragments[0].path)
        with pytest.raises(ChecksumError):
            store.read_points(coords)

    def test_skip_policy_serves_surviving_fragments(self, tmp_path):
        store, coords, values = make_store(
            tmp_path / "ds", on_corruption="skip"
        )
        # Second fragment with disjoint data remains readable.
        coords2 = coords.copy()
        values2 = values + 10.0
        store.write(coords2, values2)
        corrupt_file(store.fragments[0].path)
        with pytest.warns(UserWarning, match="skipped"):
            out = store.read_points(coords)
        assert out.found.all()  # later fragment covers the same points
        assert np.allclose(out.values, values2)
        assert store.corrupt_fragments == 1
        assert len(store.fragments) == 2  # skip never de-lists

    def test_quarantine_policy_moves_file_and_delists(self, tmp_path):
        store, coords, values = make_store(
            tmp_path / "ds", on_corruption="quarantine"
        )
        store.write(coords, values + 1.0)
        bad = store.fragments[0].path
        corrupt_file(bad)
        with pytest.warns(UserWarning, match="quarantined"):
            out = store.read_points(coords)
        assert out.found.all()
        assert not bad.exists()
        qdir = tmp_path / "ds" / ".quarantine"
        assert (qdir / bad.name).exists()
        assert (qdir / (bad.name + ".reason")).exists()
        assert len(store.fragments) == 1
        # The manifest no longer lists the quarantined fragment.
        reloaded = FragmentStore(tmp_path / "ds", (32, 32), "LINEAR")
        assert len(reloaded.fragments) == 1
        assert fsck(tmp_path / "ds").clean

    def test_read_box_honors_policy(self, tmp_path):
        store, coords, values = make_store(
            tmp_path / "ds", on_corruption="skip"
        )
        store.write(coords, values + 1.0)
        corrupt_file(store.fragments[0].path)
        with pytest.warns(UserWarning):
            got = store.read_box(Box((0, 0), (32, 32)))
        assert got.nnz > 0

    def test_compact_quarantines_and_merges_survivors(self, tmp_path):
        store, coords, values = make_store(
            tmp_path / "ds", on_corruption="quarantine"
        )
        far = coords.copy()
        far[:, 0] = (far[:, 0] + 16) % 32
        store.write(far, values + 1.0)
        corrupt_file(store.fragments[0].path)
        with pytest.warns(UserWarning):
            store.compact()
        assert len(store.fragments) == 1
        assert store.corrupt_fragments == 1
        out = store.read_points(far)
        assert out.found.all()
        assert fsck(tmp_path / "ds").clean

    def test_compact_raise_policy_aborts_untouched(self, tmp_path):
        store, coords, values = make_store(tmp_path / "ds")
        store.write(coords, values + 1.0)
        corrupt_file(store.fragments[0].path)
        with pytest.raises(ChecksumError):
            store.compact()
        assert len(store.fragments) == 2  # nothing deleted

    def test_corrupt_counter_lands_in_obs(self, tmp_path):
        from repro import obs

        obs.enable()
        obs.reset()
        store, coords, _ = make_store(tmp_path / "ds", on_corruption="skip")
        corrupt_file(store.fragments[0].path)
        with pytest.warns(UserWarning):
            store.read_points(coords)
        snap = obs.snapshot()
        hits = [
            m for m in snap["counters"]
            if m["name"] == "store.corrupt_fragments"
        ]
        assert hits and hits[0]["value"] >= 1


class TestFsck:
    def test_clean_store(self, tmp_path):
        make_store(tmp_path / "ds")
        report = fsck(tmp_path / "ds")
        assert report.clean
        assert report.checked == 1
        assert report.ok == ["frag-000000.bin"]

    def test_detects_corruption(self, tmp_path):
        store, *_ = make_store(tmp_path / "ds")
        corrupt_file(store.fragments[0].path)
        report = fsck(tmp_path / "ds")
        assert not report.clean
        assert report.issues_of("corrupt")

    def test_detects_missing_and_extra(self, tmp_path):
        store, coords, values = make_store(tmp_path / "ds")
        store.write(coords, values)
        # Delete one committed fragment; orphan another by renaming.
        store.fragments[0].path.unlink()
        report = fsck(tmp_path / "ds")
        assert len(report.issues_of("missing")) == 1

    def test_repair_quarantines_never_deletes(self, tmp_path):
        store, coords, values = make_store(tmp_path / "ds")
        store.write(coords, values)
        bad = store.fragments[0].path
        corrupt_file(bad)
        report = fsck(tmp_path / "ds", repair=True)
        assert report.repaired
        assert not bad.exists()
        assert (tmp_path / "ds" / ".quarantine" / bad.name).exists()
        # Post-repair the store is clean and serves the surviving fragment.
        assert fsck(tmp_path / "ds").clean
        reloaded = FragmentStore(tmp_path / "ds", (32, 32), "LINEAR")
        assert len(reloaded.fragments) == 1

    def test_repair_recovers_uncommitted_fragment(self, tmp_path):
        store, coords, values = make_store(tmp_path / "ds")
        # Simulate a crash after the fragment rename but before the
        # manifest commit: put a valid fragment file outside the manifest.
        manifest_path = tmp_path / "ds" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        store.write(coords, values + 5.0)
        manifest_path.write_text(json.dumps(manifest))  # roll manifest back
        with pytest.warns(UserWarning, match="not in the manifest"):
            reopened = FragmentStore(tmp_path / "ds", (32, 32), "LINEAR")
        assert len(reopened.fragments) == 1  # consistent committed prefix
        report = fsck(tmp_path / "ds", repair=True)
        assert [i for i in report.issues if i.repaired == "recovered"]
        recovered = FragmentStore(tmp_path / "ds", (32, 32), "LINEAR")
        assert len(recovered.fragments) == 2
        out = recovered.read_points(coords)
        assert np.allclose(out.values, values + 5.0)

    def test_repair_removes_stale_tmp(self, tmp_path):
        make_store(tmp_path / "ds")
        stale = tmp_path / "ds" / "frag-000001.bin.tmp"
        stale.write_bytes(b"torn")
        report = fsck(tmp_path / "ds", repair=True)
        assert not stale.exists()
        assert [i for i in report.issues if i.kind == "tmp"]

    def test_store_fsck_method_reloads_after_repair(self, tmp_path):
        store, coords, values = make_store(tmp_path / "ds")
        store.write(coords, values)
        corrupt_file(store.fragments[0].path)
        report = store.fsck(repair=True)
        assert report.repaired
        assert len(store.fragments) == 1
        # Appending after the repair picks a fresh sequence number.
        store.write(coords, values)
        assert len(store.fragments) == 2

    def test_fsck_missing_directory(self, tmp_path):
        with pytest.raises(ManifestError):
            fsck(tmp_path / "nope")

    def test_fsck_json_roundtrip(self, tmp_path):
        make_store(tmp_path / "ds")
        report = fsck(tmp_path / "ds")
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["clean"] is True
        assert payload["checked"] == 1


class TestRescanRobustness:
    def test_rescan_skips_truncated_fragment(self, tmp_path):
        store, coords, values = make_store(tmp_path / "ds")
        store.write(coords, values)
        # Truncate the second fragment inside its header.
        frag = store.fragments[1].path
        frag.write_bytes(frag.read_bytes()[:6])
        (tmp_path / "ds" / "manifest.json").unlink()
        with pytest.warns(UserWarning, match="skipping unreadable"):
            reopened = FragmentStore(tmp_path / "ds", (32, 32), "LINEAR")
        assert len(reopened.fragments) == 1
        out = reopened.read_points(coords)
        assert out.found.all()

    def test_rescan_ignores_tmp_files(self, tmp_path):
        store, *_ = make_store(tmp_path / "ds")
        (tmp_path / "ds" / "frag-000001.bin.tmp").write_bytes(b"torn")
        store.rescan()
        assert len(store.fragments) == 1
        assert not (tmp_path / "ds" / "frag-000001.bin.tmp").exists()

    def test_rescan_records_crc(self, tmp_path):
        store, *_ = make_store(tmp_path / "ds")
        (tmp_path / "ds" / "manifest.json").unlink()
        reopened = FragmentStore(tmp_path / "ds", (32, 32), "LINEAR")
        frag = reopened.fragments[0]
        assert frag.crc == file_crc(frag.path.read_bytes())


class TestQuarantineHelper:
    def test_collision_suffix(self, tmp_path):
        a = tmp_path / "f.bin"
        a.write_bytes(b"one")
        quarantine_file(tmp_path, a, reason="r1")
        b = tmp_path / "f.bin"
        b.write_bytes(b"two")
        target = quarantine_file(tmp_path, b, reason="r2")
        assert target.name == "f.bin.1"
        assert (tmp_path / ".quarantine" / "f.bin").read_bytes() == b"one"
        assert target.read_bytes() == b"two"
