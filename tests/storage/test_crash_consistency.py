"""Crash-consistency: kill the commit path at every I/O op and recover.

The suite first runs a deterministic three-write workload under
:class:`~repro.testing.faults.OpRecorder` to enumerate every durability-layer
op (the injection points).  It then replays the workload once per point —
plus torn-write variants at several byte offsets — with a plan that kills
exactly that op, and asserts the invariant from docs/DURABILITY.md:

* reopening the store always succeeds and yields a *consistent prefix* of
  the committed writes (every listed fragment fully readable, in order);
* ``fsck --repair`` restores a clean manifest, recovering readable orphan
  fragments and quarantining unreadable ones — never silently dropping a
  fragment file.
"""

import warnings

import numpy as np
import pytest

from repro.storage import FragmentStore, fsck
from repro.testing.faults import (
    FaultEvent,
    FaultPlan,
    FaultRule,
    OpRecorder,
    inject,
    plan_for_crash_point,
)

SHAPE = (32, 32)
N_WRITES = 3


def part(j):
    """Write ``j``'s payload: 10 points on row ``j``, disjoint per write."""
    coords = np.column_stack(
        [np.full(10, j, dtype=np.uint64), np.arange(10, dtype=np.uint64)]
    )
    values = float(j * 100) + np.arange(10, dtype=float)
    return coords, values


def run_workload(directory):
    """The deterministic workload: open an empty store, commit 3 fragments."""
    store = FragmentStore(directory, SHAPE, "LINEAR")
    for j in range(N_WRITES):
        coords, values = part(j)
        store.write(coords, values)


def reopen(directory):
    with warnings.catch_warnings():
        # A crash between fragment rename and manifest commit leaves an
        # orphan fragment file; the open warns about it by design.
        warnings.simplefilter("ignore", UserWarning)
        return FragmentStore(directory, SHAPE, "LINEAR")


def record_injection_points(tmp_path):
    recorder = OpRecorder()
    with inject(recorder):
        run_workload(tmp_path / "record")
    return recorder.events


def assert_consistent_prefix(store):
    """Every committed fragment is intact and they form a write prefix."""
    k = len(store.fragments)
    assert k <= N_WRITES
    for j, frag in enumerate(store.fragments):
        assert frag.path.name == f"frag-{j:06d}.bin"
        coords, values = part(j)
        out = store.read_points(coords)
        assert out.found.all(), f"fragment {j} lost committed points"
        assert np.allclose(out.values, values)
    # Writes after the prefix are absent entirely.
    for j in range(k, N_WRITES):
        coords, _ = part(j)
        assert not store.read_points(coords).found.any()
    return k


def assert_nothing_silently_dropped(directory, before_repair):
    """Every fragment file present before repair is accounted for."""
    manifest_listed = {f.path.name for f in reopen(directory).fragments}
    quarantined = {
        p.name for p in (directory / ".quarantine").glob("frag-*.bin*")
        if not p.name.endswith(".reason")
    }
    for name in before_repair:
        assert name in manifest_listed or any(
            q == name or q.startswith(name + ".") for q in quarantined
        ), f"{name} vanished without manifest entry or quarantine"


def crash_and_recover(tmp_path, events, index, torn_bytes=None,
                      workload=run_workload):
    directory = tmp_path / f"crash-{index}-{torn_bytes}"
    plan = plan_for_crash_point(events, index, torn_bytes=torn_bytes)
    with inject(plan), pytest.raises(OSError):
        workload(directory)
    assert plan.fired, "the planned fault never triggered"

    store = reopen(directory)
    k = assert_consistent_prefix(store)

    frag_files = sorted(
        p.name for p in directory.glob("frag-*.bin")
    )
    report = fsck(directory, repair=True)
    assert report.repaired
    assert fsck(directory).clean
    assert_nothing_silently_dropped(directory, frag_files)

    # The repaired store is fully usable: at least the prefix survives
    # (an orphan of write k may have been recovered on top of it).
    repaired = reopen(directory)
    assert len(repaired.fragments) >= k
    for j in range(k):
        coords, values = part(j)
        out = repaired.read_points(coords)
        assert out.found.all()
        assert np.allclose(out.values, values)
    return k


class TestInjectionPointEnumeration:
    def test_recorded_op_sequence_shape(self, tmp_path):
        events = record_injection_points(tmp_path)
        # Open of an empty store commits one manifest (write + rename);
        # each write commits a fragment then the manifest (4 ops).
        assert len(events) == 2 + 4 * N_WRITES
        assert [e.op for e in events[:2]] == ["write", "rename"]
        for j in range(N_WRITES):
            chunk = events[2 + 4 * j : 6 + 4 * j]
            assert [e.op for e in chunk] == [
                "write", "rename", "write", "rename"
            ]
            assert chunk[0].path.name == f"frag-{j:06d}.bin.tmp"
            assert chunk[1].path.name == f"frag-{j:06d}.bin"
            assert chunk[2].path.name == "manifest.json.tmp"
            assert chunk[3].path.name == "manifest.json"

    def test_fsync_ops_recorded_when_enabled(self, tmp_path):
        recorder = OpRecorder()
        with inject(recorder):
            store = FragmentStore(tmp_path / "ds", SHAPE, "LINEAR",
                                  fsync=True)
            store.write(*part(0))
        assert any(e.op == "fsync" for e in recorder.events)


class TestCrashAtEveryPoint:
    def test_every_injection_point_recovers(self, tmp_path):
        events = record_injection_points(tmp_path)
        prefix_sizes = []
        for index in range(len(events)):
            prefix_sizes.append(crash_and_recover(tmp_path, events, index))
        # Sanity on coverage: early crashes commit nothing, the last
        # possible crash (final manifest rename) has all but one write.
        assert prefix_sizes[0] == 0
        assert max(prefix_sizes) == N_WRITES - 1
        assert sorted(set(prefix_sizes)) == list(range(N_WRITES))

    def test_torn_writes_at_byte_offsets(self, tmp_path):
        events = record_injection_points(tmp_path)
        write_indices = [
            i for i, e in enumerate(events) if e.op == "write"
        ]
        for index in write_indices:
            for torn in (0, 1, 100):
                crash_and_recover(tmp_path, events, index, torn_bytes=torn)

    def test_crash_then_continue_appending(self, tmp_path):
        """After recovery the store keeps working — fresh writes land."""
        events = record_injection_points(tmp_path)
        # Kill the manifest commit of the last write: fragment orphaned.
        directory = tmp_path / "resume"
        plan = plan_for_crash_point(events, len(events) - 1)
        with inject(plan), pytest.raises(OSError):
            run_workload(directory)
        store = reopen(directory)
        k = len(store.fragments)
        coords = np.column_stack(
            [np.full(5, 31, dtype=np.uint64),
             np.arange(5, dtype=np.uint64)]
        )
        store.write(coords, np.ones(5))
        # The new fragment must not reuse the orphan's sequence number.
        names = [f.path.name for f in store.fragments]
        assert len(names) == len(set(names)) == k + 1
        orphan = f"frag-{N_WRITES - 1:06d}.bin"
        assert orphan not in names  # still on disk, still recoverable
        assert (directory / orphan).exists()
        report = fsck(directory, repair=True)
        assert [i for i in report.issues if i.repaired == "recovered"]
        recovered = reopen(directory)
        out = recovered.read_points(part(N_WRITES - 1)[0])
        assert out.found.all()


class TestSeededSoak:
    def test_retry_policy_survives_seeded_read_faults(self, tmp_path):
        from repro.storage import RetryPolicy
        from repro.testing.faults import SeededFaults

        store = FragmentStore(
            tmp_path / "ds", SHAPE, "LINEAR",
            retry=RetryPolicy(attempts=12, sleep=lambda s: None),
        )
        for j in range(N_WRITES):
            store.write(*part(j))
        faults = SeededFaults(seed=1234, p=0.4, ops=("read",))
        with inject(faults):
            for j in range(N_WRITES):
                coords, values = part(j)
                out = store.read_points(coords)
                assert out.found.all()
                assert np.allclose(out.values, values)
        assert faults.fired  # the soak actually exercised retries

    def test_seeded_faults_deterministic(self, tmp_path):
        from repro.testing.faults import SeededFaults

        runs = []
        for _ in range(2):
            faults = SeededFaults(seed=99, p=0.5, ops=("write", "rename"))
            with inject(faults), warnings.catch_warnings():
                warnings.simplefilter("ignore", UserWarning)
                try:
                    run_workload(tmp_path / f"det-{len(runs)}-{_}")
                except OSError:
                    pass
            runs.append([(e.op, e.path.name) for e in faults.fired])
        assert runs[0] == runs[1]
        assert runs[0]  # the seed actually fired something


class TestCompressedCrashConsistency:
    """Crash coverage for cascade-coded stores (docs/COMPRESSION.md).

    The same kill-every-op discipline as above, but the fragments carry
    compressed buffers: torn compressed payloads must fail CRC (the CRC
    covers bytes-on-disk) and be quarantined, a killed manifest commit
    must leave the compressed orphan recoverable with its codec map
    re-derived from the fragment header, and fsck must report per-codec
    bytes in both the summary and the JSON output.
    """

    @staticmethod
    def run_cascade(directory):
        from repro.storage import StoreOptions

        store = FragmentStore(
            directory, SHAPE, "LINEAR",
            options=StoreOptions(codec="cascade"),
        )
        for j in range(N_WRITES):
            store.write(*part(j))

    def record(self, tmp_path):
        recorder = OpRecorder()
        with inject(recorder):
            self.run_cascade(tmp_path / "record-cascade")
        return recorder.events

    def test_workload_actually_compresses(self, tmp_path):
        """Guard: row-major row writes give unit-stride addresses, so the
        cascade must pick a delta chain (else this class tests nothing)."""
        directory = tmp_path / "guard"
        self.run_cascade(directory)
        store = reopen(directory)
        tags = set(store.compression_stats()["by_codec"])
        assert tags - {"raw"}, tags

    def test_crash_mid_compressed_fragment_write(self, tmp_path):
        events = self.record(tmp_path)
        frag_writes = [
            i for i, e in enumerate(events)
            if e.op == "write" and e.path.name.startswith("frag-")
        ]
        assert len(frag_writes) == N_WRITES
        for index in frag_writes:
            for torn in (None, 1, 100):
                crash_and_recover(
                    tmp_path, events, index, torn_bytes=torn,
                    workload=self.run_cascade,
                )

    def test_crash_mid_manifest_commit_recovers_codecs(self, tmp_path):
        """Kill the codec-bearing manifest commit: the orphaned
        compressed fragment is recovered with its codecs map rebuilt
        from the fragment header, not lost with the manifest."""
        import json

        events = self.record(tmp_path)
        directory = tmp_path / "manifest-crash"
        plan = plan_for_crash_point(events, len(events) - 1)
        with inject(plan), pytest.raises(OSError):
            self.run_cascade(directory)
        report = fsck(directory, repair=True)
        assert [i for i in report.issues if i.repaired == "recovered"]
        manifest = json.loads((directory / "manifest.json").read_text())
        recovered = manifest["fragments"][-1]
        assert recovered["codecs"], "recovered orphan lost its codec map"
        assert set(recovered["codecs"]) - {"raw"}
        store = reopen(directory)
        assert assert_consistent_prefix(store) == N_WRITES

    def test_fsck_quarantines_torn_compressed_buffer(self, tmp_path):
        """A compressed payload corrupted *under a valid CRC* (the torn
        state a partial page write can leave) is caught by the decode
        pass and quarantined with a codec-naming reason."""
        import struct
        import zlib

        from repro.storage import unpack_header

        directory = tmp_path / "torn-payload"
        self.run_cascade(directory)
        frag = reopen(directory).fragments[0].path
        blob = bytearray(frag.read_bytes())
        header, offset = unpack_header(bytes(blob))
        chains = {b["codec"] for b in header["buffers"]}
        assert chains - {"raw"}, "fixture regressed: nothing compressed"
        # The first buffer is the delta-bit-packed addresses payload; its
        # leading byte is the pack width.  Corrupt it and re-stamp the
        # trailing CRC so only the decode pass can notice.
        blob[offset] ^= 0xFF
        body = bytes(blob[:-4])
        blob[-4:] = struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)
        frag.write_bytes(bytes(blob))

        report = fsck(directory)
        assert not report.clean
        [issue] = [i for i in report.issues if i.name == frag.name]
        assert "undecodable" in issue.detail or "checksum" in issue.detail
        repaired = fsck(directory, repair=True)
        assert repaired.repaired
        assert (directory / ".quarantine" / frag.name).exists()
        assert fsck(directory).clean

    def test_fsck_json_reports_codecs(self, tmp_path):
        directory = tmp_path / "json"
        self.run_cascade(directory)
        report = fsck(directory)
        assert report.clean
        as_dict = report.as_dict()
        assert as_dict["codecs"]
        assert set(as_dict["codecs"]) - {"raw"}
        assert sum(as_dict["codecs"].values()) > 0
        assert "codecs:" in report.summary()


class TestManifestSchemaUpgrade:
    """Crash coverage for the v1 -> v2 (zone-map) manifest bump.

    The planner lazily upgrades pre-zone-map manifests on first read
    (``backfill_zone_maps``); these tests pin that the upgrade commit is
    just as crash-safe as any other manifest commit: a killed commit
    never loses data or blocks reads, and the next open retries it.
    """

    @staticmethod
    def _make_v1(directory):
        """A committed 3-write store whose manifest predates zone maps."""
        import json

        run_workload(directory)
        path = directory / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest.pop("version", None)
        for entry in manifest["fragments"]:
            entry.pop("zone", None)
        path.write_text(json.dumps(manifest))

    def test_backfill_commit_crash_keeps_v1_readable(self, tmp_path):
        import json

        directory = tmp_path / "ds"
        self._make_v1(directory)
        store = reopen(directory)
        # Kill the manifest tmp-write the first read's backfill performs.
        plan = FaultPlan(
            [FaultRule(op="write", pattern="manifest.json.tmp", times=1)]
        )
        with inject(plan), pytest.warns(UserWarning, match="backfill"):
            out = store.read_points(part(0)[0])
        assert plan.fired, "the backfill commit was never attempted"
        # The read itself succeeded off the in-memory maps...
        assert out.found.all()
        # ...the on-disk manifest is untouched v1 (atomic commit)...
        manifest = json.loads((directory / "manifest.json").read_text())
        assert "version" not in manifest
        assert assert_consistent_prefix(reopen(directory)) == N_WRITES
        # ...and the next open's first read retries the upgrade.
        again = reopen(directory)
        assert again.read_points(part(1)[0]).found.all()
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["version"] == 2
        assert all(e["zone"] for e in manifest["fragments"])

    def test_v1_store_write_crash_then_upgrade(self, tmp_path):
        """A v1 store that crashes mid-write recovers, upgrades, and the
        fsck-recovered orphan gets its zone map re-backfilled."""
        import json

        directory = tmp_path / "ds"
        self._make_v1(directory)
        store = reopen(directory)
        extra_coords, extra_values = part(N_WRITES)
        plan = FaultPlan(
            [FaultRule(op="rename", pattern="manifest.json", times=1)]
        )
        with inject(plan), pytest.raises(OSError):
            store.write(extra_coords, extra_values)
        # Recovery: committed prefix intact; first read upgrades to v2.
        recovered = reopen(directory)
        assert assert_consistent_prefix(recovered) == N_WRITES
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["version"] == 2
        assert all(e["zone"] for e in manifest["fragments"])
        # fsck recovers the orphaned 4th fragment without a zone map...
        report = fsck(directory, repair=True)
        assert [i for i in report.issues if i.repaired == "recovered"]
        manifest = json.loads((directory / "manifest.json").read_text())
        assert any(e.get("zone") is None for e in manifest["fragments"])
        # ...and the next read re-backfills exactly that entry.
        final = reopen(directory)
        assert final.read_points(extra_coords).found.all()
        manifest = json.loads((directory / "manifest.json").read_text())
        assert all(e["zone"] for e in manifest["fragments"])
