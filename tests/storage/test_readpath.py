"""Read pipeline: fragment cache, ordered fan-out, RW lock, fault parity.

The parallel read path must be *indistinguishable* from the sequential one
in everything but wall-clock: same merge order, same ``on_corruption``
outcomes, same retry absorption, same counters.  These tests pin that
contract, plus the unit behavior of the pieces
(:class:`~repro.storage.readpath.FragmentCache`,
:func:`~repro.storage.readpath.map_fragments_ordered`,
:class:`~repro.storage.readpath.RWLock`).
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import ChecksumError
from repro.storage import FragmentStore
from repro.storage.durability import RetryPolicy
from repro.storage.readpath import (
    MAX_READ_WORKERS,
    PARALLEL_MODES,
    FragmentCache,
    RWLock,
    map_fragments_ordered,
    payload_nbytes,
    validate_parallel,
)
from repro.testing.faults import FaultPlan, FaultRule, inject


def make_store(path, *, n_fragments=4, points_per_fragment=12, **kwargs):
    """A LINEAR store with ``n_fragments`` disjoint fragments."""
    shape = (64, 64)
    store = FragmentStore(path, shape, "LINEAR", **kwargs)
    all_coords, all_values = [], []
    for i in range(n_fragments):
        rows = np.arange(points_per_fragment, dtype=np.uint64)
        coords = np.column_stack(
            [rows, np.full(points_per_fragment, i, dtype=np.uint64)]
        )
        values = (rows + 100.0 * i).astype(np.float64)
        store.write(coords, values)
        all_coords.append(coords)
        all_values.append(values)
    return store, np.vstack(all_coords), np.concatenate(all_values)


def fake_payload(value_bytes=800, buffer_bytes=160):
    return SimpleNamespace(
        values=np.zeros(value_bytes // 8, dtype=np.float64),
        buffers={"addresses": np.zeros(buffer_bytes // 8, dtype=np.uint64)},
    )


def corrupt_file(path, offset=-12):
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestValidateParallel:
    def test_modes(self):
        for mode in PARALLEL_MODES:
            assert validate_parallel(mode) == mode

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="parallel"):
            validate_parallel("process")

    def test_store_rejects_unknown(self, tmp_path):
        store, coords, _ = make_store(tmp_path / "ds", n_fragments=1)
        with pytest.raises(ValueError, match="parallel"):
            store.read_points(coords, parallel="fork")

    def test_worker_bound_positive(self):
        assert MAX_READ_WORKERS >= 1


class TestMapFragmentsOrdered:
    def test_preserves_input_order(self):
        # Later items finish first; results must still land in input order.
        def task(i):
            time.sleep(0.002 * (8 - i))
            return i * 10

        out = map_fragments_ordered(list(range(8)), task)
        assert [r for r, exc in out] == [i * 10 for i in range(8)]
        assert all(exc is None for _, exc in out)

    def test_captures_exceptions_per_item(self):
        def task(i):
            if i % 2:
                raise ValueError(f"boom-{i}")
            return i

        out = map_fragments_ordered(list(range(6)), task)
        for i, (result, exc) in enumerate(out):
            if i % 2:
                assert isinstance(exc, ValueError) and str(exc) == f"boom-{i}"
            else:
                assert result == i and exc is None

    def test_empty_items(self):
        assert map_fragments_ordered([], lambda x: x) == []

    def test_window_of_one_is_sequential_order(self):
        seen = []
        out = map_fragments_ordered(
            list(range(5)), lambda i: seen.append(i) or i, max_workers=1
        )
        assert seen == list(range(5))
        assert [r for r, _ in out] == list(range(5))


class TestFragmentCache:
    def test_disabled_by_default(self):
        cache = FragmentCache()
        assert not cache.enabled
        cache.put("k", fake_payload())
        assert cache.get("k") is None
        # A disabled cache records nothing: it is not "all misses".
        assert cache.hits == cache.misses == 0
        assert len(cache) == 0

    def test_hit_miss_accounting(self):
        cache = FragmentCache(1 << 20)
        p = fake_payload()
        assert cache.get("k") is None
        cache.put("k", p)
        assert cache.get("k") is p
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_order(self):
        p = fake_payload()
        per_entry = payload_nbytes(p)
        cache = FragmentCache(3 * per_entry)
        for key in ("a", "b", "c"):
            cache.put(key, fake_payload())
        cache.get("a")  # refresh: "b" is now least recent
        cache.put("d", fake_payload())
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.get("d") is not None
        assert cache.evictions == 1

    def test_bytes_bound_respected(self):
        per_entry = payload_nbytes(fake_payload())
        cache = FragmentCache(int(2.5 * per_entry))
        for i in range(10):
            cache.put(f"k{i}", fake_payload())
            assert cache.current_bytes <= cache.max_bytes
        assert len(cache) == 2
        assert cache.evictions == 8

    def test_oversized_payload_not_cached(self):
        cache = FragmentCache(256)  # smaller than any fake payload
        cache.put("big", fake_payload())
        assert len(cache) == 0 and cache.current_bytes == 0

    def test_replacing_key_does_not_leak_bytes(self):
        cache = FragmentCache(1 << 20)
        cache.put("k", fake_payload())
        before = cache.current_bytes
        cache.put("k", fake_payload())
        assert cache.current_bytes == before
        assert len(cache) == 1

    def test_invalidate_clears_but_keeps_totals(self):
        cache = FragmentCache(1 << 20)
        cache.put("k", fake_payload())
        cache.get("k")
        cache.invalidate()
        assert len(cache) == 0 and cache.current_bytes == 0
        assert cache.hits == 1
        assert cache.invalidations == 1
        # Invalidating an empty cache is a no-op, not another invalidation.
        cache.invalidate()
        assert cache.invalidations == 1

    def test_stats_snapshot(self):
        cache = FragmentCache(4096)
        cache.put("k", fake_payload())
        stats = cache.stats()
        assert stats["enabled"] == 1
        assert stats["entries"] == 1
        assert stats["bytes"] == cache.current_bytes
        assert set(stats) == {
            "enabled", "max_bytes", "bytes", "entries",
            "hits", "misses", "evictions", "invalidations",
        }

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            FragmentCache(-1)

    def test_cache_counters_land_in_obs(self, tmp_path):
        from repro import obs

        obs.enable()
        obs.reset()
        store, coords, _ = make_store(
            tmp_path / "ds", n_fragments=2, cache_bytes=1 << 20
        )
        store.read_points(coords)
        store.read_points(coords)
        snap = obs.snapshot()
        by_name = {m["name"]: m["value"] for m in snap["counters"]}
        assert by_name.get("store.cache.misses", 0) == store.cache.misses
        assert by_name.get("store.cache.hits", 0) == store.cache.hits
        assert store.cache.hits >= 2


class TestRWLock:
    def test_concurrent_readers(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # all 3 readers inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order = []
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                order.append("read")

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        order.append("write-done")
        lock.release_write()
        t.join(timeout=5)
        assert order == ["write-done", "read"]

    def test_writer_reentrant(self):
        lock = RWLock()
        with lock.write_locked():
            with lock.write_locked():
                with lock.read_locked():  # reads under own write lock: OK
                    pass
        # Fully released: another thread can acquire immediately.
        acquired = []

        def writer():
            with lock.write_locked():
                acquired.append(True)

        t = threading.Thread(target=writer)
        t.start()
        t.join(timeout=5)
        assert acquired == [True]


class TestParallelMatchesSequential:
    @pytest.mark.parametrize("max_workers", [None, 1, 2])
    def test_read_points_identical(self, tmp_path, max_workers):
        store, coords, values = make_store(tmp_path / "ds", n_fragments=6)
        seq = store.read_points(coords)
        par = store.read_points(
            coords, parallel="thread", max_workers=max_workers
        )
        np.testing.assert_array_equal(seq.found, par.found)
        np.testing.assert_array_equal(seq.values, par.values)
        assert seq.fragments_visited == par.fragments_visited

    def test_read_box_identical(self, tmp_path):
        from repro.core import Box

        store, *_ = make_store(tmp_path / "ds", n_fragments=6)
        box = Box((0, 0), (20, 64))
        seq = store.read_box(box)
        par = store.read_box(box, parallel="thread")
        np.testing.assert_array_equal(seq.coords, par.coords)
        np.testing.assert_array_equal(seq.values, par.values)

    def test_parallel_op_accounting_matches(self, tmp_path):
        """Per-worker counters absorbed into the span equal sequential's."""
        from repro import obs

        store, coords, _ = make_store(tmp_path / "ds", n_fragments=4)

        def total_ops(parallel):
            obs.enable()
            obs.reset()
            store.read_points(coords, parallel=parallel)
            snap = obs.snapshot()
            return {
                m["name"]: m["value"] for m in snap["counters"]
                if m["name"].startswith("ops.")
            }

        assert total_ops("none") == total_ops("thread")


class TestCorruptionPolicyParity:
    """skip / quarantine / raise behave identically under parallel."""

    @pytest.mark.parametrize("parallel", ["none", "thread"])
    def test_skip_parity(self, tmp_path, parallel):
        store, coords, values = make_store(
            tmp_path / f"ds-{parallel}", on_corruption="skip"
        )
        corrupt_file(store.fragments[1].path)
        with pytest.warns(UserWarning, match="skip"):
            out = store.read_points(coords, parallel=parallel)
        # Fragment 1's points vanish; everything else survives.
        expected = np.ones(len(coords), dtype=bool)
        expected[12:24] = False
        np.testing.assert_array_equal(out.found, expected)
        np.testing.assert_array_equal(out.values, values[expected])
        assert store.corrupt_fragments == 1
        assert len(store.fragments) == 4  # skip never de-lists

    @pytest.mark.parametrize("parallel", ["none", "thread"])
    def test_quarantine_parity(self, tmp_path, parallel):
        store, coords, _ = make_store(
            tmp_path / f"ds-{parallel}", on_corruption="quarantine"
        )
        bad = store.fragments[2].path
        corrupt_file(bad)
        with pytest.warns(UserWarning, match="quarantine"):
            out = store.read_points(coords, parallel=parallel)
        assert int(out.found.sum()) == 36
        assert not bad.exists()
        assert (bad.parent / ".quarantine" / bad.name).exists()
        assert len(store.fragments) == 3  # de-listed from the manifest
        # A reopened store agrees: the manifest commit was durable.
        reopened = FragmentStore(bad.parent, (64, 64), "LINEAR")
        assert len(reopened.fragments) == 3

    @pytest.mark.parametrize("parallel", ["none", "thread"])
    def test_raise_parity(self, tmp_path, parallel):
        store, coords, _ = make_store(tmp_path / f"ds-{parallel}")
        corrupt_file(store.fragments[0].path)
        with pytest.raises(ChecksumError):
            store.read_points(coords, parallel=parallel)
        assert len(store.fragments) == 4  # raise never mutates the store

    @pytest.mark.parametrize("parallel", ["none", "thread"])
    def test_corrupt_fragment_never_cached(self, tmp_path, parallel):
        store, coords, _ = make_store(
            tmp_path / f"ds-{parallel}",
            on_corruption="skip", cache_bytes=1 << 20,
        )
        corrupt_file(store.fragments[0].path)
        for _ in range(2):  # second read must re-detect, not hit a cache
            with pytest.warns(UserWarning):
                store.read_points(coords, parallel=parallel)
        assert store.corrupt_fragments == 2


class TestRetryParity:
    @pytest.mark.parametrize("parallel", ["none", "thread"])
    def test_transient_read_error_absorbed(self, tmp_path, parallel):
        """One injected EIO per fragment read is retried transparently."""
        store, coords, values = make_store(
            tmp_path / f"ds-{parallel}",
            retry=RetryPolicy(attempts=3, sleep=lambda _t: None),
        )
        plan = FaultPlan(
            [FaultRule(op="read", pattern="frag-*.bin", times=2)]
        )
        with inject(plan):
            out = store.read_points(coords, parallel=parallel)
        assert out.found.all()
        np.testing.assert_array_equal(out.values, values)

    def test_exhausted_retries_surface(self, tmp_path):
        store, coords, _ = make_store(
            tmp_path / "ds",
            retry=RetryPolicy(attempts=2, sleep=lambda _t: None),
        )
        plan = FaultPlan(
            [FaultRule(op="read", pattern="frag-*.bin", times=None)]
        )
        with inject(plan), pytest.raises(Exception):
            store.read_points(coords, parallel="thread")


class TestCacheLifecycle:
    def test_write_invalidates(self, tmp_path):
        store, coords, values = make_store(
            tmp_path / "ds", cache_bytes=1 << 20
        )
        store.read_points(coords)
        assert len(store.cache) > 0
        store.write(coords[:1], values[:1] + 1.0)
        assert len(store.cache) == 0

    def test_compact_invalidates_and_next_read_is_fresh(self, tmp_path):
        store, coords, values = make_store(
            tmp_path / "ds", cache_bytes=1 << 20
        )
        store.read_points(coords)
        store.compact()
        assert len(store.cache) == 0
        out = store.read_points(coords)
        assert out.found.all()
        np.testing.assert_array_equal(out.values, values)

    def test_warm_read_skips_disk(self, tmp_path):
        store, coords, _ = make_store(
            tmp_path / "ds", n_fragments=3, cache_bytes=1 << 20
        )
        store.read_points(coords)          # cold: 3 misses
        misses_after_cold = store.cache.misses
        # Injecting unconditional read faults proves warm reads never
        # touch the files.
        plan = FaultPlan(
            [FaultRule(op="read", pattern="frag-*.bin", times=None)]
        )
        with inject(plan):
            out = store.read_points(coords, parallel="thread")
        assert out.found.all()
        assert store.cache.misses == misses_after_cold
        assert store.cache.hits >= 3
