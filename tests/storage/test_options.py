"""StoreOptions / ReadOptions: validation, resolution, deprecation shims."""

import dataclasses
import warnings

import numpy as np
import pytest

from repro import (
    AdaptiveStore,
    BlockedDataset,
    FragmentStore,
    ReadOptions,
    ShardedStore,
    StoreOptions,
)
from repro.storage.options import (
    UNSET,
    resolve_read_options,
    resolve_store_options,
)

SHAPE = (16, 16, 16)


def make_coords(rng, n=64):
    return rng.integers(0, 16, size=(n, 3)).astype(np.uint64)


class TestStoreOptions:
    def test_defaults(self):
        opts = StoreOptions()
        assert opts.relative_coords is False
        assert opts.fsync is False
        assert opts.codec is None
        assert opts.on_corruption == "raise"
        assert opts.retry is None
        assert opts.cache_bytes == 0
        assert opts.planner is True
        assert opts.crc_mode == "eager"
        assert opts.lazy_load is False

    def test_frozen(self):
        opts = StoreOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            opts.fsync = True

    def test_replace(self):
        opts = StoreOptions().replace(fsync=True, cache_bytes=4096)
        assert opts.fsync is True
        assert opts.cache_bytes == 4096
        assert opts.codec is None  # untouched fields keep defaults

    def test_validation(self):
        with pytest.raises(ValueError):
            StoreOptions(on_corruption="explode")
        with pytest.raises(ValueError):
            StoreOptions(crc_mode="never")
        with pytest.raises(ValueError):
            StoreOptions(cache_bytes=-1)

    def test_bad_codec_rejected_by_store(self, tmp_path):
        with pytest.raises(Exception):
            FragmentStore(tmp_path / "s", SHAPE, "COO",
                          options=StoreOptions(codec="no-such-codec"))


class TestReadOptions:
    def test_defaults(self):
        ropts = ReadOptions()
        assert ropts.faithful is False
        assert ropts.check_crc is True
        assert ropts.parallel == "none"
        assert ropts.max_workers is None

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ReadOptions().faithful = True

    def test_validation(self):
        with pytest.raises(ValueError):
            ReadOptions(parallel="fibers")


class TestResolution:
    def test_none_yields_defaults(self):
        assert resolve_store_options(None) == StoreOptions()
        assert resolve_read_options(None) == ReadOptions()

    def test_options_passthrough(self):
        opts = StoreOptions(fsync=True)
        assert resolve_store_options(opts) is opts

    def test_legacy_keyword_overrides(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            opts = resolve_store_options(None, cache_bytes=512)
            assert opts.cache_bytes == 512
            # Explicit legacy keyword wins over the options object too.
            opts = resolve_store_options(StoreOptions(fsync=False), fsync=True)
            assert opts.fsync is True
            ropts = resolve_read_options(ReadOptions(), faithful=True)
            assert ropts.faithful is True

    def test_unset_sentinel_ignored(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            # UNSET values must not trigger deprecation warnings.
            opts = resolve_store_options(None, fsync=UNSET, codec=UNSET)
        assert opts == StoreOptions()

    def test_legacy_keyword_warns(self):
        from repro.storage import options as options_mod

        options_mod._WARNED.discard("planner")
        with pytest.warns(DeprecationWarning, match="planner"):
            resolve_store_options(None, planner=False)

    def test_warn_once_per_keyword(self):
        from repro.storage import options as options_mod

        options_mod._WARNED.discard("retry")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolve_store_options(None, retry=None)
            resolve_store_options(None, retry=None)
        deps = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deps) == 1


class TestStoresAcceptOptions:
    def test_fragment_store(self, tmp_path):
        rng = np.random.default_rng(0)
        store = FragmentStore(
            tmp_path / "s", SHAPE, "LINEAR",
            options=StoreOptions(cache_bytes=1 << 20, crc_mode="once"),
        )
        assert store.options.cache_bytes == 1 << 20
        assert store.crc_mode == "once"
        coords = make_coords(rng)
        store.write(coords, np.ones(len(coords)))
        out = store.read_points(coords[:8], options=ReadOptions(faithful=True))
        assert out.found.all()

    def test_store_options_codec_adoption(self, tmp_path):
        store = FragmentStore(tmp_path / "s", SHAPE, "COO",
                              options=StoreOptions(codec="zlib"))
        assert store.codec == "zlib"
        assert store.options.codec == "zlib"
        # codec=None on reopen adopts the manifest codec.
        reopened = FragmentStore(tmp_path / "s", SHAPE, "COO")
        assert reopened.codec == "zlib"

    def test_adaptive_store(self, tmp_path):
        store = AdaptiveStore(tmp_path / "a", SHAPE,
                              options=StoreOptions(fsync=False))
        assert store.options.fsync is False

    def test_blocked_dataset(self, tmp_path):
        ds = BlockedDataset(tmp_path / "b", SHAPE, (8, 8, 8), "COO",
                            options=StoreOptions(cache_bytes=1024))
        assert ds.store.cache.max_bytes == 1024
        # BlockedDataset always stores relative coords regardless of options.
        assert ds.store.relative_coords is True

    def test_sharded_store(self, tmp_path):
        store = ShardedStore(tmp_path / "sh", SHAPE, "LINEAR", n_shards=2,
                             options=StoreOptions(crc_mode="once"))
        assert store.options.crc_mode == "once"

    def test_sharded_rejects_relative_coords(self, tmp_path):
        with pytest.raises(Exception):
            ShardedStore(tmp_path / "sh", SHAPE, "LINEAR",
                         options=StoreOptions(relative_coords=True))

    def test_legacy_constructor_keyword_still_works(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            store = FragmentStore(tmp_path / "s", SHAPE, "COO",
                                  cache_bytes=2048)
        assert store.cache.max_bytes == 2048

    def test_legacy_read_keyword_still_works(self, tmp_path):
        rng = np.random.default_rng(1)
        store = FragmentStore(tmp_path / "s", SHAPE, "LINEAR")
        coords = make_coords(rng)
        store.write(coords, np.ones(len(coords)))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            out = store.read_points(coords[:4], faithful=True)
        assert out.found.all()
