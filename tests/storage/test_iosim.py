"""Unit tests for the PFS I/O cost model."""

import pytest

from repro.storage import (
    PERLMUTTER_LUSTRE,
    PROFILES,
    PFSProfile,
    get_profile,
)


class TestProfile:
    def test_write_time_linear_in_bytes(self):
        p = PFSProfile("t", latency_s=0.01, ost_bandwidth_Bps=1e8)
        t1 = p.write_time(int(1e8))
        t2 = p.write_time(int(2e8))
        assert t1 == pytest.approx(1.01)
        assert (t2 - t1) == pytest.approx(1.0)

    def test_striping_multiplies_bandwidth(self):
        p = PFSProfile("t", 0.0, 1e8, stripe_count=4, max_parallel_osts=8)
        assert p.effective_bandwidth_Bps == 4e8

    def test_parallelism_cap(self):
        p = PFSProfile("t", 0.0, 1e8, stripe_count=16, max_parallel_osts=2)
        assert p.effective_bandwidth_Bps == 2e8

    def test_latency_floor(self):
        assert PERLMUTTER_LUSTRE.write_time(0) == pytest.approx(
            PERLMUTTER_LUSTRE.latency_s
        )


class TestCalibration:
    def test_table3_coo_write_time_reproduced(self):
        """The profile reproduces Table III's COO write within ~20 %:
        4D MSP ~ 563k points, COO fragment ~ 563k * (4+1) * 8 bytes."""
        n = 563_000
        nbytes = n * 5 * 8
        modeled = PERLMUTTER_LUSTRE.write_time(nbytes)
        assert modeled == pytest.approx(0.1217, rel=0.2)

    def test_table3_linear_write_time_reproduced(self):
        n = 563_000
        nbytes = n * 2 * 8
        modeled = PERLMUTTER_LUSTRE.write_time(nbytes)
        assert modeled == pytest.approx(0.0504, rel=0.25)

    def test_coo_vs_linear_ratio(self):
        """The ~2.4x write-time ratio the paper measures is byte-driven."""
        n = 563_000
        coo = PERLMUTTER_LUSTRE.write_time(n * 5 * 8)
        lin = PERLMUTTER_LUSTRE.write_time(n * 2 * 8)
        assert coo / lin == pytest.approx(0.1217 / 0.0504, rel=0.25)


class TestRegistry:
    def test_lookup(self):
        assert get_profile("perlmutter-lustre") is PERLMUTTER_LUSTRE

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_profile("ramdisk")

    def test_all_profiles_sane(self):
        for p in PROFILES.values():
            assert p.latency_s >= 0
            assert p.effective_bandwidth_Bps > 0
