"""Tier-1 smoke hook for the parallel-read/cache microbench (assert-only).

Imports ``benchmarks/bench_parallel_read.py`` by path (the benchmarks
directory is not a package) and asserts the warm-cache read speedup at a
laxer floor than the standalone run, so a regression that makes cached
reads re-load or re-sort fragments fails the regular suite, not just the
benchmark run.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

_BENCH = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "bench_parallel_read.py"
)


def _load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench_parallel_read", _BENCH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_parallel_read_speedup_smoke():
    bench = _load_bench()
    result = bench.bench_parallel_read(
        n_fragments=16, points=8_000, repeats=3
    )
    bench.assert_speedup_ok(result, bench.MIN_SPEEDUP_SMOKE)
    assert result["hit_rate"] > 0.5
