"""Tier-1 smoke for the ALTO linearization benchmark.

Runs ``benchmarks/bench_alto.py`` at reduced size with the laxer smoke
floors: the skewed box workload must still show a >= 2x fragment-prune
ratio and a >= ``MIN_BOX_SPEEDUP_SMOKE`` end-to-end box-read speedup
over row-major, while point reads and ingest stay within the smoke
guardrail.  The full-size floors (``MIN_PRUNE_RATIO`` /
``MIN_BOX_SPEEDUP`` / ``MAX_SIDE_REGRESSION``) are asserted by the
standalone run and ``tools/bench_report.py``.
"""

import importlib.util
from pathlib import Path

_BENCH = Path(__file__).resolve().parents[2] / "benchmarks" / "bench_alto.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_alto", _BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_alto_box_speedup_smoke():
    bench = _load_bench()
    result = bench.bench_alto(
        n_fragments=128, points_per_fragment=300, repeats=2,
        shapes=("3d",),
    )
    bench.assert_alto_ok(
        result,
        min_prune=bench.MIN_PRUNE_RATIO,
        min_speedup=bench.MIN_BOX_SPEEDUP_SMOKE,
        max_side=bench.MAX_SIDE_REGRESSION_SMOKE,
    )
