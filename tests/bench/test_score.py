"""Unit tests for the Table IV scoring construction."""

import pytest

from repro.bench import metric_scores, normalize_cells, overall_scores


def cells(**by_format):
    """One (pattern, ndim) cell for brevity."""
    return {("GSP", 3, fmt): v for fmt, v in by_format.items()}


class TestNormalize:
    def test_divides_by_cell_max(self):
        out = normalize_cells(cells(A=2.0, B=4.0))
        assert out[("GSP", 3, "A")] == pytest.approx(0.5)
        assert out[("GSP", 3, "B")] == pytest.approx(1.0)

    def test_cells_normalized_independently(self):
        data = {
            ("GSP", 2, "A"): 1.0,
            ("GSP", 2, "B"): 10.0,
            ("TSP", 3, "A"): 100.0,
            ("TSP", 3, "B"): 50.0,
        }
        out = normalize_cells(data)
        assert out[("GSP", 2, "A")] == pytest.approx(0.1)
        assert out[("TSP", 3, "A")] == pytest.approx(1.0)

    def test_zero_cell(self):
        out = normalize_cells(cells(A=0.0, B=0.0))
        assert out[("GSP", 3, "A")] == 0.0


class TestMetricScores:
    def test_averages_over_cells(self):
        data = {
            ("GSP", 2, "A"): 1.0, ("GSP", 2, "B"): 2.0,
            ("GSP", 3, "A"): 3.0, ("GSP", 3, "B"): 1.0,
        }
        scores = metric_scores(data)
        assert scores["A"] == pytest.approx((0.5 + 1.0) / 2)
        assert scores["B"] == pytest.approx((1.0 + 1 / 3) / 2)


class TestOverallScores:
    def test_equal_weights_and_ordering(self):
        per_metric = {
            "write_time": cells(A=1.0, B=2.0),
            "file_size": cells(A=1.0, B=2.0),
            "read_time": cells(A=2.0, B=1.0),
        }
        results = overall_scores(per_metric)
        assert [r.format_name for r in results] == ["A", "B"]
        a = results[0]
        assert a.score == pytest.approx((0.5 + 0.5 + 1.0) / 3)
        assert a.per_metric["read_time"] == pytest.approx(1.0)

    def test_worst_everywhere_scores_one(self):
        per_metric = {
            "write_time": cells(A=1.0, B=5.0),
            "file_size": cells(A=1.0, B=5.0),
            "read_time": cells(A=1.0, B=5.0),
        }
        results = overall_scores(per_metric)
        assert results[-1].format_name == "B"
        assert results[-1].score == pytest.approx(1.0)

    def test_missing_metric_raises(self):
        with pytest.raises(KeyError):
            overall_scores({"write_time": cells(A=1.0)})
