"""Tier-1 smoke hook for the WAL ingest microbench (assert-only).

Imports ``benchmarks/bench_wal_ingest.py`` by path and asserts the
append-vs-write ingest speedup at a laxer floor than the standalone
run, so a regression that loses the WAL's amortized commit cost (or
breaks append/pack read equivalence — the bench verifies both stores
answer identically) fails the regular suite, not just the benchmark
run.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

_BENCH = (
    Path(__file__).resolve().parents[2]
    / "benchmarks" / "bench_wal_ingest.py"
)


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_wal_ingest", _BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_wal_ingest_speedup_smoke():
    bench = _load_bench()
    result = bench.bench_wal_ingest(
        n_points=40_000, n_chunks=400, n_queries=500
    )
    bench.assert_speedup_ok(result, bench.MIN_INGEST_SPEEDUP_SMOKE)
    # The append leg alone (durability acknowledged, pack deferred)
    # must beat synchronous writes outright.
    assert result["append_only_speedup"] >= 1.0
