"""Tier-1 smoke hook for the cascade compression microbench.

Imports ``benchmarks/bench_compression_cascade.py`` by path and
asserts the sorted-TSP address-buffer size reduction at the same floor
as the standalone run (bit-width is deterministic — no timing jitter
to absorb), so a regression that loses the cascade's packing (or
breaks cross-codec read identity — the bench compares all three
codecs' reads bit for bit) fails the regular suite.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

_BENCH = (
    Path(__file__).resolve().parents[2]
    / "benchmarks" / "bench_compression_cascade.py"
)


def _load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench_compression_cascade", _BENCH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_compression_cascade_smoke():
    bench = _load_bench()
    result = bench.bench_compression(side=256, n_queries=2_000)
    bench.assert_reduction_ok(result, bench.MIN_SIZE_REDUCTION_SMOKE)
    # The whole-fragment ratio is values-dominated but must still be a
    # net win, and every pattern's cascade cell must beat raw.
    assert result["total_reduction"] > 1.0
    for name in ("TSP", "GSP", "MSP"):
        cascade = result["cells"][f"{name}/cascade"]
        raw = result["cells"][f"{name}/raw"]
        assert cascade["encoded_nbytes"] <= raw["encoded_nbytes"], name
        assert cascade["addr_nbytes"] < raw["addr_nbytes"], name
