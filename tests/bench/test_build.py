"""Tier-1 smoke hook for the build-pipeline microbench (assert-only).

Imports ``benchmarks/bench_build.py`` by path (the benchmarks directory
is not a package) and asserts both pipeline claims at laxer floors than
the standalone run, so a regression that makes ``encode_all`` re-derive
prerequisites per format — or makes merge compaction fall back to a full
decode-rebuild — fails the regular suite, not just the benchmark run.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

_BENCH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_build.py"
)


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_build", _BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_encode_all_speedup_smoke():
    bench = _load_bench()
    result = bench.bench_encode_all(nnz=500_000, repeats=3)
    bench.assert_encode_speedup_ok(result, bench.MIN_ENCODE_SPEEDUP_SMOKE)


def test_merge_compaction_speedup_smoke():
    bench = _load_bench()
    result = bench.bench_merge_compaction(
        nnz=500_000, n_fragments=6, repeats=2
    )
    bench.assert_compact_speedup_ok(
        result, bench.MIN_COMPACT_SPEEDUP_SMOKE
    )
