"""Tier-1 smoke hook for the durability-overhead microbench (assert-only).

Imports ``benchmarks/bench_fault_overhead.py`` by path (the benchmarks
directory is not a package) and runs its assertion at full size, so a
change that makes the atomic-commit/CRC/fault-hook machinery per-point
instead of per-call fails the regular suite, not just the benchmark run.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

_BENCH = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "bench_fault_overhead.py"
)


def _load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench_fault_overhead", _BENCH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_fault_overhead_smoke():
    bench = _load_bench()
    bench.assert_overhead_ok(
        bench.bench_fault_overhead(n_writes=8, points=50_000, repeats=3)
    )
