"""Unit tests for the experiment registry (tiny-scale smoke runs)."""

import pytest

from repro.bench import EXPERIMENTS, ExperimentConfig, run_experiment


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(scale="tiny", query_sample=64, fsync=False)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4",
            "fig2", "fig3", "fig4", "fig5", "claims",
        }

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_metadata(self):
        assert EXPERIMENTS["table3"].paper_ref == "Table III"


class TestReports:
    def test_table2_report(self, config):
        out = run_experiment("table2", config)
        assert "Table II" in out
        for pattern in ("TSP", "GSP", "MSP"):
            assert pattern in out

    def test_table3_report(self, config):
        out = run_experiment("table3", config)
        assert "Build" in out and "Reorg." in out and "Sum" in out
        assert "paper" in out  # side-by-side with the paper's numbers
        assert "0.4484" in out  # the paper's GCSC++ build time

    def test_table4_report(self, config):
        out = run_experiment("table4", config)
        assert "Table IV" in out
        assert "LINEAR" in out

    def test_fig_reports(self, config):
        for fig in ("fig3", "fig4", "fig5"):
            out = run_experiment(fig, config)
            assert "GSP" in out and "CSF" in out

    def test_fig2_report(self, config):
        out = run_experiment("fig2", config)
        assert "csf sharing" in out
        assert "3D-TSP" in out

    def test_sweep_cached_across_experiments(self, config):
        run_experiment("fig3", config)
        assert config.resolved_scale in config._sweep_cache

    def test_table1_report(self):
        cfg = ExperimentConfig(scale="tiny", formats=("COO", "LINEAR", "CSF"))
        out = run_experiment("table1", cfg)
        assert "build k" in out
        assert "CSF space cases" in out
