"""Unit tests for measurement dataclasses and modeled totals."""

import pytest

from repro.bench.runner import ReadMeasurement, WriteMeasurement
from repro.storage import PERLMUTTER_LUSTRE


def make_write(**overrides):
    kwargs = dict(
        format_name="LINEAR",
        nnz=1000,
        build_seconds=0.01,
        reorg_seconds=0.002,
        write_seconds=0.05,
        others_seconds=0.003,
        total_seconds=0.065,
        index_nbytes=8000,
        value_nbytes=8000,
        file_nbytes=16500,
        modeled_pfs_write_seconds=PERLMUTTER_LUSTRE.write_time(16500),
    )
    kwargs.update(overrides)
    return WriteMeasurement(**kwargs)


class TestWriteMeasurement:
    def test_breakdown_keys_match_table3(self):
        m = make_write()
        assert list(m.breakdown) == ["Build", "Reorg.", "Write", "Others",
                                     "Sum"]
        assert m.breakdown["Sum"] == m.total_seconds

    def test_modeled_total_swaps_write_phase(self):
        m = make_write()
        expected = (m.build_seconds + m.reorg_seconds + m.others_seconds
                    + m.modeled_pfs_write_seconds)
        assert m.modeled_total_seconds == pytest.approx(expected)

    def test_modeled_total_reflects_bytes(self):
        small = make_write(file_nbytes=1000,
                           modeled_pfs_write_seconds=
                           PERLMUTTER_LUSTRE.write_time(1000))
        big = make_write(file_nbytes=10_000_000,
                         modeled_pfs_write_seconds=
                         PERLMUTTER_LUSTRE.write_time(10_000_000))
        assert big.modeled_total_seconds > small.modeled_total_seconds


class TestReadMeasurement:
    def test_modeled_total(self):
        m = ReadMeasurement(
            format_name="CSF",
            n_queries=100,
            n_found=40,
            extract_seconds=0.01,
            query_seconds=0.02,
            merge_seconds=0.001,
            total_seconds=0.031,
            fragments_visited=2,
            bytes_read=5000,
            modeled_pfs_read_seconds=PERLMUTTER_LUSTRE.read_time(5000),
        )
        expected = (m.query_seconds + m.merge_seconds
                    + m.modeled_pfs_read_seconds)
        assert m.modeled_total_seconds == pytest.approx(expected)
        assert m.op_counts == {}
