"""Unit tests for report rendering."""

from repro.bench import (
    format_bytes,
    format_number,
    render_comparison,
    render_grouped_series,
    render_table,
)


class TestFormatNumber:
    def test_int_grouping(self):
        assert format_number(1234567) == "1,234,567"

    def test_float_fixed(self):
        assert format_number(0.1234567) == "0.1235"

    def test_float_small_scientific(self):
        assert "e" in format_number(1.5e-9)

    def test_zero(self):
        assert format_number(0.0) == "0"

    def test_bool_passthrough(self):
        assert format_number(True) == "True"

    def test_string_passthrough(self):
        assert format_number("CSF") == "CSF"


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2048) == "2.00 KiB"

    def test_mib(self):
        assert format_bytes(5 * 1024 * 1024) == "5.00 MiB"

    def test_gib(self):
        assert format_bytes(3 * 1024**3) == "3.00 GiB"


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(
            ["name", "value"], [["COO", 1.5], ["LINEAR", 20]],
            title="demo",
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # All rows same width.
        assert len({len(l) for l in lines[1:]}) == 1

    def test_custom_formatter(self):
        out = render_table(["b"], [[2048]], formatters={0: format_bytes})
        assert "2.00 KiB" in out


class TestRenderSeries:
    def test_bars_scale_within_group(self):
        out = render_grouped_series(
            "fig", {"g1": {"A": 1.0, "B": 2.0}}, unit="s", bar_width=10
        )
        lines = [l for l in out.splitlines() if "#" in l]
        bar_a = lines[0].count("#")
        bar_b = lines[1].count("#")
        assert bar_b == 10
        assert bar_a == 5

    def test_zero_value_has_no_bar(self):
        out = render_grouped_series("fig", {"g": {"A": 0.0, "B": 1.0}})
        line_a = [l for l in out.splitlines() if "A" in l][0]
        assert "#" not in line_a


class TestComparison:
    def test_both_blocks_present(self):
        out = render_comparison(
            "T", ["x"], [[1]], [[2]]
        )
        assert "paper:" in out and "measured:" in out
