"""Unit tests for the evaluation sweep."""

import pytest

from repro.bench import run_sweep


@pytest.fixture(scope="module")
def sweep():
    # A small but real sweep: 2 patterns x 2 dims x 3 formats at tiny scale.
    return run_sweep(
        scale="tiny",
        formats=("COO", "LINEAR", "CSF"),
        patterns=("GSP", "MSP"),
        dims=(2, 3),
        query_sample=64,
        fsync=False,
    )


class TestSweep:
    def test_grid_complete(self, sweep):
        assert len(sweep.records) == 2 * 2 * 3

    def test_cell_lookup(self, sweep):
        rec = sweep.cell("GSP", 3, "CSF")
        assert rec.format_name == "CSF"
        assert rec.write.nnz > 0

    def test_cell_missing(self, sweep):
        with pytest.raises(KeyError):
            sweep.cell("TSP", 3, "CSF")

    def test_metric_cells(self, sweep):
        cells = sweep.metric_cells("file_size")
        assert len(cells) == 12
        assert all(v > 0 for v in cells.values())
        with pytest.raises(KeyError):
            sweep.metric_cells("latency")

    def test_modeled_metrics_available(self, sweep):
        assert len(sweep.metric_cells("write_time_modeled")) == 12
        assert len(sweep.metric_cells("read_time_modeled")) == 12

    def test_scores_cover_formats(self, sweep):
        scores = sweep.scores()
        assert {s.format_name for s in scores} == {"COO", "LINEAR", "CSF"}
        assert all(0 <= s.score <= 1 for s in scores)

    def test_coo_file_size_is_worst(self, sweep):
        """COO's O(n*d) index dominates every cell's file size."""
        cells = sweep.metric_cells("file_size")
        for pattern in ("GSP", "MSP"):
            for ndim in (2, 3):
                coo = cells[(pattern, ndim, "COO")]
                lin = cells[(pattern, ndim, "LINEAR")]
                assert coo > lin
