"""Tier-1 smoke hook for the sharded-store microbench (assert-only).

Imports ``benchmarks/bench_sharded.py`` by path and asserts the
hot-region read speedup at a laxer floor than the standalone run, so a
regression that breaks shard-level pruning (or the routed write layout
that enables it) fails the regular suite, not just the benchmark run.
The parallel-compaction floor arms itself only on multi-core hosts.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

_BENCH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_sharded.py"
)


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_sharded", _BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_sharded_read_speedup_smoke():
    bench = _load_bench()
    result = bench.bench_sharded_reads(
        n_parts=6, points=8_000, n_queries=1_000, repeats=3,
        shard_counts=(16,),
    )
    bench.assert_read_speedup_ok(result, bench.MIN_READ_SPEEDUP_SMOKE)
    # Box reads must at least not regress behind the single store.
    assert result["box_speedup"] >= 1.0


def test_parallel_compaction_smoke():
    bench = _load_bench()
    result = bench.bench_parallel_compaction(
        n_shards=4, n_parts=6, points=8_000
    )
    # Correctness always; the speedup floor only with real cores.
    bench.assert_compact_speedup_ok(result, bench.MIN_COMPACT_SPEEDUP)
    assert result["compact_serial"] > 0 and result["compact_parallel"] > 0
