"""Tier-1 smoke hook for the format-migration microbench (assert-only).

Imports ``benchmarks/bench_migration.py`` by path and asserts the
direct-kernel speedups at a laxer floor than the standalone run, plus
the adaptive workload-shift loop (ledger → policy → migration during
``compact()``).  A regression that loses a hot kernel's advantage, its
byte-identity (verified inside the bench before timing), or the
adaptive sweep fails the regular suite, not just the benchmark run.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

_BENCH = (
    Path(__file__).resolve().parents[2]
    / "benchmarks" / "bench_migration.py"
)


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_migration", _BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_direct_kernel_speedup_smoke():
    bench = _load_bench()
    result = bench.bench_direct_kernels(
        n_points=150_000, shape=(256, 256, 256), reps=5
    )
    bench.assert_speedup_ok(result, bench.MIN_SPEEDUP_SMOKE)
    # Every registered pair was exercised and verified byte-identical.
    assert len(result["pairs"]) == 16


def test_adaptive_workload_shift_smoke():
    bench = _load_bench()
    result = bench.bench_adaptive_shift(
        n_points=30_000, shape=(64, 64, 64), n_read_bursts=8
    )
    bench.assert_adaptive_ok(result)
    assert "LINEAR" in result["formats_before"]
