"""Unit tests for the benchmark runner (Algorithm 3 instrumented)."""

import numpy as np
import pytest

from repro.bench import (
    make_read_queries,
    paper_read_region,
    read_benchmark,
    run_write_read,
    write_benchmark,
)
from repro.storage import FragmentStore


class TestWriteBenchmark:
    def test_measures_phases_and_bytes(self, tensor_3d):
        m = write_benchmark(tensor_3d, "GCSR++", fsync=False)
        assert m.nnz == tensor_3d.nnz
        assert m.total_seconds > 0
        assert m.file_nbytes > m.index_nbytes
        assert m.breakdown["Sum"] == m.total_seconds
        assert m.modeled_pfs_write_seconds > 0

    def test_coo_build_phase_is_negligible(self, tensor_3d):
        m = write_benchmark(tensor_3d, "COO", fsync=False)
        # COO's O(1) build is far below its serialization cost.
        assert m.build_seconds < max(m.write_seconds, 1e-4)

    def test_explicit_directory_kept(self, tmp_path, tensor_3d):
        write_benchmark(tensor_3d, "LINEAR", tmp_path / "d", fsync=False)
        assert (tmp_path / "d" / "frag-000000.bin").exists()

    def test_temporary_directory_cleaned(self, tensor_3d, tmp_path,
                                         monkeypatch):
        import tempfile

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        write_benchmark(tensor_3d, "LINEAR", fsync=False)
        assert not list(tmp_path.glob("repro-bench-*"))


class TestQueries:
    def test_paper_region(self):
        box = paper_read_region((512, 512, 512))
        assert box.origin == (256, 256, 256)
        assert box.size == (51, 51, 51)

    def test_sampled_queries_inside_region(self):
        q = make_read_queries((512, 512, 512), sample=100)
        box = paper_read_region((512, 512, 512))
        assert q.shape == (100, 3)
        assert box.contains_points(q).all()

    def test_full_region_grid(self):
        q = make_read_queries((40, 40), sample=None)
        assert q.shape == (16, 2)  # (m/10)^2 = 4x4

    def test_sampling_deterministic(self):
        a = make_read_queries((100, 100), sample=20, rng=5)
        b = make_read_queries((100, 100), sample=20, rng=5)
        assert np.array_equal(a, b)


class TestReadBenchmark:
    @pytest.fixture
    def store(self, tmp_path, tensor_3d):
        s = FragmentStore(tmp_path / "ds", tensor_3d.shape, "CSF")
        s.write_tensor(tensor_3d)
        return s

    def test_measures_and_finds(self, store, tensor_3d):
        m = read_benchmark(store, tensor_3d.coords, faithful=True)
        assert m.n_found == tensor_3d.nnz
        assert m.fragments_visited == 1
        assert m.total_seconds > 0
        assert m.bytes_read > 0
        assert m.op_counts["comparisons"] > 0

    def test_production_path(self, store, tensor_3d):
        m = read_benchmark(store, tensor_3d.coords, faithful=False)
        assert m.n_found == tensor_3d.nnz
        assert m.op_counts["comparisons"] == 0  # not charged in fast path

    def test_empty_query(self, store):
        m = read_benchmark(store, np.empty((0, 3), dtype=np.uint64))
        assert m.n_found == 0
        assert m.fragments_visited == 0


class TestWriteRead:
    def test_joint_run(self, tensor_3d):
        wr = run_write_read(tensor_3d, "LINEAR", query_sample=64, fsync=False)
        assert wr.write.format_name == "LINEAR"
        # The region (m/10 per dim) of a 20x30x40 tensor has only 24 cells,
        # so the sample clamps to the full region.
        region_cells = paper_read_region(tensor_3d.shape).n_cells
        assert wr.read.n_queries == min(64, region_cells)
        assert wr.read.n_found <= wr.read.n_queries
