"""Unit tests for phase timing."""

import time

import pytest

from repro.bench import PhaseTimer, time_call


class TestPhaseTimer:
    def test_phases_accumulate(self):
        t = PhaseTimer()
        with t.phase("a"):
            time.sleep(0.002)
        with t.phase("a"):
            time.sleep(0.002)
        with t.phase("b"):
            pass
        assert t.phases["a"] >= 0.004
        assert "b" in t.phases

    def test_others_is_residual(self):
        t = PhaseTimer()
        with t.total():
            with t.phase("named"):
                time.sleep(0.002)
            time.sleep(0.005)
        assert t.others_seconds >= 0.004
        assert t.total_seconds >= t.named_seconds

    def test_breakdown_keys(self):
        t = PhaseTimer()
        with t.total():
            with t.phase("build"):
                pass
        b = t.breakdown()
        assert set(b) == {"build", "others", "sum"}
        assert b["sum"] >= b["build"]

    def test_add_external(self):
        t = PhaseTimer()
        t.add("write", 0.5)
        t.add("write", 0.25)
        assert t.phases["write"] == pytest.approx(0.75)

    def test_exception_still_records(self):
        t = PhaseTimer()
        with pytest.raises(RuntimeError):
            with t.phase("x"):
                raise RuntimeError
        assert "x" in t.phases


class TestTimeCall:
    def test_returns_result(self):
        secs, result = time_call(lambda a, b: a + b, 2, b=3)
        assert result == 5
        assert secs >= 0
