"""Tier-1 smoke hook for the query-planner microbench (assert-only).

Imports ``benchmarks/bench_planner.py`` by path (the benchmarks directory
is not a package) and asserts the plan-on vs plan-off scattered-point
speedup at a laxer floor than the standalone run, so a regression that
makes the planner stop pruning (or visit every fragment again) fails the
regular suite, not just the benchmark run.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

_BENCH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_planner.py"
)


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_planner", _BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_planner_speedup_smoke():
    bench = _load_bench()
    result = bench.bench_planner(n_fragments=256, points=128, repeats=3)
    bench.assert_speedup_ok(result, bench.MIN_SPEEDUP_SMOKE)
    # The speedup must come from pruning, not noise: the scattered batch
    # touches QUERY_BANDS bands, so plan-on visits far fewer fragments.
    assert result["visited_off"] == 256
    assert result["visited_on"] <= 4 * bench.QUERY_BANDS
