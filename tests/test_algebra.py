"""Unit + property tests for the sparse tensor algebra kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import inner, mttkrp, mttkrp_csf, mttkrp_encoded, ttv
from repro.core import ShapeError, SparseTensor
from repro.formats import CSFFormat, get_format

from .property.test_roundtrip import sparse_tensors

RANK = 3


def random_factors(shape, rng, rank=RANK):
    return [rng.standard_normal((m, rank)) for m in shape]


def dense_mttkrp(dense, factors, mode):
    """Brute-force reference via explicit loops (small tensors only)."""
    shape = dense.shape
    rank = factors[0].shape[1]
    out = np.zeros((shape[mode], rank))
    for idx in np.ndindex(*shape):
        v = dense[idx]
        if v == 0:
            continue
        for r in range(rank):
            p = v
            for k in range(len(shape)):
                if k != mode:
                    p *= factors[k][idx[k], r]
            out[idx[mode], r] += p
    return out


class TestMTTKRP:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_dense_reference(self, rng, mode):
        shape = (5, 6, 7)
        t = SparseTensor.from_dense(
            rng.standard_normal(shape) * (rng.random(shape) < 0.2)
        )
        factors = random_factors(shape, rng)
        got = mttkrp(t, factors, mode)
        want = dense_mttkrp(t.to_dense(), factors, mode)
        assert np.allclose(got, want)

    def test_empty_tensor(self, rng):
        t = SparseTensor.empty((4, 4))
        factors = random_factors(t.shape, rng)
        assert np.array_equal(mttkrp(t, factors, 0), np.zeros((4, RANK)))

    def test_validation(self, rng, tensor_3d):
        factors = random_factors(tensor_3d.shape, rng)
        with pytest.raises(ShapeError):
            mttkrp(tensor_3d, factors[:2], 0)
        with pytest.raises(ShapeError):
            mttkrp(tensor_3d, factors, 5)
        bad = [f.copy() for f in factors]
        bad[1] = bad[1][:, :1]
        with pytest.raises(ShapeError, match="ranks"):
            mttkrp(tensor_3d, bad, 0)


class TestMTTKRPCSF:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    @pytest.mark.parametrize("dim_order", ["ascending", "natural",
                                           "descending"])
    def test_matches_coordinate_form(self, rng, mode, dim_order):
        shape = (9, 4, 13)
        coords = np.unique(
            np.column_stack(
                [rng.integers(0, m, 120, dtype=np.uint64) for m in shape]
            ),
            axis=0,
        )
        t = SparseTensor(shape, coords, rng.standard_normal(coords.shape[0]))
        factors = random_factors(shape, rng)
        fmt = CSFFormat(dim_order=dim_order)
        enc = fmt.encode(t)
        got = mttkrp_csf(enc.payload, enc.meta, t.shape, enc.values,
                         factors, mode)
        want = mttkrp(t, factors, mode)
        assert np.allclose(got, want)

    @settings(max_examples=25, deadline=None)
    @given(sparse_tensors(max_dim=4, max_side=10, max_points=40),
           st.integers(0, 3))
    def test_property_agreement(self, tensor, mode_draw):
        mode = mode_draw % tensor.ndim
        rng = np.random.default_rng(0)
        factors = random_factors(tensor.shape, rng)
        enc = CSFFormat().encode(tensor)
        got = mttkrp_csf(enc.payload, enc.meta, tensor.shape, enc.values,
                         factors, mode)
        want = mttkrp(tensor, factors, mode)
        assert np.allclose(got, want)

    def test_dispatch(self, rng, tensor_3d):
        factors = random_factors(tensor_3d.shape, rng)
        want = mttkrp(tensor_3d, factors, 1)
        for name in ("CSF", "LINEAR", "GCSR++"):
            enc = get_format(name).encode(tensor_3d)
            assert np.allclose(mttkrp_encoded(enc, factors, 1), want), name


class TestTTV:
    def test_matches_dense(self, rng):
        shape = (5, 6, 7)
        t = SparseTensor.from_dense(
            rng.standard_normal(shape) * (rng.random(shape) < 0.3)
        )
        v = rng.standard_normal(6)
        got = ttv(t, v, 1)
        want = np.einsum("ijk,j->ik", t.to_dense(), v)
        assert np.allclose(got.to_dense(), want)
        assert got.shape == (5, 7)

    def test_collisions_summed(self):
        t = SparseTensor.from_points(
            (2, 3, 2), [(0, 0, 1), (0, 2, 1)], [2.0, 5.0]
        )
        got = ttv(t, np.array([1.0, 1.0, 1.0]), 1)
        # Both points collapse onto (0, 1).
        assert got.nnz == 1
        assert got.to_dense()[0, 1] == 7.0

    def test_validation(self, tensor_3d, rng):
        with pytest.raises(ShapeError):
            ttv(tensor_3d, np.ones(5), 0)  # wrong length
        with pytest.raises(ShapeError):
            ttv(tensor_3d, np.ones(tensor_3d.shape[0]), 7)

    def test_empty(self):
        t = SparseTensor.empty((3, 4))
        out = ttv(t, np.ones(4), 1)
        assert out.shape == (3,)
        assert out.nnz == 0

    def test_chain_to_scalar_shapes(self, rng):
        shape = (4, 5, 6)
        t = SparseTensor.from_dense(
            rng.standard_normal(shape) * (rng.random(shape) < 0.3)
        )
        step1 = ttv(t, rng.standard_normal(6), 2)
        step2 = ttv(step1, rng.standard_normal(5), 1)
        assert step2.shape == (4,)


class TestInner:
    def test_matches_dense(self, rng):
        shape = (8, 9)
        a = SparseTensor.from_dense(
            rng.standard_normal(shape) * (rng.random(shape) < 0.3)
        )
        b = SparseTensor.from_dense(
            rng.standard_normal(shape) * (rng.random(shape) < 0.3)
        )
        assert inner(a, b) == pytest.approx(
            float((a.to_dense() * b.to_dense()).sum())
        )

    def test_self_inner_is_norm(self, tensor_3d):
        assert inner(tensor_3d, tensor_3d) == pytest.approx(
            float((tensor_3d.values**2).sum())
        )

    def test_disjoint_is_zero(self):
        a = SparseTensor.from_points((4, 4), [(0, 0)], [3.0])
        b = SparseTensor.from_points((4, 4), [(1, 1)], [5.0])
        assert inner(a, b) == 0.0

    def test_shape_mismatch(self, tensor_2d, tensor_3d):
        with pytest.raises(ShapeError):
            inner(tensor_2d, tensor_3d)
