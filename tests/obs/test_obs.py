"""Observability layer: metrics primitives, spans, state, thread safety."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.core.costmodel import NULL_COUNTER


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test runs against a fresh, enabled global registry."""
    was_enabled = obs.is_enabled()
    obs.enable()
    obs.reset()
    yield
    obs.reset()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()


class TestMetrics:
    def test_counter_accumulates(self):
        reg = obs.get_registry()
        c = reg.counter("x.bytes", format="COO")
        c.inc()
        c.inc(41)
        assert c.value == 42
        # Same name+labels -> same instance; different labels -> distinct.
        assert reg.counter("x.bytes", format="COO") is c
        assert reg.counter("x.bytes", format="CSF") is not c

    def test_gauge_last_write_wins(self):
        g = obs.get_registry().gauge("util")
        g.set(0.25)
        g.set(0.75)
        assert g.value == 0.75

    def test_histogram_buckets_and_stats(self):
        h = obs.get_registry().histogram("lat", buckets=(0.001, 0.1, 1.0))
        for v in (0.0005, 0.05, 0.5, 5.0):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 4
        assert d["bucket_counts"] == [1, 1, 1, 1]
        assert d["min"] == 0.0005 and d["max"] == 5.0
        assert h.mean == pytest.approx(sum((0.0005, 0.05, 0.5, 5.0)) / 4)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            obs.get_registry().histogram("bad", buckets=(1.0, 0.1))

    def test_snapshot_reset_json(self):
        obs.counter_add("a.count", 3)
        obs.gauge_set("a.gauge", 1.5)
        obs.observe("a.lat", 0.01)
        snap = obs.snapshot()
        assert snap["counters"][0]["value"] == 3
        assert snap["gauges"][0]["value"] == 1.5
        assert snap["histograms"][0]["count"] == 1
        # JSON export round-trips.
        assert json.loads(obs.to_json()) == snap
        obs.reset()
        assert obs.snapshot() == {
            "counters": [], "gauges": [], "histograms": [],
        }

    def test_render_table_lists_metrics(self):
        obs.counter_add("bytes.written", 1024, format="LINEAR")
        obs.observe("read.seconds", 0.002, format="LINEAR")
        table = obs.render_table(title="t")
        assert "bytes.written" in table
        assert "format=LINEAR" in table
        assert "1,024" in table


class TestSpans:
    def test_span_records_everything(self):
        with obs.span("op", format="CSF") as sp:
            sp.add_bytes_in(10)
            sp.add_bytes_out(20)
            sp.add_nnz(7)
            sp.ops.charge_comparisons(100)
        reg = obs.get_registry()
        assert reg.counter("op.calls", format="CSF").value == 1
        assert reg.counter("op.bytes_in", format="CSF").value == 10
        assert reg.counter("op.bytes_out", format="CSF").value == 20
        assert reg.counter("op.nnz", format="CSF").value == 7
        assert reg.counter("op.ops.comparisons", format="CSF").value == 100
        h = reg.histogram("op.seconds", format="CSF")
        assert h.count == 1 and h.sum > 0

    def test_span_without_annotations_skips_optional_counters(self):
        with obs.span("bare"):
            pass
        snap = obs.snapshot()
        names = {c["name"] for c in snap["counters"]}
        assert names == {"bare.calls"}

    def test_disabled_span_is_null_and_records_nothing(self):
        obs.disable()
        sp = obs.span("off", format="COO")
        assert sp is obs.NULL_SPAN
        with sp as s:
            s.add_nnz(5)
            assert s.ops is NULL_COUNTER
        obs.enable()
        assert obs.snapshot() == {
            "counters": [], "gauges": [], "histograms": [],
        }

    def test_disabled_helpers_noop(self):
        obs.disable()
        obs.counter_add("c", 1)
        obs.gauge_set("g", 1.0)
        obs.observe("h", 1.0)
        obs.enable()
        assert obs.snapshot()["counters"] == []

    def test_env_parsing(self):
        assert obs.enabled_from_env({}) is True
        assert obs.enabled_from_env({"REPRO_OBS": "1"}) is True
        for off in ("0", "false", "OFF"):
            assert obs.enabled_from_env({"REPRO_OBS": off}) is False


class TestThreadSafety:
    def test_concurrent_counter_and_histogram(self):
        reg = obs.get_registry()
        n_threads, n_iter = 8, 5000

        def work(i: int) -> None:
            for _ in range(n_iter):
                reg.counter("t.count").inc()
                reg.histogram("t.lat").observe(1e-4)
                # get-or-create races on a per-thread label too
                reg.counter("t.mine", thread=i).inc()

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("t.count").value == n_threads * n_iter
        assert reg.histogram("t.lat").count == n_threads * n_iter
        for i in range(n_threads):
            assert reg.counter("t.mine", thread=i).value == n_iter

    def test_write_many_thread_executor_records_worker_metrics(self, tmp_path):
        from repro import FragmentStore

        rng = np.random.default_rng(7)
        shape = (64, 64)
        parts = []
        for _ in range(8):
            coords = np.column_stack([
                rng.integers(0, 64, size=200, dtype=np.uint64)
                for _ in range(2)
            ])
            parts.append((coords, rng.random(200)))
        store = FragmentStore(tmp_path / "s", shape, "LINEAR")
        infos = store.write_many(parts, max_workers=4, executor="thread")
        assert len(infos) == 8
        reg = obs.get_registry()
        # Worker threads recorded into the shared registry.
        assert reg.counter("parallel.pack.calls", format="LINEAR").value == 8
        assert reg.counter("parallel.parts").value == 8
        assert reg.gauge("parallel.workers").value == 4
        assert 0 < reg.gauge("parallel.utilization").value <= 1.5
        assert reg.counter("fragment.bytes_written", format="LINEAR").value \
            == sum(i.nbytes for i in infos)
        # The fragments are identical to what sequential writes produce.
        out = store.read_points(parts[0][0])
        assert out.found.all()

    def test_write_many_rejects_unknown_executor(self, tmp_path):
        from repro import FragmentStore

        store = FragmentStore(tmp_path / "s", (8, 8), "COO")
        parts = [
            (np.array([[i, i]], dtype=np.uint64), np.array([1.0]))
            for i in range(4)
        ]
        with pytest.raises(ValueError, match="executor"):
            store.write_many(parts, max_workers=2, executor="fiber")


class TestInstrumentation:
    """End-to-end: the production paths feed the registry."""

    def test_store_roundtrip_populates_metrics(self, tmp_path):
        from repro import Box, FragmentStore

        rng = np.random.default_rng(3)
        store = FragmentStore(tmp_path / "s", (64, 64, 64), "LINEAR")
        low = rng.integers(0, 32, size=(500, 3)).astype(np.uint64)
        high = rng.integers(32, 64, size=(500, 3)).astype(np.uint64)
        store.write(low, rng.random(500))
        store.write(high, rng.random(500))
        store.read_points(low[:100])
        store.read_box(Box((0, 0, 0), (16, 16, 16)))
        reg = obs.get_registry()
        assert reg.counter("fragment.bytes_written", format="LINEAR").value > 0
        assert reg.counter("store.fragments_pruned").value >= 2
        assert reg.counter("store.fragments_visited").value >= 2
        assert reg.histogram("format.read.seconds", format="LINEAR").count >= 1
        assert reg.gauge("fragment.compression_ratio").value > 0

    def test_faithful_read_ops_reach_registry(self, tmp_path):
        from repro import FragmentStore

        store = FragmentStore(tmp_path / "s", (16, 16), "COO")
        coords = np.array([[1, 2], [3, 4], [5, 6]], dtype=np.uint64)
        store.write(coords, np.ones(3))
        store.read_points(coords, faithful=True)
        reg = obs.get_registry()
        ops = reg.counter(
            "store.read_points.ops.comparisons", format="COO"
        ).value
        assert ops > 0  # Table-I op accounting shares the span report path

    def test_adaptive_decisions_counted(self, tmp_path):
        from repro import AdaptiveStore

        rng = np.random.default_rng(5)
        store = AdaptiveStore(tmp_path / "a", (32, 32))
        coords = np.column_stack([
            rng.integers(0, 32, size=300, dtype=np.uint64) for _ in range(2)
        ])
        store.write(coords, rng.random(300))
        snap = obs.snapshot()
        decisions = [
            c for c in snap["counters"] if c["name"] == "adaptive.decisions"
        ]
        assert sum(c["value"] for c in decisions) == 1
        assert decisions[0]["labels"]["format"] == store.choices[0]
