"""Smoke tests: the example scripts must run cleanly end to end.

Only the fast examples run here (the streaming/LCLS/decomposition ones take
tens of seconds and are exercised by their underlying-feature tests).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST = [
    "quickstart.py",
    "paper_figure1.py",
    "format_advisor.py",
    "pattern_gallery.py",
]


@pytest.mark.parametrize("script", FAST)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_shows_all_formats(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    for fmt in ("COO", "LINEAR", "GCSR++", "GCSC++", "CSF"):
        assert fmt in out


def test_figure1_matches_paper_values(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["paper_figure1.py"])
    runpy.run_path(str(EXAMPLES / "paper_figure1.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "nfibs: [2, 3, 5]" in out
    assert "25" in out and "26" in out  # the LINEAR addresses


def test_all_examples_exist_and_are_documented():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 9
    for script in scripts:
        head = script.read_text().split("\n", 5)
        assert head[0].startswith("#!"), script.name
        assert '"""' in head[1], f"{script.name} lacks a docstring"
