"""Property-based tests for the fragment codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import FragmentError
from repro.storage import pack_fragment, unpack_fragment

_DTYPES = [np.uint8, np.uint16, np.uint32, np.uint64, np.int64, np.float64]


@st.composite
def fragments(draw):
    n_buffers = draw(st.integers(min_value=0, max_value=4))
    buffers = {}
    for i in range(n_buffers):
        dtype = draw(st.sampled_from(_DTYPES))
        length = draw(st.integers(min_value=0, max_value=30))
        if np.issubdtype(dtype, np.floating):
            data = np.linspace(0, 1, length).astype(dtype)
        else:
            data = (np.arange(length) % 250).astype(dtype)
        if draw(st.booleans()) and length % 2 == 0 and length > 0:
            data = data.reshape(2, length // 2)
        buffers[f"buf_{i}"] = data
    n_values = draw(st.integers(min_value=0, max_value=20))
    values = np.arange(n_values, dtype=np.float64) * 0.5
    meta = {"k": draw(st.integers(min_value=-5, max_value=5))}
    return buffers, values, meta


class TestCodecProperties:
    @settings(max_examples=60, deadline=None)
    @given(fragments())
    def test_round_trip_identity(self, frag):
        buffers, values, meta = frag
        blob = pack_fragment("COO", (9, 9), len(values), meta, buffers, values)
        payload = unpack_fragment(blob)
        assert payload.meta == meta
        assert list(payload.buffers) == list(buffers)
        for name, arr in buffers.items():
            out = payload.buffers[name]
            assert out.dtype == arr.dtype, name
            assert out.shape == arr.shape, name
            assert np.array_equal(out, arr), name
        assert np.array_equal(payload.values, values)

    @settings(max_examples=30, deadline=None)
    @given(fragments(), st.data())
    def test_any_single_bit_flip_detected(self, frag, data):
        buffers, values, meta = frag
        blob = bytearray(
            pack_fragment("COO", (9, 9), len(values), meta, buffers, values)
        )
        pos = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        blob[pos] ^= 1 << bit
        with pytest.raises(FragmentError):
            unpack_fragment(bytes(blob))

    @settings(max_examples=30, deadline=None)
    @given(fragments(), st.data())
    def test_any_truncation_detected(self, frag, data):
        buffers, values, meta = frag
        blob = pack_fragment("COO", (9, 9), len(values), meta, buffers, values)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        with pytest.raises(FragmentError):
            unpack_fragment(blob[:cut])
