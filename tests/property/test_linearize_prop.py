"""Property-based tests for linearization bijectivity and folding."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import delinearize, fold_coords_2d, linearize


@st.composite
def shapes_and_addresses(draw):
    d = draw(st.integers(min_value=1, max_value=5))
    shape = tuple(
        draw(st.integers(min_value=1, max_value=50)) for _ in range(d)
    )
    total = int(np.prod(shape))
    n = draw(st.integers(min_value=0, max_value=80))
    addresses = draw(
        st.lists(st.integers(min_value=0, max_value=total - 1),
                 min_size=n, max_size=n)
    )
    return shape, np.array(addresses, dtype=np.uint64)


class TestBijection:
    @settings(max_examples=80, deadline=None)
    @given(shapes_and_addresses())
    def test_row_major_round_trip(self, case):
        shape, addresses = case
        coords = delinearize(addresses, shape)
        assert np.array_equal(linearize(coords, shape), addresses)

    @settings(max_examples=80, deadline=None)
    @given(shapes_and_addresses())
    def test_column_major_round_trip(self, case):
        shape, addresses = case
        coords = delinearize(addresses, shape, order="col")
        assert np.array_equal(
            linearize(coords, shape, order="col"), addresses
        )

    @settings(max_examples=60, deadline=None)
    @given(shapes_and_addresses())
    def test_linearize_is_injective(self, case):
        shape, addresses = case
        unique_addresses = np.unique(addresses)
        coords = delinearize(unique_addresses, shape)
        back = linearize(coords, shape)
        assert np.unique(back).shape == unique_addresses.shape

    @settings(max_examples=60, deadline=None)
    @given(shapes_and_addresses())
    def test_row_major_order_matches_lexicographic(self, case):
        shape, addresses = case
        coords = delinearize(np.sort(addresses), shape)
        # Sorted addresses <=> lexicographically sorted coordinates.
        for i in range(1, coords.shape[0]):
            assert tuple(coords[i - 1]) <= tuple(coords[i])


class TestFolding:
    @settings(max_examples=80, deadline=None)
    @given(shapes_and_addresses())
    def test_fold_preserves_address_rows(self, case):
        shape, addresses = case
        coords = delinearize(addresses, shape)
        folded, shape2d = fold_coords_2d(coords, shape, min_dim_as="rows")
        assert shape2d[0] == min(shape)
        assert int(np.prod(shape2d)) == int(np.prod(shape))
        assert np.array_equal(linearize(folded, shape2d), addresses)

    @settings(max_examples=80, deadline=None)
    @given(shapes_and_addresses())
    def test_fold_preserves_address_cols(self, case):
        shape, addresses = case
        coords = delinearize(addresses, shape)
        folded, shape2d = fold_coords_2d(coords, shape, min_dim_as="cols")
        assert shape2d[1] == min(shape)
        assert np.array_equal(linearize(folded, shape2d), addresses)
