"""Property-based structural invariants for CSR and CSF payloads."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import CSFFormat, GCSCFormat, GCSRFormat, csr_pack

from .test_roundtrip import sparse_tensors


class TestCSRInvariants:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_packed_matrix_validates(self, data):
        nrows = data.draw(st.integers(min_value=1, max_value=12))
        ncols = data.draw(st.integers(min_value=1, max_value=30))
        n = data.draw(st.integers(min_value=0, max_value=60))
        rows = np.array(
            data.draw(st.lists(st.integers(0, nrows - 1), min_size=n, max_size=n)),
            dtype=np.uint64,
        )
        cols = np.array(
            data.draw(st.lists(st.integers(0, ncols - 1), min_size=n, max_size=n)),
            dtype=np.uint64,
        )
        matrix, perm = csr_pack(rows, cols, nrows)
        matrix.validate()
        # Segment contents are exactly the input points of that row.
        for r in range(nrows):
            want = sorted(cols[rows == r].tolist())
            got = sorted(matrix.segment(r).tolist())
            assert got == want

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_perm_restores_input(self, data):
        nrows = data.draw(st.integers(min_value=1, max_value=8))
        n = data.draw(st.integers(min_value=0, max_value=40))
        rows = np.array(
            data.draw(st.lists(st.integers(0, nrows - 1), min_size=n, max_size=n)),
            dtype=np.uint64,
        )
        cols = np.arange(n, dtype=np.uint64)  # tag each point uniquely
        matrix, perm = csr_pack(rows, cols, nrows)
        # indices[i] == cols[perm[i]] — the map aligns values with packing.
        assert np.array_equal(matrix.indices, cols[perm])


class TestGCSRInvariants:
    @settings(max_examples=40, deadline=None)
    @given(sparse_tensors(max_dim=4, max_side=16, max_points=50))
    def test_row_ptr_counts_points(self, tensor):
        for fmt_cls in (GCSRFormat, GCSCFormat):
            fmt = fmt_cls()
            result = fmt.build(tensor.coords, tensor.shape)
            ptr = result.payload[fmt._ptr_name].astype(np.int64)
            assert ptr[0] == 0
            assert ptr[-1] == tensor.nnz
            assert np.all(np.diff(ptr) >= 0)
            assert result.payload[fmt._ind_name].shape[0] == tensor.nnz


class TestCSFInvariants:
    @settings(max_examples=40, deadline=None)
    @given(sparse_tensors(max_dim=4, max_side=16, max_points=50))
    def test_tree_validates(self, tensor):
        fmt = CSFFormat()
        result = fmt.build(tensor.coords, tensor.shape)
        if tensor.nnz:
            fmt.validate_payload(result.payload, tensor.ndim)

    @settings(max_examples=40, deadline=None)
    @given(sparse_tensors(max_dim=4, max_side=16, max_points=50))
    def test_level_counts_telescoping(self, tensor):
        """nfibs is non-decreasing, bounded by n, leaves == n, and the space
        always lies within the paper's best/worst bounds."""
        fmt = CSFFormat()
        result = fmt.build(tensor.coords, tensor.shape)
        nfibs = result.payload["nfibs"].astype(np.int64)
        n, d = tensor.nnz, tensor.ndim
        if n == 0:
            assert np.all(nfibs == 0)
            return
        assert nfibs[-1] == n
        assert np.all(np.diff(nfibs) >= 0)
        assert np.all(nfibs >= 1)
        total_fids = int(nfibs.sum())
        assert n + (d - 1) <= total_fids <= n * d

    @settings(max_examples=40, deadline=None)
    @given(sparse_tensors(max_dim=4, max_side=16, max_points=50))
    def test_leaf_order_matches_perm(self, tensor):
        """Leaf fids are the (dim-permuted) last coordinate in sorted
        order, aligned with the map vector."""
        fmt = CSFFormat()
        result = fmt.build(tensor.coords, tensor.shape)
        if tensor.nnz == 0:
            return
        dim_perm = result.meta["dim_perm"]
        last_dim = dim_perm[-1]
        expected = tensor.coords[result.perm, last_dim]
        assert np.array_equal(result.payload[f"fids_{tensor.ndim - 1}"],
                              expected)
