"""Property-based tests for the fragment store: arbitrary fragmentations of
arbitrary tensors must read back exactly, under every organization."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Box
from repro.storage import FragmentStore

from .test_roundtrip import sparse_tensors

FORMATS = ("COO", "LINEAR", "GCSR++", "CSF")


@st.composite
def fragmented_tensors(draw):
    tensor = draw(sparse_tensors(max_dim=3, max_side=16, max_points=40))
    n_frags = draw(st.integers(min_value=1, max_value=4))
    # Assign each point to a fragment.
    assignment = draw(
        st.lists(
            st.integers(0, n_frags - 1),
            min_size=tensor.nnz, max_size=tensor.nnz,
        )
    )
    fmt = draw(st.sampled_from(FORMATS))
    return tensor, np.asarray(assignment, dtype=np.int64), n_frags, fmt


class TestStoreProperties:
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(fragmented_tensors())
    def test_point_reads_complete(self, tmp_path_factory, case):
        tensor, assignment, n_frags, fmt = case
        store = FragmentStore(
            tmp_path_factory.mktemp("prop"), tensor.shape, fmt
        )
        for f in range(n_frags):
            mask = assignment == f
            if mask.any():
                store.write(tensor.coords[mask], tensor.values[mask])
        if tensor.nnz == 0:
            return
        out = store.read_points(tensor.coords)
        assert out.found.all()
        assert np.allclose(out.values, tensor.values)

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(fragmented_tensors(), st.data())
    def test_box_reads_match_ground_truth(self, tmp_path_factory,
                                          case, data):
        tensor, assignment, n_frags, fmt = case
        store = FragmentStore(
            tmp_path_factory.mktemp("prop"), tensor.shape, fmt
        )
        for f in range(n_frags):
            mask = assignment == f
            if mask.any():
                store.write(tensor.coords[mask], tensor.values[mask])
        origin = tuple(
            data.draw(st.integers(0, max(0, m - 1))) for m in tensor.shape
        )
        size = tuple(data.draw(st.integers(0, m)) for m in tensor.shape)
        box = Box(origin, size)
        got = store.read_box(box)
        want = tensor.select_box(box).sorted_by_linear()
        assert got.same_points(want)

    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(fragmented_tensors())
    def test_compaction_preserves_content(self, tmp_path_factory, case):
        tensor, assignment, n_frags, fmt = case
        if tensor.nnz == 0:
            return
        store = FragmentStore(
            tmp_path_factory.mktemp("prop"), tensor.shape, fmt
        )
        wrote = 0
        for f in range(n_frags):
            mask = assignment == f
            if mask.any():
                store.write(tensor.coords[mask], tensor.values[mask])
                wrote += 1
        if wrote == 0:
            return
        store.compact()
        assert len(store.fragments) == 1
        out = store.read_points(tensor.coords)
        assert out.found.all()
        assert np.allclose(out.values, tensor.values)
