"""Property-based differential harness: every format vs a brute-force oracle.

The round-trip suite (``test_roundtrip.py``) checks each format against
*itself* — store then retrieve.  This suite checks each format against an
independent implementation: a plain Python dictionary (for point reads)
and a mask-filter-sort (for box reads), both deliberately free of
linearization, format machinery, and sorting tricks.  A disagreement
indicts the format, not the oracle.

Coverage axes, per the paper's input contract (§II-A):

* shapes from 1-D through 5-D with small sides,
* duplicate coordinates in the raw buffer (resolved newest-wins before
  encoding, matching the store's overlay semantics),
* empty tensors,
* float64 / float32 / int64 value dtypes,
* all five paper formats (COO, LINEAR, GCSR++, GCSC++, CSF) plus the
  HiCOO extension,
* ``read_points`` over mixed present/absent queries, and ``read_box``
  over random axis-aligned windows.

Every case is seeded and reproducible: hypothesis runs derandomized, and
the store-level fuzz class derives everything from an explicit seed.
With 6 formats x ~90 examples (x2 read kinds) plus the store-level
sweeps, one run covers well over 500 differential cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.build import encode_all
from repro.core import Box, SparseTensor
from repro.formats import PAPER_FORMATS, get_format
from repro.storage import FragmentStore, StoreOptions
from repro.testing import (
    VALUE_DTYPES,
    oracle_read_box,
    oracle_read_points,
    random_box,
    random_queries,
    random_sparse_tensor,
)

#: Everything the differential harness sweeps: the paper's five formats
#: plus the HiCOO extension (ISSUE scope).
DIFF_FORMATS = tuple(PAPER_FORMATS) + ("HICOO",)


@st.composite
def raw_cases(draw):
    """A (tensor, queries, box) differential case.

    The raw coordinate list may contain duplicates; the tensor under test
    is the newest-wins deduplication of it, mirroring what a store's
    overlay merge would produce.
    """
    d = draw(st.integers(min_value=1, max_value=5))
    shape = tuple(
        draw(st.integers(min_value=1, max_value=6)) for _ in range(d)
    )
    n = draw(st.integers(min_value=0, max_value=40))
    coord = st.tuples(*(st.integers(0, m - 1) for m in shape))
    coords = draw(st.lists(coord, min_size=n, max_size=n))
    dtype = draw(st.sampled_from(VALUE_DTYPES))
    if np.issubdtype(np.dtype(dtype), np.integer):
        elem = st.integers(min_value=-10**6, max_value=10**6)
    else:
        elem = st.floats(min_value=-1e6, max_value=1e6,
                         allow_nan=False, allow_infinity=False)
    values = draw(st.lists(elem, min_size=n, max_size=n))
    raw = SparseTensor(
        shape,
        np.asarray(coords, dtype=np.uint64).reshape(n, d),
        np.asarray(values, dtype=dtype),
    )
    tensor = raw.deduplicated(keep="last")

    n_extra = draw(st.integers(min_value=0, max_value=8))
    extra = draw(st.lists(coord, min_size=n_extra, max_size=n_extra))
    queries = np.vstack([
        tensor.coords,
        np.asarray(extra, dtype=np.uint64).reshape(n_extra, d),
    ])

    origin = tuple(draw(st.integers(0, m - 1)) for m in shape)
    size = tuple(
        draw(st.integers(1, m - o)) for o, m in zip(origin, shape)
    )
    return tensor, queries, Box(origin, size)


def assert_points_match(outcome, tensor, queries, label):
    want_found, want_values = oracle_read_points(tensor, queries)
    np.testing.assert_array_equal(
        outcome.found, want_found,
        err_msg=f"{label}: found mask diverges from oracle",
    )
    assert outcome.values.shape[0] == want_values.shape[0], label
    np.testing.assert_array_equal(
        outcome.values, want_values.astype(outcome.values.dtype),
        err_msg=f"{label}: values diverge from oracle",
    )
    assert outcome.points_matched == int(want_found.sum()), label


def assert_box_match(got, tensor, box, label):
    want = oracle_read_box(tensor, box)
    assert got.shape == want.shape, label
    np.testing.assert_array_equal(
        got.coords, want.coords,
        err_msg=f"{label}: box coords diverge from oracle",
    )
    np.testing.assert_array_equal(
        got.values, want.values.astype(got.values.dtype),
        err_msg=f"{label}: box values diverge from oracle",
    )


class TestFormatDifferential:
    """Each encoded format must agree with the brute-force oracle."""

    @pytest.mark.parametrize("fmt_name", DIFF_FORMATS)
    @settings(max_examples=90, deadline=None, derandomize=True)
    @given(case=raw_cases())
    def test_read_points_matches_oracle(self, fmt_name, case):
        tensor, queries, _ = case
        enc = get_format(fmt_name).encode(tensor)
        assert_points_match(
            enc.read_points(queries), tensor, queries, fmt_name
        )

    @pytest.mark.parametrize("fmt_name", DIFF_FORMATS)
    @settings(max_examples=90, deadline=None, derandomize=True)
    @given(case=raw_cases())
    def test_read_box_matches_oracle(self, fmt_name, case):
        tensor, _, box = case
        enc = get_format(fmt_name).encode(tensor)
        assert_box_match(enc.read_box(box), tensor, box, fmt_name)

    @settings(max_examples=30, deadline=None, derandomize=True)
    @given(case=raw_cases())
    def test_formats_agree_with_each_other(self, case):
        """All formats return bit-identical outcomes for the same case."""
        tensor, queries, box = case
        outcomes = []
        for name in DIFF_FORMATS:
            enc = get_format(name).encode(tensor)
            out = enc.read_points(queries)
            got_box = enc.read_box(box)
            outcomes.append((name, out, got_box))
        ref_name, ref_out, ref_box = outcomes[0]
        for name, out, got_box in outcomes[1:]:
            np.testing.assert_array_equal(
                out.found, ref_out.found,
                err_msg=f"{name} vs {ref_name}: found mask",
            )
            np.testing.assert_array_equal(
                out.values, ref_out.values,
                err_msg=f"{name} vs {ref_name}: values",
            )
            np.testing.assert_array_equal(
                got_box.coords, ref_box.coords,
                err_msg=f"{name} vs {ref_name}: box coords",
            )


class TestBuildPipelineDifferential:
    """The unified build pipeline vs the independent per-format path.

    ``encode_all`` shares one canonical intermediate across formats;
    these properties assert that the sharing is unobservable — payloads
    are bit-identical to independent encodes, conversions agree with the
    oracle, and merge compaction agrees with decode-and-rebuild — across
    the same 1-D..5-D duplicate-bearing case space as the read-side
    differential suite.
    """

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(case=raw_cases())
    def test_encode_all_bit_identical_to_independent_encodes(self, case):
        tensor, _, _ = case
        shared = encode_all(tensor, formats=DIFF_FORMATS)
        for name in DIFF_FORMATS:
            want = get_format(name).encode(tensor)
            got = shared[name]
            assert got.payload.keys() == want.payload.keys(), name
            for key in want.payload:
                assert got.payload[key].dtype == want.payload[key].dtype
                np.testing.assert_array_equal(
                    got.payload[key], want.payload[key],
                    err_msg=f"{name}: payload[{key}]",
                )
            assert got.meta == want.meta, name
            np.testing.assert_array_equal(
                got.values, want.values, err_msg=f"{name}: values"
            )

    @pytest.mark.parametrize("dst_name", DIFF_FORMATS)
    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(case=raw_cases())
    def test_convert_round_trip_matches_oracle(self, dst_name, case):
        """src → dst → src (payload-level, no SparseTensor) must keep
        every point readable with oracle-identical results, and the
        second conversion must be bit-stable."""
        tensor, queries, _ = case
        src_index = sum(map(ord, dst_name)) % len(DIFF_FORMATS)
        src = get_format(DIFF_FORMATS[src_index])
        enc = src.encode(tensor)
        converted = enc.convert(dst_name)
        assert_points_match(
            converted.read_points(queries), tensor, queries,
            f"{src.name}->{dst_name}",
        )
        back = converted.convert(src.name)
        assert_points_match(
            back.read_points(queries), tensor, queries,
            f"{src.name}->{dst_name}->{src.name}",
        )
        # After one conversion the point order is canonical, so a repeat
        # round trip reproduces the converted payload bit for bit.
        again = back.convert(dst_name)
        assert again.payload.keys() == converted.payload.keys()
        for key in converted.payload:
            np.testing.assert_array_equal(
                again.payload[key], converted.payload[key],
                err_msg=f"{src.name}<->{dst_name}: payload[{key}] unstable",
            )
        np.testing.assert_array_equal(again.values, converted.values)

    @pytest.mark.parametrize("seed", range(12))
    def test_merge_compaction_equals_decode_rebuild(self, tmp_path, seed):
        """Store-level: both compaction strategies leave byte-identical
        fragment files behind."""
        fmt_name = DIFF_FORMATS[seed % len(DIFF_FORMATS)]
        relative = bool(seed % 2)
        frags = {}
        for strategy in ("merge", "decode"):
            rng = np.random.default_rng(1000 + seed)
            tensor = random_sparse_tensor(rng, max_points=48, max_side=6)
            store = FragmentStore(
                tmp_path / f"{strategy}{seed}", tensor.shape, fmt_name,
                relative_coords=relative,
            )
            wrote = False
            for _ in range(int(rng.integers(2, 6))):
                chunk = random_sparse_tensor(
                    rng, tensor.shape, max_points=32,
                    dtype=str(tensor.values.dtype),
                )
                if chunk.nnz:
                    store.write(chunk.coords, chunk.values)
                    wrote = True
            if not wrote:
                store.write(
                    np.zeros((1, len(tensor.shape)), dtype=np.uint64),
                    np.ones(1, dtype=tensor.values.dtype),
                )
            store.compact(strategy=strategy)
            frags[strategy] = store.fragments[0]
        assert frags["merge"].bbox == frags["decode"].bbox
        assert frags["merge"].nnz == frags["decode"].nnz
        assert (frags["merge"].path.read_bytes()
                == frags["decode"].path.read_bytes()), (
            f"{fmt_name}/seed={seed}/relative={relative}"
        )


class TestStoreDifferential:
    """Multi-fragment stores vs the oracle, sequential and parallel alike.

    The oracle for a store is the newest-wins overlay of every tensor
    written, in write order — exactly the duplicate semantics the raw-case
    strategy models for single encodings.
    """

    SEEDS = range(20)

    @staticmethod
    def build_store(tmp_path, seed, fmt_name, **store_kw):
        rng = np.random.default_rng(seed)
        tensor = random_sparse_tensor(rng, max_points=48, max_side=6)
        store = FragmentStore(
            tmp_path / f"ds{seed}", tensor.shape, fmt_name, **store_kw
        )
        written = []
        for _ in range(int(rng.integers(1, 5))):
            chunk = random_sparse_tensor(
                rng, tensor.shape, max_points=32, dtype=str(tensor.values.dtype)
            )
            if chunk.nnz:
                chunk = chunk.deduplicated(keep="last")
                store.write(chunk.coords, chunk.values)
                written.append(chunk)
        if not written:
            base = SparseTensor.from_points(
                tensor.shape, [(0,) * len(tensor.shape)], [1.0]
            )
            store.write(base.coords, base.values)
            written.append(base)
        overlay = SparseTensor(
            tensor.shape,
            np.vstack([t.coords for t in written]),
            np.concatenate([t.values for t in written]),
        ).deduplicated(keep="last")
        return store, overlay, rng

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("parallel", ["none", "thread"])
    def test_store_matches_oracle(self, tmp_path, seed, parallel):
        fmt_name = PAPER_FORMATS[seed % len(PAPER_FORMATS)]
        store, overlay, rng = self.build_store(
            tmp_path, seed, fmt_name, cache_bytes=1 << 20
        )
        queries = random_queries(rng, overlay)
        out = store.read_points(queries, parallel=parallel)
        assert_points_match(
            out, overlay, queries, f"{fmt_name}/seed={seed}/{parallel}"
        )
        box = random_box(rng, overlay.shape)
        assert_box_match(
            store.read_box(box, parallel=parallel),
            overlay, box, f"{fmt_name}/seed={seed}/{parallel}",
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_warm_cache_reads_identical(self, tmp_path, seed):
        """Cold-cache and warm-cache reads return bit-identical results."""
        store, overlay, rng = self.build_store(
            tmp_path, seed, "LINEAR", cache_bytes=1 << 20
        )
        queries = random_queries(rng, overlay)
        cold = store.read_points(queries)
        warm = store.read_points(queries, parallel="thread")
        np.testing.assert_array_equal(cold.found, warm.found)
        np.testing.assert_array_equal(cold.values, warm.values)
        assert store.cache.hits > 0 or store.cache.misses == 0


class TestWalDifferential:
    """WAL-routed ingest must be unobservable in reads.

    The same chunk sequence goes into one store via synchronous
    ``write`` (a fragment per chunk) and into another via durable
    ``append`` — left entirely unpacked, packed halfway, or fully
    packed, depending on the seed.  Whatever mix of fragments and WAL
    tail serves the read, results must be bit-identical to the
    synchronous store and to the newest-wins oracle, before and after
    a reopen (which exercises segment replay).  Seeds cycle all
    ``DIFF_FORMATS`` and both planner settings.
    """

    SEEDS = range(14)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_append_reads_identical_to_write(self, tmp_path, seed):
        fmt_name = DIFF_FORMATS[seed % len(DIFF_FORMATS)]
        plan = bool(seed % 2)
        pack_state = seed % 3  # 0: unpacked, 1: half-packed, 2: packed
        label = f"{fmt_name}/seed={seed}/plan={plan}/pack={pack_state}"

        rng = np.random.default_rng(7000 + seed)
        tensor = random_sparse_tensor(rng, max_points=48, max_side=6)
        chunks = []
        for _ in range(int(rng.integers(2, 6))):
            chunk = random_sparse_tensor(
                rng, tensor.shape, max_points=32,
                dtype=str(tensor.values.dtype),
            )
            if chunk.nnz:
                chunks.append(chunk.deduplicated(keep="last"))
        if not chunks:
            chunks.append(SparseTensor.from_points(
                tensor.shape, [(0,) * len(tensor.shape)], [1.0]
            ))

        synced = FragmentStore(
            tmp_path / "sync", tensor.shape, fmt_name, planner=plan
        )
        walled = FragmentStore(
            tmp_path / "wal", tensor.shape, fmt_name, planner=plan,
            options=StoreOptions(wal_segment_bytes=256),
        )
        for i, chunk in enumerate(chunks):
            synced.write(chunk.coords, chunk.values)
            walled.append(chunk.coords, chunk.values)
            if pack_state == 1 and i == len(chunks) // 2:
                walled.pack_wal()
        if pack_state == 2:
            walled.pack_wal()
            assert walled.wal_stats()["points"] == 0

        overlay = SparseTensor(
            tensor.shape,
            np.vstack([t.coords for t in chunks]),
            np.concatenate([t.values for t in chunks]),
        ).deduplicated(keep="last")
        queries = random_queries(rng, overlay)
        box = random_box(rng, overlay.shape)

        # Reopen replays whatever segments are still unpacked.
        reopened = FragmentStore(
            tmp_path / "wal", tensor.shape, fmt_name, planner=plan,
            options=StoreOptions(wal_segment_bytes=256),
        )
        want_points = synced.read_points(queries)
        want_box = synced.read_box(box)
        assert_points_match(want_points, overlay, queries, label)
        assert_box_match(want_box, overlay, box, label)
        for store, tag in ((walled, "live"), (reopened, "reopened")):
            got = store.read_points(queries)
            np.testing.assert_array_equal(
                got.found, want_points.found,
                err_msg=f"{label}/{tag}: found",
            )
            np.testing.assert_array_equal(
                got.values, want_points.values,
                err_msg=f"{label}/{tag}: values",
            )
            got_box = store.read_box(box)
            np.testing.assert_array_equal(
                got_box.coords, want_box.coords,
                err_msg=f"{label}/{tag}: box coords",
            )
            np.testing.assert_array_equal(
                got_box.values, want_box.values,
                err_msg=f"{label}/{tag}: box values",
            )


class TestCodecDifferential:
    """The codec axis must be unobservable in reads.

    Every format x {cascade, zlib} x WAL packed/unpacked x planner
    on/off reads bit-identically to an uncompressed (raw) baseline
    store fed the same chunk sequence.  Decode is driven by the tags
    each fragment carries, so mixing codecs across fragments of one
    store is also covered (the WAL tail is raw until packed).
    """

    @pytest.mark.parametrize("fmt_name", DIFF_FORMATS)
    @pytest.mark.parametrize("codec", ["cascade", "zlib"])
    @pytest.mark.parametrize("packed", [False, True])
    def test_codec_reads_identical_to_raw(
        self, tmp_path, fmt_name, codec, packed
    ):
        seed = 9000 + sum(map(ord, fmt_name + codec)) + int(packed)
        label = f"{fmt_name}/{codec}/packed={packed}"
        rng = np.random.default_rng(seed)
        tensor = random_sparse_tensor(rng, max_points=48, max_side=6)
        chunks = []
        for _ in range(int(rng.integers(2, 5))):
            chunk = random_sparse_tensor(
                rng, tensor.shape, max_points=32,
                dtype=str(tensor.values.dtype),
            )
            if chunk.nnz:
                chunks.append(chunk.deduplicated(keep="last"))
        if not chunks:
            chunks.append(SparseTensor.from_points(
                tensor.shape, [(0,) * len(tensor.shape)], [1.0]
            ))

        baseline = FragmentStore(
            tmp_path / "raw", tensor.shape, fmt_name,
            options=StoreOptions(codec="raw"),
        )
        coded = FragmentStore(
            tmp_path / "coded", tensor.shape, fmt_name,
            options=StoreOptions(codec=codec, wal_segment_bytes=256),
        )
        for chunk in chunks:
            baseline.write(chunk.coords, chunk.values)
            coded.append(chunk.coords, chunk.values)
        if packed:
            coded.pack_wal()

        overlay = SparseTensor(
            tensor.shape,
            np.vstack([t.coords for t in chunks]),
            np.concatenate([t.values for t in chunks]),
        ).deduplicated(keep="last")
        queries = random_queries(rng, overlay)
        box = random_box(rng, overlay.shape)

        want = baseline.read_points(queries)
        want_box = baseline.read_box(box)
        assert_points_match(want, overlay, queries, label)
        for plan in (True, False):
            reread = FragmentStore(
                tmp_path / "coded", tensor.shape, fmt_name,
                options=StoreOptions(
                    codec=codec, wal_segment_bytes=256, planner=plan
                ),
            )
            got = reread.read_points(queries)
            np.testing.assert_array_equal(
                got.found, want.found, err_msg=f"{label}/plan={plan}: found"
            )
            np.testing.assert_array_equal(
                got.values, want.values,
                err_msg=f"{label}/plan={plan}: values",
            )
            got_box = reread.read_box(box)
            np.testing.assert_array_equal(
                got_box.coords, want_box.coords,
                err_msg=f"{label}/plan={plan}: box coords",
            )
            np.testing.assert_array_equal(
                got_box.values, want_box.values,
                err_msg=f"{label}/plan={plan}: box values",
            )
        stats = coded.compression_stats()
        assert stats["codec"] == codec
        assert stats["raw_nbytes"] >= stats["encoded_nbytes"]
        if packed:  # unpacked stores hold everything in the WAL tail
            assert stats["fragments"] > 0
            assert stats["encoded_nbytes"] > 0

    @pytest.mark.parametrize("seed", range(8))
    def test_compact_preserves_codec_and_reads(self, tmp_path, seed):
        """Compaction re-encodes under the store codec; reads stay
        oracle-identical and old mixed-codec fragments disappear."""
        fmt_name = DIFF_FORMATS[seed % len(DIFF_FORMATS)]
        codec = ("cascade", "zlib")[seed % 2]
        store, overlay, rng = TestStoreDifferential.build_store(
            tmp_path, 400 + seed, fmt_name,
            options=StoreOptions(codec=codec),
        )
        store.compact()
        queries = random_queries(rng, overlay)
        assert_points_match(
            store.read_points(queries), overlay, queries,
            f"{fmt_name}/{codec}/compacted",
        )
        assert len(store.fragments) == 1
        assert store.fragments[0].codecs is not None


class TestPlannerDifferential:
    """The query planner must be unobservable in results.

    Every store above already runs plan-on (the default); this class
    pins the other direction: plan-on vs plan-off (the seed's linear
    bbox scan), stale pre-zone-map manifests, degenerate fragments, and
    the crc/lazy load variants all return byte-identical outcomes.
    ``ReadOutcome.fragments_visited`` is deliberately *not* compared —
    visiting fewer fragments is the planner's entire point.
    """

    SEEDS = range(12)

    @staticmethod
    def _assert_same_reads(store_a, store_b, overlay, rng, label):
        queries = random_queries(rng, overlay)
        box = random_box(rng, overlay.shape)
        for parallel in ("none", "thread"):
            a = store_a.read_points(queries, parallel=parallel)
            b = store_b.read_points(queries, parallel=parallel)
            np.testing.assert_array_equal(
                a.found, b.found, err_msg=f"{label}/{parallel}: found"
            )
            np.testing.assert_array_equal(
                a.values, b.values, err_msg=f"{label}/{parallel}: values"
            )
            assert a.points_matched == b.points_matched, label
            ta = store_a.read_box(box, parallel=parallel)
            tb = store_b.read_box(box, parallel=parallel)
            np.testing.assert_array_equal(
                ta.coords, tb.coords, err_msg=f"{label}/{parallel}: box"
            )
            np.testing.assert_array_equal(
                ta.values, tb.values, err_msg=f"{label}/{parallel}: box"
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_plan_on_off_byte_identical(self, tmp_path, seed):
        fmt_name = DIFF_FORMATS[seed % len(DIFF_FORMATS)]
        store_on, overlay, rng = TestStoreDifferential.build_store(
            tmp_path, seed, fmt_name
        )
        store_off = FragmentStore(
            store_on.directory, overlay.shape, fmt_name, planner=False
        )
        self._assert_same_reads(
            store_on, store_off, overlay, rng,
            f"{fmt_name}/seed={seed}/plan-on-vs-off",
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_stale_manifest_backfills_and_agrees(self, tmp_path, seed):
        """A pre-zone-map (v1) manifest reads identically after the lazy
        schema upgrade the first planned read performs."""
        import json

        fmt_name = DIFF_FORMATS[seed % len(DIFF_FORMATS)]
        store, overlay, rng = TestStoreDifferential.build_store(
            tmp_path, seed, fmt_name
        )
        path = store.directory / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest.pop("version", None)
        for entry in manifest["fragments"]:
            entry.pop("zone", None)
        path.write_text(json.dumps(manifest))
        stale = FragmentStore(store.directory, overlay.shape, fmt_name)
        off = FragmentStore(
            store.directory, overlay.shape, fmt_name, planner=False
        )
        self._assert_same_reads(
            stale, off, overlay, rng, f"{fmt_name}/seed={seed}/stale"
        )
        assert all(f.zone is not None for f in stale.fragments if f.nnz)

    @pytest.mark.parametrize("fmt_name", DIFF_FORMATS)
    def test_degenerate_fragments(self, tmp_path, fmt_name):
        """Empty and single-point fragments survive planning."""
        shape = (6, 6, 6)
        store = FragmentStore(tmp_path / "ds", shape, fmt_name)
        store.write(np.empty((0, 3), dtype=np.uint64), np.empty(0))
        store.write(np.array([[5, 5, 5]], dtype=np.uint64), np.ones(1))
        store.write(np.array([[0, 0, 0]], dtype=np.uint64), -np.ones(1))
        off = FragmentStore(tmp_path / "ds", shape, fmt_name, planner=False)
        queries = np.array(
            [[5, 5, 5], [0, 0, 0], [3, 3, 3]], dtype=np.uint64
        )
        a = store.read_points(queries)
        b = off.read_points(queries)
        np.testing.assert_array_equal(a.found, [True, True, False])
        np.testing.assert_array_equal(a.found, b.found)
        np.testing.assert_array_equal(a.values, b.values)
        box = Box((0, 0, 0), shape)
        np.testing.assert_array_equal(
            store.read_box(box).values, off.read_box(box).values
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_crc_once_and_lazy_agree_with_eager(self, tmp_path, seed):
        fmt_name = DIFF_FORMATS[seed % len(DIFF_FORMATS)]
        eager, overlay, rng = TestStoreDifferential.build_store(
            tmp_path, seed, fmt_name
        )
        tuned = FragmentStore(
            eager.directory, overlay.shape, fmt_name,
            crc_mode="once", lazy_load=True,
        )
        # Read twice so the second round exercises the CRC memo.
        for _ in range(2):
            self._assert_same_reads(
                eager, tuned, overlay, rng,
                f"{fmt_name}/seed={seed}/crc-once-lazy",
            )


class TestAddressOrderDifferential:
    """The address order must be unobservable in results.

    Sweeps every format x {row_major, alto} x plan on/off x {raw,
    cascade} against the brute-force oracle, reads a mixed-order store
    (legacy row-major fragments alongside new ALTO fragments, then the
    full ``set_addr_order`` migration), and pins the compatibility
    contract: a default store stays byte-identical to an explicit
    ``addr_order="row_major"`` store and serializes no ``addr_order``
    key anywhere — old readers see exactly the pre-ALTO layout.
    """

    ORDERS = ("row_major", "alto")

    @pytest.mark.parametrize("fmt_name", DIFF_FORMATS)
    @pytest.mark.parametrize("addr_order", ORDERS)
    @pytest.mark.parametrize("codec", ["raw", "cascade"])
    def test_order_reads_identical_to_oracle(
        self, tmp_path, fmt_name, addr_order, codec
    ):
        seed = 11000 + sum(map(ord, fmt_name + addr_order + codec))
        store, overlay, rng = TestStoreDifferential.build_store(
            tmp_path, seed, fmt_name,
            options=StoreOptions(addr_order=addr_order, codec=codec),
        )
        assert store.addr_order == addr_order
        for frag in store.fragments:
            assert frag.addr_order == addr_order
        queries = random_queries(rng, overlay)
        box = random_box(rng, overlay.shape)
        for plan in (True, False):
            reread = FragmentStore(
                store.directory, overlay.shape, fmt_name,
                options=StoreOptions(
                    addr_order=addr_order, codec=codec, planner=plan
                ),
            )
            label = f"{fmt_name}/{addr_order}/{codec}/plan={plan}"
            assert_points_match(
                reread.read_points(queries), overlay, queries, label
            )
            assert_box_match(reread.read_box(box), overlay, box, label)

    @pytest.mark.parametrize("seed", range(8))
    def test_mixed_order_store_reads_correctly(self, tmp_path, seed):
        """Legacy row-major fragments + new ALTO fragments coexist; the
        planner prunes each fragment in its own tagged space, and the
        full migration afterwards changes nothing observable."""
        fmt_name = DIFF_FORMATS[seed % len(DIFF_FORMATS)]
        store, overlay, rng = TestStoreDifferential.build_store(
            tmp_path, 500 + seed, fmt_name
        )
        mixed = FragmentStore(
            store.directory, overlay.shape, fmt_name,
            options=StoreOptions(addr_order="alto"),
        )
        chunk = random_sparse_tensor(
            rng, overlay.shape, max_points=32,
            dtype=str(overlay.values.dtype),
        )
        if not chunk.nnz:
            chunk = SparseTensor.from_points(
                overlay.shape, [(0,) * len(overlay.shape)], [2.0]
            )
        chunk = chunk.deduplicated(keep="last")
        mixed.write(chunk.coords, chunk.values)
        overlay = SparseTensor(
            overlay.shape,
            np.vstack([overlay.coords, chunk.coords]),
            np.concatenate(
                [overlay.values, chunk.values.astype(overlay.values.dtype)]
            ),
        ).deduplicated(keep="last")
        assert {f.addr_order for f in mixed.fragments} == {
            "row_major", "alto"
        }
        queries = random_queries(rng, overlay)
        box = random_box(rng, overlay.shape)
        label = f"{fmt_name}/seed={seed}/mixed"
        for plan in (True, False):
            # ``addr_order=None`` adopts the committed order (alto).
            reread = FragmentStore(
                mixed.directory, overlay.shape, fmt_name,
                options=StoreOptions(planner=plan),
            )
            assert reread.addr_order == "alto"
            assert_points_match(
                reread.read_points(queries), overlay, queries,
                f"{label}/plan={plan}",
            )
            assert_box_match(
                reread.read_box(box), overlay, box, f"{label}/plan={plan}"
            )
        mixed.set_addr_order("alto")
        assert {f.addr_order for f in mixed.fragments} == {"alto"}
        assert_points_match(
            mixed.read_points(queries), overlay, queries,
            f"{label}/migrated",
        )
        assert_box_match(
            mixed.read_box(box), overlay, box, f"{label}/migrated"
        )

    def test_row_major_default_byte_identical(self, tmp_path):
        """Defaults serialize exactly the pre-ALTO layout: the same
        bytes as an explicit ``addr_order="row_major"`` store, and the
        ``addr_order`` key appears in no manifest or fragment file."""
        stores = {}
        for tag, options in (
            ("default", StoreOptions()),
            ("explicit", StoreOptions(addr_order="row_major")),
        ):
            rng = np.random.default_rng(4242)
            store = FragmentStore(
                tmp_path / tag, (9, 7, 5), "COO-SORTED", options=options
            )
            for _ in range(3):
                t = random_sparse_tensor(
                    rng, (9, 7, 5), max_points=40, dtype="float64"
                )
                if t.nnz:
                    t = t.deduplicated(keep="last")
                    store.write(t.coords, t.values)
            store.compact()
            stores[tag] = store
        frags = {
            tag: sorted(s.directory.glob("frag-*.bin"))
            for tag, s in stores.items()
        }
        assert frags["default"] and (
            len(frags["default"]) == len(frags["explicit"])
        )
        for a, b in zip(frags["default"], frags["explicit"]):
            assert a.read_bytes() == b.read_bytes(), (a.name, b.name)
            assert b"addr_order" not in a.read_bytes(), a.name
        for tag, store in stores.items():
            manifest = (store.directory / "manifest.json").read_text()
            assert "addr_order" not in manifest, tag
