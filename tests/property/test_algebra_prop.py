"""Property-based tests for the algebra kernels."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import inner, mttkrp, ttv

from .test_roundtrip import sparse_tensors


class TestTTVProperties:
    @settings(max_examples=40, deadline=None)
    @given(sparse_tensors(max_dim=4, max_side=10, max_points=40),
           st.integers(0, 3))
    def test_matches_dense_einsum(self, tensor, mode_draw):
        if tensor.ndim < 2:
            return
        mode = mode_draw % tensor.ndim
        rng = np.random.default_rng(1)
        vec = rng.standard_normal(tensor.shape[mode])
        got = ttv(tensor, vec, mode)
        dense = tensor.to_dense()
        want = np.tensordot(dense, vec, axes=([mode], [0]))
        assert got.shape == want.shape
        assert np.allclose(got.to_dense(), want, atol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(sparse_tensors(max_dim=3, max_side=10, max_points=30))
    def test_linearity(self, tensor):
        if tensor.ndim < 2:
            return
        rng = np.random.default_rng(2)
        u = rng.standard_normal(tensor.shape[0])
        v = rng.standard_normal(tensor.shape[0])
        lhs = ttv(tensor, u + v, 0).to_dense()
        rhs = ttv(tensor, u, 0).to_dense() + ttv(tensor, v, 0).to_dense()
        assert np.allclose(lhs, rhs, atol=1e-8)


class TestInnerProperties:
    @settings(max_examples=40, deadline=None)
    @given(sparse_tensors(max_dim=3, max_side=10, max_points=30))
    def test_self_inner_nonnegative(self, tensor):
        assert inner(tensor, tensor) >= 0.0

    @settings(max_examples=40, deadline=None)
    @given(sparse_tensors(max_dim=3, max_side=10, max_points=30))
    def test_symmetry_with_shuffled_copy(self, tensor):
        rng = np.random.default_rng(3)
        perm = rng.permutation(tensor.nnz)
        from repro.core import SparseTensor

        shuffled = SparseTensor(
            tensor.shape, tensor.coords[perm], tensor.values[perm]
        )
        # Symmetric up to float summation order.
        a = inner(tensor, shuffled)
        b = inner(shuffled, tensor)
        c = inner(tensor, tensor)
        assert np.isclose(a, b, rtol=1e-12, atol=1e-12)
        # Shuffling point order never changes the inner product.
        assert np.isclose(a, c, rtol=1e-12, atol=1e-12)


class TestMTTKRPProperties:
    @settings(max_examples=30, deadline=None)
    @given(sparse_tensors(max_dim=3, max_side=8, max_points=25))
    def test_rank_one_factor_reduces_to_ttv_chain(self, tensor):
        """With all-ones rank-1 factors, MTTKRP mode-0 equals summing the
        tensor over every other mode."""
        if tensor.ndim < 2:
            return
        factors = [np.ones((m, 1)) for m in tensor.shape]
        got = mttkrp(tensor, factors, 0)[:, 0]
        dense = tensor.to_dense()
        want = dense.sum(axis=tuple(range(1, tensor.ndim)))
        assert np.allclose(got, want, atol=1e-8)
