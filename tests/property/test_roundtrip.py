"""Property-based round-trip tests: every format must return exactly what
was stored, for arbitrary shapes and point sets.

This is the core correctness invariant of the whole library: for any
deduplicated coordinate buffer, BUILD followed by READ finds every stored
point with its value, and finds nothing else.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SparseTensor, linearize
from repro.formats import available_formats, get_format


@st.composite
def sparse_tensors(draw, max_dim=4, max_side=24, max_points=60):
    """Arbitrary small sparse tensors with unique points."""
    d = draw(st.integers(min_value=1, max_value=max_dim))
    shape = tuple(
        draw(st.integers(min_value=1, max_value=max_side)) for _ in range(d)
    )
    total = int(np.prod(shape))
    n = draw(st.integers(min_value=0, max_value=min(max_points, total)))
    addresses = draw(
        st.lists(
            st.integers(min_value=0, max_value=total - 1),
            min_size=n, max_size=n, unique=True,
        )
    )
    values = draw(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=n, max_size=n,
        )
    )
    from repro.core import delinearize

    coords = delinearize(np.array(addresses, dtype=np.uint64), shape)
    return SparseTensor(shape, coords, np.array(values, dtype=np.float64))


@st.composite
def tensors_with_queries(draw):
    tensor = draw(sparse_tensors())
    total = int(np.prod(tensor.shape))
    q = draw(st.integers(min_value=0, max_value=40))
    q_addresses = draw(
        st.lists(st.integers(min_value=0, max_value=total - 1),
                 min_size=q, max_size=q)
    )
    from repro.core import delinearize

    queries = delinearize(np.array(q_addresses, dtype=np.uint64), tensor.shape)
    return tensor, queries


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(sparse_tensors())
    def test_all_stored_points_found_every_format(self, tensor):
        for name in available_formats():
            enc = get_format(name).encode(tensor)
            found, values = enc.read(tensor.coords)
            assert found.all(), name
            assert np.array_equal(values, tensor.values), name

    @settings(max_examples=40, deadline=None)
    @given(tensors_with_queries())
    def test_found_mask_matches_ground_truth(self, tensor_and_queries):
        tensor, queries = tensor_and_queries
        stored = set(
            linearize(tensor.coords, tensor.shape).tolist()
        )
        q_addr = linearize(queries, tensor.shape)
        expected = np.array([int(a) in stored for a in q_addr], dtype=bool)
        for name in available_formats():
            enc = get_format(name).encode(tensor)
            found, _ = enc.read(queries)
            assert np.array_equal(found, expected), name

    @settings(max_examples=25, deadline=None)
    @given(tensors_with_queries())
    def test_faithful_read_agrees_with_production(self, tensor_and_queries):
        tensor, queries = tensor_and_queries
        for name in available_formats():
            fmt = get_format(name)
            enc = fmt.encode(tensor)
            prod = fmt.read(enc.payload, enc.meta, tensor.shape, queries)
            faith = fmt.read_faithful(enc.payload, enc.meta, tensor.shape,
                                      queries)
            assert np.array_equal(prod.found, faith.found), name
            assert np.array_equal(
                prod.value_positions, faith.value_positions
            ), name

    @settings(max_examples=30, deadline=None)
    @given(sparse_tensors())
    def test_map_vector_is_permutation_when_present(self, tensor):
        from repro.core import is_permutation

        for name in available_formats():
            fmt = get_format(name)
            result = fmt.build(tensor.coords, tensor.shape)
            if fmt.reorders_values:
                assert result.perm is not None, name
                assert is_permutation(result.perm), name
                assert result.perm.shape[0] == tensor.nnz, name
            else:
                assert result.perm is None, name
