"""Property-based tests for block partitioning and blocked datasets."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.storage import BlockedDataset, block_grid_shape, partition_coords

from .test_roundtrip import sparse_tensors


@st.composite
def blocked_cases(draw):
    tensor = draw(sparse_tensors(max_dim=3, max_side=24, max_points=50))
    block = tuple(
        draw(st.integers(min_value=1, max_value=max(1, m)))
        for m in tensor.shape
    )
    return tensor, block


class TestPartitionProperties:
    @settings(max_examples=50, deadline=None)
    @given(blocked_cases())
    def test_partition_is_a_partition(self, case):
        """Every point lands in exactly one block, inside that block's box."""
        tensor, block = case
        seen = 0
        all_values = []
        for box, coords, values in partition_coords(
            tensor.coords, tensor.values, tensor.shape, block
        ):
            assert box.contains_points(coords).all()
            assert coords.shape[0] == values.shape[0] > 0
            seen += coords.shape[0]
            all_values.append(values)
        assert seen == tensor.nnz
        if all_values:
            got = np.sort(np.concatenate(all_values))
            assert np.allclose(got, np.sort(tensor.values))

    @settings(max_examples=50, deadline=None)
    @given(blocked_cases())
    def test_block_boxes_fit_grid(self, case):
        tensor, block = case
        grid = block_grid_shape(tensor.shape, block)
        n_blocks = 0
        for box, _, _ in partition_coords(
            tensor.coords, tensor.values, tensor.shape, block
        ):
            n_blocks += 1
            for o, b, m in zip(box.origin, block, tensor.shape):
                assert o % b == 0
                assert o < m
        assert n_blocks <= int(np.prod(grid))

    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(blocked_cases())
    def test_blocked_dataset_round_trip(self, tmp_path_factory, case):
        tensor, block = case
        if tensor.nnz == 0:
            return
        ds = BlockedDataset(
            tmp_path_factory.mktemp("blk"), tensor.shape, block, "LINEAR"
        )
        ds.write_tensor(tensor)
        out = ds.read_points(tensor.coords)
        assert out.found.all()
        assert np.allclose(out.values, tensor.values)
