"""Unit tests for the TSP (tridiagonal) pattern."""

import numpy as np
import pytest

from repro.core import PatternError
from repro.patterns import TSPPattern, solve_band_width


class TestBandStructure:
    def test_2d_points_lie_in_band(self):
        w = 3
        t = TSPPattern((64, 64), band_width=w).generate(1)
        diff = t.coords[:, 0].astype(np.int64) - t.coords[:, 1].astype(np.int64)
        assert np.all(np.abs(diff) <= w)

    def test_2d_band_is_complete(self):
        w = 1
        m = 16
        t = TSPPattern((m, m), band_width=w).generate(2)
        # Count of cells with |i-j| <= 1 in m x m: 3m - 2.
        assert t.nnz == 3 * m - 2

    def test_3d_union_of_adjacent_pairs(self):
        w = 0
        t = TSPPattern((12, 12, 12), band_width=w).generate(3)
        c = t.coords.astype(np.int64)
        ok01 = np.abs(c[:, 0] - c[:, 1]) <= w
        ok12 = np.abs(c[:, 1] - c[:, 2]) <= w
        assert np.all(ok01 | ok12)
        # Both pair-bands must actually occur.
        assert ok01.any() and ok12.any()

    def test_no_duplicates_in_union(self):
        t = TSPPattern((20, 20, 20), band_width=2).generate(4)
        assert not t.has_duplicates()

    def test_density_grows_with_dimensionality(self):
        """The Table II trend: at fixed band width, higher-d tensors of
        comparable smallest-dim size are denser."""
        d2 = TSPPattern((64, 64), band_width=4).generate(5).density
        d3 = TSPPattern((64, 64, 64), band_width=4).generate(5).density
        assert d3 > d2

    def test_rectangular_shape(self):
        t = TSPPattern((8, 20), band_width=2).generate(6)
        diff = t.coords[:, 0].astype(np.int64) - t.coords[:, 1].astype(np.int64)
        assert np.all(np.abs(diff) <= 2)
        assert int(t.coords[:, 0].max()) < 8


class TestParameters:
    def test_target_density_solves_width(self):
        gen = TSPPattern((512, 512, 512), target_density=0.0347)
        assert gen.band_width == 4  # the paper's band length 9

    def test_solver_monotone(self):
        w_low = solve_band_width((256, 256), 0.01)
        w_high = solve_band_width((256, 256), 0.1)
        assert w_high > w_low

    def test_expected_density_close_to_measured(self):
        gen = TSPPattern((128, 128, 128), band_width=3)
        t = gen.generate(7)
        assert t.density == pytest.approx(gen.expected_density(), rel=0.15)

    def test_both_params_rejected(self):
        with pytest.raises(PatternError):
            TSPPattern((8, 8), band_width=1, target_density=0.1)

    def test_1d_rejected(self):
        with pytest.raises(PatternError):
            TSPPattern((8,), band_width=1)

    def test_negative_width_rejected(self):
        with pytest.raises(PatternError):
            TSPPattern((8, 8), band_width=-1)

    def test_bad_target_rejected(self):
        with pytest.raises(PatternError):
            solve_band_width((8, 8), 0.0)
