"""Unit tests for the GSP (uniform random) pattern."""

import numpy as np
import pytest

from repro.core import PatternError
from repro.patterns import GSPPattern


class TestGSP:
    def test_density_tracks_threshold(self):
        t = GSPPattern((256, 256), threshold=0.99).generate(1)
        assert t.density == pytest.approx(0.01, rel=0.2)

    def test_paper_default(self):
        gen = GSPPattern((64, 64, 64))
        assert gen.density_param == pytest.approx(0.01)
        assert gen.expected_density() == pytest.approx(0.01)

    def test_uniform_spread(self):
        """Points should cover the space, not cluster (CSF worst-ish case)."""
        t = GSPPattern((128, 128), threshold=0.95).generate(2)
        # Every quadrant gets roughly a quarter of the mass.
        half = 64
        q = (
            ((t.coords[:, 0] < half) & (t.coords[:, 1] < half)).sum(),
            ((t.coords[:, 0] < half) & (t.coords[:, 1] >= half)).sum(),
            ((t.coords[:, 0] >= half) & (t.coords[:, 1] < half)).sum(),
            ((t.coords[:, 0] >= half) & (t.coords[:, 1] >= half)).sum(),
        )
        for count in q:
            assert count == pytest.approx(t.nnz / 4, rel=0.2)

    def test_threshold_one_minus_rejected(self):
        with pytest.raises(PatternError):
            GSPPattern((8, 8), threshold=1.0)

    def test_threshold_zero_gives_full(self):
        t = GSPPattern((8, 8), threshold=0.0).generate(3)
        assert t.nnz == 64
