"""Edge-case tests for the pattern generators."""

import numpy as np
import pytest

from repro.patterns import GSPPattern, MSPPattern, TSPPattern


class TestTSPEdges:
    def test_band_wider_than_dims_is_full(self):
        t = TSPPattern((6, 6), band_width=10).generate(1)
        assert t.nnz == 36  # everything within the band

    def test_zero_width_is_diagonal(self):
        t = TSPPattern((9, 9), band_width=0).generate(1)
        assert t.nnz == 9
        assert np.all(t.coords[:, 0] == t.coords[:, 1])

    def test_extremely_rectangular(self):
        t = TSPPattern((2, 500), band_width=1).generate(2)
        diff = t.coords[:, 1].astype(np.int64) - t.coords[:, 0].astype(np.int64)
        assert np.all(np.abs(diff) <= 1)

    def test_5d_supported(self):
        t = TSPPattern((6, 6, 6, 6, 6), band_width=0).generate(3)
        assert t.ndim == 5
        c = t.coords.astype(np.int64)
        adjacent_match = np.zeros(t.nnz, dtype=bool)
        for k in range(4):
            adjacent_match |= c[:, k] == c[:, k + 1]
        assert adjacent_match.all()


class TestMSPEdges:
    def test_tiny_shape_region_is_one_cell_min(self):
        gen = MSPPattern((2, 2))
        assert all(s >= 1 for s in gen.region.size)

    def test_zero_background_only_region(self):
        gen = MSPPattern((60, 60), background_threshold=1.0,
                         region_density=1.0)
        t = gen.generate(4)
        assert t.nnz == gen.region.n_cells
        assert gen.region.contains_points(t.coords).all()

    def test_full_background(self):
        gen = MSPPattern((10, 10), background_threshold=0.0,
                         region_density=0.0)
        t = gen.generate(5)
        assert t.nnz == 100


class TestGSPEdges:
    def test_single_cell_tensor(self):
        t = GSPPattern((1, 1), threshold=0.0).generate(1)
        assert t.nnz == 1
        assert t.coords.tolist() == [[0, 0]]

    def test_1d(self):
        t = GSPPattern((1000,), threshold=0.9).generate(2)
        assert t.ndim == 1
        assert t.density == pytest.approx(0.1, rel=0.35)

    def test_generators_independent_across_seeds(self):
        a = GSPPattern((64, 64), threshold=0.95).generate(1)
        b = GSPPattern((64, 64), threshold=0.95).generate(2)
        assert not a.same_points(b)
