"""Unit tests for the Table II dataset suite."""

import numpy as np
import pytest

from repro.core import PatternError
from repro.patterns import (
    DIMENSIONALITIES,
    PATTERN_NAMES,
    SCALES,
    active_scale,
    dataset_suite,
    get_spec,
    make_pattern,
    table2_rows,
)


class TestScales:
    def test_paper_scale_shapes(self):
        assert SCALES["paper"][2] == (8192, 8192)
        assert SCALES["paper"][3] == (512, 512, 512)
        assert SCALES["paper"][4] == (128, 128, 128, 128)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert active_scale() == "tiny"

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(PatternError):
            active_scale()

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert active_scale() == "default"


class TestSuite:
    def test_grid_is_complete(self):
        specs = dataset_suite("tiny")
        assert len(specs) == len(DIMENSIONALITIES) * len(PATTERN_NAMES)
        names = {s.name for s in specs}
        assert "3D-MSP" in names and "2D-TSP" in names

    def test_specs_deterministic(self):
        a = get_spec(3, "GSP", "tiny").generate()
        b = get_spec(3, "GSP", "tiny").generate()
        assert a.same_points(b)

    def test_distinct_seeds_across_grid(self):
        seeds = [s.seed for s in dataset_suite("tiny")]
        assert len(set(seeds)) == len(seeds)

    def test_get_spec_missing(self):
        with pytest.raises(PatternError):
            get_spec(5, "TSP", "tiny")

    def test_make_pattern_aliases(self):
        assert make_pattern("cgp", (8, 8)).name == "GSP"
        with pytest.raises(PatternError):
            make_pattern("XSP", (8, 8))


class TestTable2:
    def test_rows_structure(self):
        rows = table2_rows("tiny")
        assert len(rows) == 3
        for row in rows:
            for pattern in PATTERN_NAMES:
                assert 0 < row[pattern] < 0.2
                assert row[f"{pattern}_nnz"] > 0

    def test_gsp_density_close_to_paper(self):
        rows = table2_rows("tiny")
        for row in rows:
            # GSP is exactly the paper's generator: ~1 %.
            assert row["GSP"] == pytest.approx(0.01, rel=0.25)

    def test_tsp_densest_msp_sparsest(self):
        for row in table2_rows("tiny"):
            assert row["TSP"] > row["GSP"] > row["MSP"]
