"""Unit tests for the MSP (mixed) pattern."""

import numpy as np
import pytest

from repro.core import PatternError
from repro.patterns import MSPPattern


class TestMSP:
    def test_region_is_middle_third(self):
        gen = MSPPattern((90, 90))
        assert gen.region.origin == (30, 30)
        assert gen.region.size == (30, 30)

    def test_region_denser_than_background(self):
        gen = MSPPattern((300, 300), background_threshold=0.999,
                         region_density=0.05)
        t = gen.generate(1)
        inside = gen.region.contains_points(t.coords)
        in_density = inside.sum() / gen.region.n_cells
        out_density = (~inside).sum() / (gen.n_cells - gen.region.n_cells)
        assert in_density > 10 * out_density

    def test_background_density(self):
        gen = MSPPattern((400, 400), background_threshold=0.99,
                         region_density=0.0)
        t = gen.generate(2)
        assert t.density == pytest.approx(0.01, rel=0.25)

    def test_no_duplicates_where_processes_overlap(self):
        gen = MSPPattern((60, 60), background_threshold=0.9,
                         region_density=0.5)
        t = gen.generate(3)
        assert not t.has_duplicates()

    def test_expected_density_formula(self):
        gen = MSPPattern((300, 300))
        t = gen.generate(4)
        assert t.density == pytest.approx(gen.expected_density(), rel=0.35)

    def test_paper_read_region_overlaps_dense_region(self):
        """§III: the read region (m/2, size m/10) 'includes both independent
        points and contiguous points in MSP' — i.e. it must overlap the
        dense region [m/3, 2m/3)."""
        from repro.core import region_box

        gen = MSPPattern((512, 512, 512))
        read_box = region_box(gen.shape, start_frac=0.5, size_frac=0.1)
        assert gen.region.intersects(read_box)
        # The read region lies entirely inside the dense region here.
        inter = gen.region.intersection(read_box)
        assert inter.n_cells == read_box.n_cells

    def test_bad_thresholds(self):
        with pytest.raises(PatternError):
            MSPPattern((8, 8), background_threshold=1.5)
        with pytest.raises(PatternError):
            MSPPattern((8, 8), region_density=-0.1)
