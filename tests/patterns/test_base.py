"""Unit tests for pattern generator plumbing."""

import numpy as np
import pytest

from repro.core import PatternError
from repro.patterns import (
    GSPPattern,
    bernoulli_point_count,
    sample_distinct_addresses,
)


class TestSampleDistinct:
    def test_distinct_and_in_range(self, rng):
        addrs = sample_distinct_addresses(1000, 200, rng)
        assert addrs.shape == (200,)
        assert np.unique(addrs).shape == (200,)
        assert int(addrs.max()) < 1000

    def test_dense_regime_uses_choice(self, rng):
        addrs = sample_distinct_addresses(100, 80, rng)
        assert np.unique(addrs).shape == (80,)

    def test_all_cells(self, rng):
        addrs = sample_distinct_addresses(50, 50, rng)
        assert sorted(addrs.tolist()) == list(range(50))

    def test_zero(self, rng):
        assert sample_distinct_addresses(10, 0, rng).shape == (0,)

    def test_too_many(self, rng):
        with pytest.raises(PatternError):
            sample_distinct_addresses(10, 11, rng)


class TestBernoulliCount:
    def test_mean_tracks_p(self, rng):
        counts = [bernoulli_point_count(100_000, 0.01, rng) for _ in range(20)]
        assert np.mean(counts) == pytest.approx(1000, rel=0.1)

    def test_zero_p(self, rng):
        assert bernoulli_point_count(1000, 0.0, rng) == 0

    def test_invalid_p(self, rng):
        with pytest.raises(PatternError):
            bernoulli_point_count(10, 1.5, rng)


class TestGenerateContract:
    def test_deterministic_under_seed(self):
        gen = GSPPattern((64, 64), threshold=0.95)
        a = gen.generate(np.random.default_rng(3))
        b = gen.generate(np.random.default_rng(3))
        assert a.same_points(b)
        assert np.array_equal(a.coords, b.coords)  # same shuffle too

    def test_output_is_shuffled(self):
        """Paper input contract: buffers are *unsorted*."""
        gen = GSPPattern((128, 128), threshold=0.9)
        t = gen.generate(np.random.default_rng(5))
        addr = t.linear_addresses()
        assert not np.all(addr[1:] >= addr[:-1])

    def test_no_duplicates(self):
        gen = GSPPattern((32, 32), threshold=0.5)
        t = gen.generate(np.random.default_rng(1))
        assert not t.has_duplicates()

    def test_int_seed_accepted(self):
        t = GSPPattern((16, 16)).generate(42)
        assert t.shape == (16, 16)

    def test_zero_shape_rejected(self):
        with pytest.raises(PatternError):
            GSPPattern((0, 4))
