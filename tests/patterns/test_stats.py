"""Unit tests for pattern statistics / characterization."""

import numpy as np
import pytest

from repro.core import SparseTensor
from repro.formats import CSFFormat
from repro.patterns import GSPPattern, TSPPattern, characterize, csf_level_counts
from repro.patterns.stats import density_report


class TestCSFLevelCounts:
    def test_matches_actual_build(self, any_tensor):
        counts = csf_level_counts(any_tensor)
        built = CSFFormat().build(any_tensor.coords, any_tensor.shape)
        assert counts == built.payload["nfibs"].astype(int).tolist()

    def test_fig1(self, fig1_tensor):
        assert csf_level_counts(fig1_tensor) == [2, 3, 5]

    def test_empty(self):
        t = SparseTensor.empty((4, 4, 4))
        assert csf_level_counts(t) == [0, 0, 0]


class TestCharacterize:
    def test_basic_fields(self, fig1_tensor):
        st = characterize(fig1_tensor)
        assert st.nnz == 5
        assert st.shape == (3, 3, 3)
        assert st.density == pytest.approx(5 / 27)
        assert st.per_dim_unique == (2, 3, 2)
        assert st.csf_levels == (2, 3, 5)

    def test_sharing_ratio_distinguishes_patterns(self):
        """TSP (clustered bands) shares prefixes better than GSP (uniform)
        — the mechanism behind CSF's Fig 4 variance."""
        shape = (128, 128, 128)
        tsp = TSPPattern(shape, band_width=2).generate(1)
        gsp = GSPPattern(shape, threshold=0.99).generate(1)
        s_tsp = characterize(tsp)
        s_gsp = characterize(gsp)
        assert s_tsp.csf_sharing_ratio < s_gsp.csf_sharing_ratio

    def test_avg_points_per_folded_row(self, tensor_3d):
        st = characterize(tensor_3d)
        assert st.avg_points_per_folded_row == pytest.approx(
            tensor_3d.nnz / min(tensor_3d.shape)
        )

    def test_bbox_fill(self):
        t = SparseTensor.from_points((10, 10), [(0, 0), (1, 1)])
        st = characterize(t)
        assert st.bbox_fill == pytest.approx(2 / 4)


class TestDensityReport:
    def test_report(self, fig1_tensor):
        rep = density_report(fig1_tensor, expected=5 / 27)
        assert rep["relative_error"] == pytest.approx(0.0)

    def test_zero_expected(self, fig1_tensor):
        rep = density_report(fig1_tensor, expected=0.0)
        assert rep["relative_error"] == float("inf")
