"""Exact-value tests against the paper's Fig 1 example encodings.

The example tensor is 3x3x3 with points (0,0,1) (0,1,1) (0,1,2) (2,2,1)
(2,2,2) and values v1..v5.  The paper's Fig 1(a) (LINEAR) and Fig 1(d)
(CSF) values are reproduced exactly.  Fig 1(b)/(c) are inconsistent with
the paper's own Algorithm 1 (DESIGN.md §5) — these tests pin the
self-consistent encodings derived from the algorithm text.
"""

import numpy as np

from repro.formats import get_format


class TestFig1Linear:
    def test_addresses(self, fig1_tensor):
        result = get_format("LINEAR").build(
            fig1_tensor.coords, fig1_tensor.shape
        )
        assert result.payload["addresses"].tolist() == [1, 4, 5, 25, 26]

    def test_no_map(self, fig1_tensor):
        result = get_format("LINEAR").build(
            fig1_tensor.coords, fig1_tensor.shape
        )
        assert result.perm is None


class TestFig1GCSR:
    """Algorithm-text encoding (the figure's own values are inconsistent)."""

    def test_structure(self, fig1_tensor):
        result = get_format("GCSR++").build(
            fig1_tensor.coords, fig1_tensor.shape
        )
        # 2D fold: (3, 9); rows = addr // 9 -> [0,0,0,2,2].
        assert result.meta["shape2d"] == [3, 9]
        assert result.payload["row_ptr"].tolist() == [0, 3, 3, 5]
        assert result.payload["col_ind"].tolist() == [1, 4, 5, 7, 8]

    def test_map_is_identity_for_sorted_input(self, fig1_tensor):
        # Fig 1's points arrive already in row order -> stable sort keeps
        # them in place.
        result = get_format("GCSR++").build(
            fig1_tensor.coords, fig1_tensor.shape
        )
        assert result.perm.tolist() == [0, 1, 2, 3, 4]


class TestFig1GCSC:
    def test_structure(self, fig1_tensor):
        result = get_format("GCSC++").build(
            fig1_tensor.coords, fig1_tensor.shape
        )
        # 2D fold: (9, 3); cols = addr % 3 -> [1,1,2,1,2] -> sorted by col.
        assert result.meta["shape2d"] == [9, 3]
        assert result.payload["col_ptr"].tolist() == [0, 0, 3, 5]
        assert result.payload["row_ind"].tolist() == [0, 1, 8, 1, 8]

    def test_map_groups_columns(self, fig1_tensor):
        result = get_format("GCSC++").build(
            fig1_tensor.coords, fig1_tensor.shape
        )
        # Column-1 points (v1, v2, v4) first, then column-2 (v3, v5).
        assert result.perm.tolist() == [0, 1, 3, 2, 4]


class TestFig1CSF:
    """Fig 1(d) values, which our implementation reproduces exactly."""

    def test_nfibs(self, fig1_tensor):
        result = get_format("CSF").build(fig1_tensor.coords, fig1_tensor.shape)
        assert result.payload["nfibs"].tolist() == [2, 3, 5]

    def test_fids(self, fig1_tensor):
        result = get_format("CSF").build(fig1_tensor.coords, fig1_tensor.shape)
        assert result.payload["fids_0"].tolist() == [0, 2]
        assert result.payload["fids_1"].tolist() == [0, 1, 2]
        assert result.payload["fids_2"].tolist() == [1, 1, 2, 1, 2]

    def test_fptr(self, fig1_tensor):
        result = get_format("CSF").build(fig1_tensor.coords, fig1_tensor.shape)
        assert result.payload["fptr_0"].tolist() == [0, 2, 3]
        assert result.payload["fptr_1"].tolist() == [0, 1, 3, 5]

    def test_dim_perm_identity_for_cube(self, fig1_tensor):
        result = get_format("CSF").build(fig1_tensor.coords, fig1_tensor.shape)
        assert result.meta["dim_perm"] == [0, 1, 2]


class TestFig1SizeRanking:
    def test_index_footprints_follow_paper_ranking(self, fig1_tensor):
        """LINEAR < GCSR++ == GCSC++ < COO for the example (CSF's tree
        overhead dominates at n=5, so it is excluded at this toy size)."""
        sizes = {}
        for name in ("COO", "LINEAR", "GCSR++", "GCSC++"):
            fmt = get_format(name)
            sizes[name] = fmt.build(
                fig1_tensor.coords, fig1_tensor.shape
            ).index_nbytes()
        assert sizes["LINEAR"] < sizes["GCSR++"] == sizes["GCSC++"] < sizes["COO"]
