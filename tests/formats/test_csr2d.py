"""Unit tests for the classic CSR/CSC 2D kernels."""

import numpy as np
import pytest

from repro.core import OpCounter
from repro.core.errors import FormatError
from repro.formats import CSRMatrix, csr_pack, csr_query_scan, csr_query_vectorized
from repro.formats.csr2d import csr_to_dense


def make_points(rng, nrows=7, ncols=40, n=120):
    rows = rng.integers(0, nrows, size=n, dtype=np.uint64)
    cols = rng.integers(0, ncols, size=n, dtype=np.uint64)
    # dedupe (r, c) pairs
    key = rows * ncols + cols
    _, idx = np.unique(key, return_index=True)
    idx = np.sort(idx)
    return rows[idx], cols[idx]


class TestPack:
    def test_basic_structure(self):
        rows = np.array([2, 0, 2, 1], dtype=np.uint64)
        cols = np.array([5, 3, 1, 4], dtype=np.uint64)
        m, perm = csr_pack(rows, cols, 3)
        assert m.indptr.tolist() == [0, 1, 2, 4]
        # Stable sort by row: row2 keeps input order (5 then 1).
        assert m.indices.tolist() == [3, 4, 5, 1]
        assert perm.tolist() == [1, 3, 0, 2]
        m.validate()

    def test_empty_rows_have_zero_segments(self):
        rows = np.array([4], dtype=np.uint64)
        cols = np.array([0], dtype=np.uint64)
        m, _ = csr_pack(rows, cols, 6)
        assert m.indptr.tolist() == [0, 0, 0, 0, 0, 1, 1]

    def test_row_out_of_range(self):
        with pytest.raises(FormatError, match="out of range"):
            csr_pack(np.array([9], dtype=np.uint64),
                     np.array([0], dtype=np.uint64), 3)

    def test_misaligned_inputs(self):
        with pytest.raises(FormatError):
            csr_pack(np.array([1], dtype=np.uint64),
                     np.array([1, 2], dtype=np.uint64), 3)

    def test_sort_charge(self):
        counter = OpCounter()
        rows = np.arange(16, dtype=np.uint64)
        csr_pack(rows, rows, 16, counter=counter)
        assert counter.sort_ops == 64  # 16 * log2(16)


class TestValidate:
    def test_catches_bad_indptr_start(self):
        m = CSRMatrix(2, 4, np.array([1, 1, 1], dtype=np.uint64),
                      np.empty(0, dtype=np.uint64))
        with pytest.raises(FormatError, match="start at 0"):
            m.validate()

    def test_catches_length_mismatch(self):
        m = CSRMatrix(2, 4, np.array([0, 1], dtype=np.uint64),
                      np.array([0], dtype=np.uint64))
        with pytest.raises(FormatError, match="indptr length"):
            m.validate()

    def test_catches_wrong_total(self):
        m = CSRMatrix(1, 4, np.array([0, 2], dtype=np.uint64),
                      np.array([0], dtype=np.uint64))
        with pytest.raises(FormatError, match="nnz"):
            m.validate()


class TestQueries:
    def test_scan_and_vectorized_agree(self, rng):
        rows, cols = make_points(rng)
        m, _ = csr_pack(rows, cols, 7)
        # query all stored plus some misses
        qr = np.concatenate([rows, rng.integers(0, 7, 30, dtype=np.uint64)])
        qc = np.concatenate([cols, rng.integers(0, 40, 30, dtype=np.uint64)])
        f1, p1 = csr_query_scan(m, qr, qc)
        f2, p2 = csr_query_vectorized(m, qr, qc)
        assert np.array_equal(f1, f2)
        assert np.array_equal(p1, p2)

    def test_hits_map_to_sorted_positions(self, rng):
        rows, cols = make_points(rng)
        m, perm = csr_pack(rows, cols, 7)
        f, p = csr_query_vectorized(m, rows, cols)
        assert f.all()
        # position i in the packed arrays corresponds to original perm[i]
        assert np.array_equal(rows[perm][p], rows)
        assert np.array_equal(cols[perm][p], cols)

    def test_row_out_of_range_query_misses(self, rng):
        rows, cols = make_points(rng)
        m, _ = csr_pack(rows, cols, 7)
        f, _ = csr_query_vectorized(
            m, np.array([100], dtype=np.uint64), np.array([0], dtype=np.uint64)
        )
        assert not f[0]

    def test_scan_op_accounting(self):
        rows = np.array([0, 0, 0, 1], dtype=np.uint64)
        cols = np.array([1, 2, 3, 1], dtype=np.uint64)
        m, _ = csr_pack(rows, cols, 2)
        counter = OpCounter()
        csr_query_scan(m, np.array([0, 1], dtype=np.uint64),
                       np.array([2, 0], dtype=np.uint64), counter=counter)
        # scans row0 (3 entries) + row1 (1 entry)
        assert counter.comparisons == 4
        assert counter.pointer_lookups == 4

    def test_empty_query(self, rng):
        rows, cols = make_points(rng)
        m, _ = csr_pack(rows, cols, 7)
        f, p = csr_query_vectorized(
            m, np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.uint64)
        )
        assert f.shape == (0,)

    def test_duplicate_in_segment_returns_last(self):
        # Central duplicate policy: the last stored occurrence (newest
        # write) wins -- see repro.build.canonical.DUPLICATE_POLICY.
        rows = np.array([0, 0], dtype=np.uint64)
        cols = np.array([5, 5], dtype=np.uint64)
        m, _ = csr_pack(rows, cols, 1)
        f, p = csr_query_vectorized(m, np.array([0], dtype=np.uint64),
                                    np.array([5], dtype=np.uint64))
        assert f[0] and p[0] == 1


class TestDense:
    def test_round_trip_occupancy(self, rng):
        rows, cols = make_points(rng, nrows=4, ncols=6, n=15)
        m, _ = csr_pack(rows, cols, 4)
        dense = csr_to_dense(m)
        assert dense.sum() == m.nnz
        for r, c in zip(rows, cols):
            assert dense[int(r), int(c)] == 1
