"""Unit tests for GCSR++ (generalized CSR)."""

import numpy as np
import pytest

from repro.core import OpCounter, invert_permutation, is_permutation
from repro.core.errors import FormatError
from repro.formats import GCSRFormat

from ..conftest import query_mix


@pytest.fixture
def fmt():
    return GCSRFormat()


class TestBuild:
    def test_folds_to_min_dim_rows(self, fmt, tensor_3d):
        result = fmt.build(tensor_3d.coords, tensor_3d.shape)
        assert result.meta["shape2d"][0] == min(tensor_3d.shape)
        n_rows = result.meta["shape2d"][0]
        assert result.payload["row_ptr"].shape == (n_rows + 1,)

    def test_map_is_permutation(self, fmt, any_tensor):
        result = fmt.build(any_tensor.coords, any_tensor.shape)
        assert is_permutation(result.perm)

    def test_row_ptr_invariants(self, fmt, any_tensor):
        result = fmt.build(any_tensor.coords, any_tensor.shape)
        ptr = result.payload["row_ptr"].astype(np.int64)
        assert ptr[0] == 0
        assert ptr[-1] == any_tensor.nnz
        assert np.all(np.diff(ptr) >= 0)

    def test_space_complexity(self, fmt, tensor_4d):
        """Table I: O(n + min{m}) index elements."""
        result = fmt.build(tensor_4d.coords, tensor_4d.shape)
        elements = sum(b.size for b in result.payload.values())
        assert elements == tensor_4d.nnz + min(tensor_4d.shape) + 1

    def test_2d_tensor_is_plain_csr(self, fmt, tensor_2d):
        """§III-C: for 2D tensors GCSR++ is the classic CSR (when the first
        dimension is the smallest)."""
        result = fmt.build(tensor_2d.coords, tensor_2d.shape)
        assert tuple(result.meta["shape2d"]) == tensor_2d.shape
        # row_ptr counts points per first coordinate
        counts = np.bincount(
            tensor_2d.coords[:, 0].astype(np.int64),
            minlength=tensor_2d.shape[0],
        )
        assert np.array_equal(
            np.diff(result.payload["row_ptr"].astype(np.int64)), counts
        )

    def test_empty(self, fmt):
        result = fmt.build(np.empty((0, 3), dtype=np.uint64), (4, 5, 6))
        assert result.payload["row_ptr"].tolist() == [0] * 5
        assert result.payload["col_ind"].shape == (0,)

    def test_build_op_accounting(self, fmt, tensor_3d):
        """Table I's 2n build term: one fold transform + one packaging
        operation per point, plus the n log n sort."""
        counter = OpCounter()
        fmt.build(tensor_3d.coords, tensor_3d.shape, counter=counter)
        n = tensor_3d.nnz
        assert counter.transforms == n
        assert counter.sort_ops > 0
        assert counter.memory_ops == n


class TestRead:
    def test_mixed_queries(self, fmt, any_tensor, rng):
        enc = fmt.encode(any_tensor)
        queries, expected = query_mix(any_tensor, rng)
        found, vals = enc.read(queries)
        assert np.array_equal(found, expected)
        assert np.allclose(vals[: any_tensor.nnz], any_tensor.values)

    def test_faithful_matches_production(self, fmt, tensor_3d, rng):
        enc = fmt.encode(tensor_3d)
        queries, _ = query_mix(tensor_3d, rng)
        prod = fmt.read(enc.payload, enc.meta, tensor_3d.shape, queries)
        faith = fmt.read_faithful(enc.payload, enc.meta, tensor_3d.shape, queries)
        assert np.array_equal(prod.found, faith.found)
        assert np.array_equal(prod.value_positions, faith.value_positions)

    def test_value_positions_respect_map(self, fmt, tensor_3d):
        result = fmt.build(tensor_3d.coords, tensor_3d.shape)
        res = fmt.read(result.payload, result.meta, tensor_3d.shape,
                       tensor_3d.coords)
        assert res.found.all()
        # stored position of original point j is inv_perm[j]
        inv = invert_permutation(result.perm)
        assert np.array_equal(res.value_positions, inv)

    def test_faithful_scan_cost_scales_with_row_occupancy(self, fmt):
        # A single dense row: each query scans that whole row.
        n = 64
        coords = np.column_stack(
            [np.zeros(n, dtype=np.uint64), np.arange(n, dtype=np.uint64)]
        )
        result = fmt.build(coords, (4, n))
        counter = OpCounter()
        fmt.read_faithful(result.payload, result.meta, (4, n),
                          coords[:4], counter=counter)
        assert counter.comparisons == 4 * n

    def test_missing_meta_raises(self, fmt, tensor_2d):
        result = fmt.build(tensor_2d.coords, tensor_2d.shape)
        with pytest.raises(FormatError, match="shape2d"):
            fmt.read(result.payload, {}, tensor_2d.shape, tensor_2d.coords[:1])
