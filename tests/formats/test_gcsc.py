"""Unit tests for GCSC++ (generalized CSC)."""

import numpy as np
import pytest

from repro.core import OpCounter, is_permutation
from repro.formats import GCSCFormat, GCSRFormat

from ..conftest import query_mix


@pytest.fixture
def fmt():
    return GCSCFormat()


class TestBuild:
    def test_folds_to_min_dim_cols(self, fmt, tensor_3d):
        result = fmt.build(tensor_3d.coords, tensor_3d.shape)
        assert result.meta["shape2d"][1] == min(tensor_3d.shape)
        n_cols = result.meta["shape2d"][1]
        assert result.payload["col_ptr"].shape == (n_cols + 1,)

    def test_map_is_permutation(self, fmt, any_tensor):
        result = fmt.build(any_tensor.coords, any_tensor.shape)
        assert is_permutation(result.perm)

    def test_space_matches_gcsr(self, fmt, tensor_4d):
        """§III-B: GCSR++ and GCSC++ yield very similar file sizes."""
        gcsr = GCSRFormat().build(tensor_4d.coords, tensor_4d.shape)
        gcsc = fmt.build(tensor_4d.coords, tensor_4d.shape)
        assert gcsc.index_nbytes() == gcsr.index_nbytes()

    def test_points_sorted_by_column(self, fmt, tensor_3d):
        result = fmt.build(tensor_3d.coords, tensor_3d.shape)
        ptr = result.payload["col_ptr"].astype(np.int64)
        assert ptr[-1] == tensor_3d.nnz
        assert np.all(np.diff(ptr) >= 0)


class TestRead:
    def test_mixed_queries(self, fmt, any_tensor, rng):
        enc = fmt.encode(any_tensor)
        queries, expected = query_mix(any_tensor, rng)
        found, vals = enc.read(queries)
        assert np.array_equal(found, expected)
        assert np.allclose(vals[: any_tensor.nnz], any_tensor.values)

    def test_faithful_matches_production(self, fmt, tensor_4d, rng):
        enc = fmt.encode(tensor_4d)
        queries, _ = query_mix(tensor_4d, rng)
        prod = fmt.read(enc.payload, enc.meta, tensor_4d.shape, queries)
        faith = fmt.read_faithful(enc.payload, enc.meta, tensor_4d.shape, queries)
        assert np.array_equal(prod.found, faith.found)
        assert np.array_equal(prod.value_positions, faith.value_positions)

    def test_agrees_with_gcsr(self, fmt, tensor_3d, rng):
        """Same tensor, same queries: the two generalizations must agree on
        existence (they only differ in layout)."""
        queries, _ = query_mix(tensor_3d, rng)
        enc_r = GCSRFormat().encode(tensor_3d)
        enc_c = fmt.encode(tensor_3d)
        found_r, vals_r = enc_r.read(queries)
        found_c, vals_c = enc_c.read(queries)
        assert np.array_equal(found_r, found_c)
        assert np.allclose(vals_r, vals_c)


class TestLayoutAsymmetry:
    """The Table III mechanism: row-major input favors GCSR++'s sort."""

    def test_row_major_input_gives_presorted_gcsr_keys(self, rng):
        # Build a row-major-ordered buffer (sorted by linear address).
        shape = (8, 32, 32)
        n = 2000
        coords = np.column_stack(
            [rng.integers(0, m, size=n, dtype=np.uint64) for m in shape]
        )
        from repro.core import SparseTensor

        t = SparseTensor(shape, coords, np.ones(n)).deduplicated()
        t = t.sorted_by_linear()
        gcsr = GCSRFormat().build(t.coords, t.shape)
        # GCSR++'s stable sort of already-sorted keys is the identity.
        assert np.array_equal(gcsr.perm, np.arange(t.nnz))
        gcsc = GCSCFormat().build(t.coords, t.shape)
        # GCSC++'s column sort genuinely permutes.
        assert not np.array_equal(gcsc.perm, np.arange(t.nnz))
