"""Duplicate-coordinate policy: every format's reads agree on last-wins.

The central policy lives in :mod:`repro.build.canonical`
(``DUPLICATE_POLICY = "last"``): when a payload carries the same
coordinate more than once, every read path — vectorized ``read`` and the
paper-faithful per-point ``read_faithful`` — returns the value stored
*last* (the newest write).  Before the unified build pipeline, formats
disagreed (binary-search formats returned an arbitrary run member, scan
formats the first); this suite pins the healed behavior for all seven.
"""

import numpy as np
import pytest

from repro.core import SparseTensor
from repro.formats import available_formats, get_format


def dup_case(rng, shape=(6, 7, 8)):
    """A tensor with several duplicate runs; returns (tensor, winners).

    ``winners`` maps each distinct coordinate to the value of its last
    occurrence in input order.
    """
    n = 120
    coords = np.column_stack(
        [rng.integers(0, m, size=n, dtype=np.uint64) for m in shape]
    )
    # Repeat a slice of earlier coordinates with fresh values, appended
    # later in the buffer, so each repeated coordinate has a newer write.
    coords[60:90] = coords[:30]
    values = rng.standard_normal(n)
    winners = {}
    for c, v in zip(map(tuple, coords.tolist()), values.tolist()):
        winners[c] = v  # later rows overwrite: dict keeps the last
    return SparseTensor(shape, coords, values), winners


@pytest.mark.parametrize("fmt_name", available_formats())
class TestLastWins:
    def test_vectorized_read(self, rng, fmt_name):
        tensor, winners = dup_case(rng)
        enc = get_format(fmt_name).encode(tensor)
        queries = np.array(sorted(winners), dtype=np.uint64)
        out = enc.read_points(queries)
        assert out.found.all()
        want = np.array([winners[tuple(q)] for q in queries.tolist()])
        np.testing.assert_array_equal(out.values, want)

    def test_faithful_read(self, rng, fmt_name):
        tensor, winners = dup_case(rng)
        fmt = get_format(fmt_name)
        enc = fmt.encode(tensor)
        queries = np.array(sorted(winners), dtype=np.uint64)
        res = fmt.read_faithful(enc.payload, enc.meta, enc.shape, queries)
        assert res.found.all()
        got = res.gather_values(enc.values)
        want = np.array([winners[tuple(q)] for q in queries.tolist()])
        np.testing.assert_array_equal(got, want)

    def test_read_and_faithful_agree_positionally(self, rng, fmt_name):
        tensor, winners = dup_case(rng)
        fmt = get_format(fmt_name)
        enc = fmt.encode(tensor)
        queries = np.array(sorted(winners), dtype=np.uint64)
        fast = fmt.read(enc.payload, enc.meta, enc.shape, queries)
        faithful = fmt.read_faithful(enc.payload, enc.meta, enc.shape, queries)
        np.testing.assert_array_equal(fast.found, faithful.found)
        np.testing.assert_array_equal(
            fast.value_positions, faithful.value_positions
        )

    def test_adjacent_duplicate_pair(self, fmt_name):
        """Minimal case: the same coordinate twice, back to back."""
        t = SparseTensor(
            (4, 4),
            np.array([[2, 3], [2, 3]], dtype=np.uint64),
            np.array([1.0, 9.0]),
        )
        enc = get_format(fmt_name).encode(t)
        out = enc.read_points(np.array([[2, 3]], dtype=np.uint64))
        assert out.found[0]
        assert out.values[0] == 9.0
