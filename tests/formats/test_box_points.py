"""Unit + property tests for structural box (range) reads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Box, SparseTensor
from repro.formats import available_formats, get_format

from ..property.test_roundtrip import sparse_tensors


@pytest.mark.parametrize("fmt_name", available_formats())
class TestBoxPointsPerFormat:
    def test_matches_select_box(self, any_tensor, fmt_name):
        box = Box(
            tuple(m // 4 for m in any_tensor.shape),
            tuple(max(1, m // 2) for m in any_tensor.shape),
        )
        enc = get_format(fmt_name).encode(any_tensor)
        got = enc.read_box(box)
        want = any_tensor.select_box(box)
        assert got.same_points(want), fmt_name

    def test_full_tensor_box(self, tensor_3d, fmt_name):
        enc = get_format(fmt_name).encode(tensor_3d)
        got = enc.read_box(Box((0, 0, 0), tensor_3d.shape))
        assert got.same_points(tensor_3d)

    def test_empty_box(self, tensor_3d, fmt_name):
        enc = get_format(fmt_name).encode(tensor_3d)
        got = enc.read_box(Box((0, 0, 0), (0, 0, 0)))
        assert got.nnz == 0

    def test_miss_box(self, fmt_name):
        t = SparseTensor.from_points((16, 16), [(1, 1)], [5.0])
        enc = get_format(fmt_name).encode(t)
        got = enc.read_box(Box((8, 8), (4, 4)))
        assert got.nnz == 0

    def test_huge_cell_count_box(self, fmt_name):
        """The motivating case: a box with ~10^12 cells but 2 points.

        Point-by-cell querying is impossible here; structural reads are
        O(n)."""
        shape = (1 << 20, 1 << 20)
        coords = np.array([[500_000, 500_000], [9, 9]], dtype=np.uint64)
        t = SparseTensor(shape, coords, np.array([1.0, 2.0]))
        enc = get_format(fmt_name).encode(t)
        got = enc.read_box(Box((100, 100), (900_000, 900_000)))
        assert got.nnz == 1
        assert got.values[0] == 1.0


class TestBoxPointsProperty:
    @settings(max_examples=30, deadline=None)
    @given(sparse_tensors(), st.data())
    def test_equivalent_to_mask_filter(self, tensor, data):
        origin = tuple(
            data.draw(st.integers(0, max(0, m - 1))) for m in tensor.shape
        )
        size = tuple(
            data.draw(st.integers(0, m)) for m in tensor.shape
        )
        box = Box(origin, size)
        want = tensor.select_box(box)
        for name in available_formats():
            enc = get_format(name).encode(tensor)
            got = enc.read_box(box)
            assert got.same_points(want), name


class TestCSFPruning:
    def test_prunes_subtrees(self, rng):
        """The CSF path must not touch leaves outside the box: verified by
        counting the leaves it returns against a clustered layout."""
        # Two far-apart clusters; query only one.
        a = np.array([[1, i, j] for i in range(8) for j in range(8)],
                     dtype=np.uint64)
        b = a.copy()
        b[:, 0] = 60
        coords = np.vstack([a, b])
        t = SparseTensor((64, 64, 64), coords,
                         np.arange(coords.shape[0], dtype=float))
        fmt = get_format("CSF")
        enc = fmt.encode(t)
        got = enc.read_box(Box((0, 0, 0), (32, 64, 64)))
        assert got.nnz == 64
        assert np.all(got.coords[:, 0] == 1)

    def test_rectangular_dims_with_permutation(self, rng):
        shape = (100, 4, 30)
        coords = np.unique(
            np.column_stack(
                [rng.integers(0, m, 400, dtype=np.uint64) for m in shape]
            ),
            axis=0,
        )
        t = SparseTensor(shape, coords, rng.standard_normal(coords.shape[0]))
        box = Box((10, 1, 5), (50, 2, 20))
        enc = get_format("CSF").encode(t)
        assert enc.read_box(box).same_points(t.select_box(box))

    def test_value_positions_align(self, tensor_4d):
        fmt = get_format("CSF")
        result = fmt.build(tensor_4d.coords, tensor_4d.shape)
        box = Box((0, 0, 0, 0), tensor_4d.shape)
        coords, positions = fmt.box_points(
            result.payload, result.meta, tensor_4d.shape, box
        )
        # positions are leaf ids == stored value indices: decode agreement.
        decoded = fmt.decode(result.payload, result.meta, tensor_4d.shape)
        assert np.array_equal(coords, decoded[positions])
