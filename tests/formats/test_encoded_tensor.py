"""Unit tests for the EncodedTensor convenience wrapper."""

import numpy as np
import pytest

from repro.core import Box
from repro.formats import available_formats, get_format


class TestEncodedTensor:
    def test_footprints(self, tensor_3d):
        enc = get_format("LINEAR").encode(tensor_3d)
        assert enc.index_nbytes == tensor_3d.nnz * 8
        assert enc.value_nbytes == tensor_3d.nnz * 8
        assert enc.nbytes == enc.index_nbytes + enc.value_nbytes

    def test_read_dense_box(self, fig1_tensor):
        enc = get_format("GCSR++").encode(fig1_tensor)
        window = enc.read_dense_box(Box((0, 0, 0), (3, 3, 3)))
        assert window.shape == (3, 3, 3)
        assert np.array_equal(window, fig1_tensor.to_dense())

    def test_read_dense_box_partial_window(self, fig1_tensor):
        enc = get_format("CSF").encode(fig1_tensor)
        window = enc.read_dense_box(Box((0, 1, 1), (1, 2, 2)))
        assert window.shape == (1, 2, 2)
        # Cells (0,1,1)=2 and (0,1,2)=3 are present; the rest are zero.
        assert window[0, 0, 0] == 2.0
        assert window[0, 0, 1] == 3.0
        assert window[0, 1, 0] == 0.0

    @pytest.mark.parametrize("fmt_name", available_formats())
    def test_dense_box_all_formats(self, fig1_tensor, fmt_name):
        enc = get_format(fmt_name).encode(fig1_tensor)
        window = enc.read_dense_box(Box((0, 0, 0), (3, 3, 3)))
        assert np.array_equal(window, fig1_tensor.to_dense()), fmt_name

    def test_values_follow_map(self, tensor_2d):
        fmt = get_format("GCSC++")
        enc = fmt.encode(tensor_2d)
        result = fmt.build(tensor_2d.coords, tensor_2d.shape)
        assert np.array_equal(enc.values, tensor_2d.values[result.perm])

    def test_nnz_matches(self, tensor_2d):
        enc = get_format("COO").encode(tensor_2d)
        assert enc.nnz == tensor_2d.nnz
