"""Unit + property tests for format decode (the inverse transform)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import SparseTensor, invert_permutation
from repro.formats import available_formats, get_format

from ..property.test_roundtrip import sparse_tensors


@pytest.mark.parametrize("fmt_name", available_formats())
class TestDecodePerFormat:
    def test_round_trip_fixture(self, any_tensor, fmt_name):
        enc = get_format(fmt_name).encode(any_tensor)
        back = enc.decode()
        assert back.same_points(any_tensor)

    def test_coords_aligned_with_values(self, tensor_3d, fmt_name):
        """decode()[i] must be the coordinate whose value is values[i]."""
        fmt = get_format(fmt_name)
        result = fmt.build(tensor_3d.coords, tensor_3d.shape)
        coords = fmt.decode(result.payload, result.meta, tensor_3d.shape)
        if result.perm is None:
            assert np.array_equal(coords, tensor_3d.coords)
        else:
            assert np.array_equal(coords, tensor_3d.coords[result.perm])

    def test_empty(self, fmt_name):
        fmt = get_format(fmt_name)
        result = fmt.build(np.empty((0, 3), dtype=np.uint64), (4, 4, 4))
        coords = fmt.decode(result.payload, result.meta, (4, 4, 4))
        assert coords.shape == (0, 3)

    def test_fig1(self, fig1_tensor, fmt_name):
        enc = get_format(fmt_name).encode(fig1_tensor)
        assert enc.decode().same_points(fig1_tensor)


class TestDecodeProperty:
    @settings(max_examples=40, deadline=None)
    @given(sparse_tensors())
    def test_decode_inverts_build(self, tensor):
        for name in available_formats():
            enc = get_format(name).encode(tensor)
            back = enc.decode()
            assert back.same_points(tensor), name


class TestDecodeEdgeCases:
    def test_csf_rectangular_dims(self, rng):
        shape = (50, 3, 17)
        coords = np.unique(
            np.column_stack(
                [rng.integers(0, m, 150, dtype=np.uint64) for m in shape]
            ),
            axis=0,
        )
        t = SparseTensor(shape, coords, rng.standard_normal(coords.shape[0]))
        enc = get_format("CSF").encode(t)
        assert enc.decode().same_points(t)

    def test_gcsc_decode_order_is_column_major(self, fig1_tensor):
        """GCSC++ stores points column-by-column; decode preserves that."""
        fmt = get_format("GCSC++")
        result = fmt.build(fig1_tensor.coords, fig1_tensor.shape)
        coords = fmt.decode(result.payload, result.meta, fig1_tensor.shape)
        # Stored order == original[perm].
        assert np.array_equal(coords, fig1_tensor.coords[result.perm])

    def test_duplicate_points_survive_decode(self):
        coords = np.array([[1, 1], [1, 1], [2, 2]], dtype=np.uint64)
        vals = np.array([1.0, 2.0, 3.0])
        for name in available_formats():
            fmt = get_format(name)
            result = fmt.build(coords, (4, 4))
            out = fmt.decode(result.payload, result.meta, (4, 4))
            assert out.shape == (3, 2), name
            # Both duplicates present.
            assert (out == np.array([1, 1], dtype=np.uint64)).all(1).sum() == 2
