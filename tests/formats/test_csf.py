"""Unit tests for the CSF tree format."""

import numpy as np
import pytest

from repro.core import OpCounter, SparseTensor, is_permutation
from repro.formats import CSFFormat, sort_dimensions

from ..conftest import query_mix


@pytest.fixture
def fmt():
    return CSFFormat()


class TestDimensionSorting:
    def test_ascending(self):
        perm, sorted_shape = sort_dimensions((50, 10, 30))
        assert perm.tolist() == [1, 2, 0]
        assert sorted_shape == (10, 30, 50)

    def test_stable_on_ties(self):
        perm, _ = sort_dimensions((5, 5, 5))
        assert perm.tolist() == [0, 1, 2]


class TestBuild:
    def test_structural_invariants(self, fmt, any_tensor):
        result = fmt.build(any_tensor.coords, any_tensor.shape)
        fmt.validate_payload(result.payload, any_tensor.ndim)

    def test_map_is_permutation(self, fmt, any_tensor):
        result = fmt.build(any_tensor.coords, any_tensor.shape)
        assert is_permutation(result.perm)

    def test_leaf_count_is_n(self, fmt, tensor_3d):
        result = fmt.build(tensor_3d.coords, tensor_3d.shape)
        assert int(result.payload["nfibs"][-1]) == tensor_3d.nnz

    def test_level_counts_non_decreasing(self, fmt, tensor_4d):
        result = fmt.build(tensor_4d.coords, tensor_4d.shape)
        nfibs = result.payload["nfibs"].astype(np.int64)
        assert np.all(np.diff(nfibs) >= 0)

    def test_best_case_space(self, fmt):
        """A single chain: every point shares the same prefix -> n + d
        elements at the leaves + one node per upper level (§II-E best case)."""
        n = 32
        coords = np.column_stack(
            [np.zeros(n, dtype=np.uint64),
             np.zeros(n, dtype=np.uint64),
             np.arange(n, dtype=np.uint64)]
        )
        result = fmt.build(coords, (4, 4, n))
        nfibs = result.payload["nfibs"].tolist()
        assert nfibs == [1, 1, n]

    def test_worst_case_space(self, fmt):
        """Fully divergent roots: every point has a distinct first
        coordinate -> n nodes at every level (§II-E worst case)."""
        n = 16
        coords = np.column_stack(
            [np.arange(n, dtype=np.uint64)] * 3
        )
        result = fmt.build(coords, (n, n, n))
        assert result.payload["nfibs"].tolist() == [n, n, n]

    def test_dim_reordering_used(self, fmt):
        # Largest dim first in the input; CSF must root at the smallest.
        coords = np.array([[7, 0, 1], [9, 0, 1], [3, 1, 0]], dtype=np.uint64)
        result = fmt.build(coords, (100, 2, 3))
        assert result.meta["dim_perm"] == [1, 2, 0]
        assert result.meta["sorted_shape"] == [2, 3, 100]
        # Root level indexes the size-2 dimension: at most 2 nodes.
        assert int(result.payload["nfibs"][0]) <= 2

    def test_empty(self, fmt):
        result = fmt.build(np.empty((0, 3), dtype=np.uint64), (4, 4, 4))
        assert result.payload["nfibs"].tolist() == [0, 0, 0]

    def test_build_op_accounting(self, fmt, tensor_3d):
        counter = OpCounter()
        fmt.build(tensor_3d.coords, tensor_3d.shape, counter=counter)
        assert counter.transforms == tensor_3d.nnz * 3  # tree pass
        assert counter.sort_ops > 0


class TestRead:
    def test_mixed_queries(self, fmt, any_tensor, rng):
        enc = fmt.encode(any_tensor)
        queries, expected = query_mix(any_tensor, rng)
        found, vals = enc.read(queries)
        assert np.array_equal(found, expected)
        assert np.allclose(vals[: any_tensor.nnz], any_tensor.values)

    def test_faithful_matches_production(self, fmt, any_tensor, rng):
        enc = fmt.encode(any_tensor)
        queries, _ = query_mix(any_tensor, rng)
        prod = fmt.read(enc.payload, enc.meta, any_tensor.shape, queries)
        faith = fmt.read_faithful(enc.payload, enc.meta, any_tensor.shape,
                                  queries)
        assert np.array_equal(prod.found, faith.found)
        assert np.array_equal(prod.value_positions, faith.value_positions)

    def test_miss_at_every_level(self, fmt):
        t = SparseTensor.from_points((4, 4, 4), [(1, 1, 1)], [7.0])
        enc = fmt.encode(t)
        queries = np.array(
            [[0, 1, 1],  # miss at root
             [1, 0, 1],  # miss at level 1
             [1, 1, 0],  # miss at leaf
             [1, 1, 1]],  # hit
            dtype=np.uint64,
        )
        found, vals = enc.read(queries)
        assert found.tolist() == [False, False, False, True]
        assert vals.tolist() == [7.0]
        res = fmt.read_faithful(enc.payload, enc.meta, t.shape, queries)
        assert res.found.tolist() == [False, False, False, True]

    def test_descent_op_accounting(self, fmt, tensor_3d):
        enc = fmt.encode(tensor_3d)
        counter = OpCounter()
        q = 10
        fmt.read_faithful(enc.payload, enc.meta, tensor_3d.shape,
                          tensor_3d.coords[:q], counter=counter)
        # d levels of binary search: comparisons bounded by q*d*log2(n+1)
        n = tensor_3d.nnz
        assert counter.comparisons <= q * 3 * np.ceil(np.log2(n + 1))
        assert counter.comparisons >= q * 3  # at least one probe per level
        assert counter.pointer_lookups == q * 2 * 2  # 2 loads per non-leaf

    def test_rectangular_shape_query_permutation(self, fmt, rng):
        # Non-uniform dims: queries must be permuted identically to build.
        shape = (40, 3, 17)
        coords = np.column_stack(
            [rng.integers(0, m, size=200, dtype=np.uint64) for m in shape]
        )
        t = SparseTensor(shape, coords, rng.standard_normal(200)).deduplicated()
        enc = fmt.encode(t)
        found, vals = enc.read(t.coords)
        assert found.all()
        assert np.allclose(vals, t.values)

    def test_stored_elements_helper(self, fmt, tensor_3d):
        result = fmt.build(tensor_3d.coords, tensor_3d.shape)
        total = CSFFormat.stored_elements(result.payload)
        manual = sum(b.size for b in result.payload.values())
        assert total == manual
