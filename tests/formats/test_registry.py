"""Unit tests for the format registry."""

import pytest

from repro.core.errors import FormatError
from repro.formats import (
    EXTENSION_FORMATS,
    PAPER_FORMATS,
    SparseFormat,
    available_formats,
    get_format,
    register_format,
)


class TestRegistry:
    def test_paper_formats_in_presentation_order(self):
        assert PAPER_FORMATS == ("COO", "LINEAR", "GCSR++", "GCSC++", "CSF")

    def test_all_registered_formats_instantiate(self):
        for name in available_formats():
            fmt = get_format(name)
            assert isinstance(fmt, SparseFormat)
            assert fmt.name == name

    def test_case_insensitive(self):
        assert get_format("csf").name == "CSF"
        assert get_format("gcsr++").name == "GCSR++"

    def test_unknown_raises(self):
        with pytest.raises(FormatError, match="unknown format"):
            get_format("BTREE")

    def test_extensions_not_in_paper_set(self):
        assert set(EXTENSION_FORMATS).isdisjoint(PAPER_FORMATS)
        assert available_formats(include_extensions=False) == PAPER_FORMATS

    def test_register_custom(self):
        from repro.formats import COOFormat

        class MyFormat(COOFormat):
            name = "TEST-CUSTOM"

        register_format("TEST-CUSTOM", MyFormat)
        assert get_format("test-custom").name == "TEST-CUSTOM"
        with pytest.raises(FormatError, match="already registered"):
            register_format("TEST-CUSTOM", MyFormat)
