"""Unit tests for the COO baseline format."""

import numpy as np
import pytest

from repro.core import OpCounter
from repro.core.errors import FormatError
from repro.formats import COOFormat

from ..conftest import query_mix


@pytest.fixture
def fmt():
    return COOFormat()


class TestBuild:
    def test_adopts_buffer_verbatim(self, fmt, fig1_tensor):
        result = fmt.build(fig1_tensor.coords, fig1_tensor.shape)
        assert np.array_equal(result.payload["coords"], fig1_tensor.coords)
        assert result.perm is None

    def test_build_is_o1_no_ops_charged(self, fmt, fig1_tensor):
        counter = OpCounter()
        fmt.build(fig1_tensor.coords, fig1_tensor.shape, counter=counter)
        assert counter.total == 0

    def test_space_is_n_times_d(self, fmt, tensor_3d):
        result = fmt.build(tensor_3d.coords, tensor_3d.shape)
        assert result.index_nbytes() == tensor_3d.nnz * 3 * 8

    def test_empty(self, fmt):
        result = fmt.build(np.empty((0, 2), dtype=np.uint64), (4, 4))
        assert result.payload["coords"].shape == (0, 2)


class TestRead:
    def test_mixed_queries(self, fmt, any_tensor, rng):
        enc = fmt.encode(any_tensor)
        queries, expected = query_mix(any_tensor, rng)
        found, vals = enc.read(queries)
        assert np.array_equal(found, expected)
        # Values of present points come back in query order.
        assert np.allclose(vals[: any_tensor.nnz], any_tensor.values)

    def test_faithful_matches_production(self, fmt, tensor_3d, rng):
        enc = fmt.encode(tensor_3d)
        queries, _ = query_mix(tensor_3d, rng)
        prod = fmt.read(enc.payload, enc.meta, tensor_3d.shape, queries)
        faith = fmt.read_faithful(enc.payload, enc.meta, tensor_3d.shape, queries)
        assert np.array_equal(prod.found, faith.found)
        assert np.array_equal(prod.value_positions, faith.value_positions)

    def test_faithful_charges_n_times_q(self, fmt, tensor_2d):
        enc = fmt.encode(tensor_2d)
        queries = tensor_2d.coords[:17]
        counter = OpCounter()
        fmt.read_faithful(
            enc.payload, enc.meta, tensor_2d.shape, queries, counter=counter
        )
        assert counter.comparisons == tensor_2d.nnz * 17

    def test_empty_query(self, fmt, tensor_2d):
        enc = fmt.encode(tensor_2d)
        res = fmt.read(
            enc.payload, enc.meta, tensor_2d.shape,
            np.empty((0, 2), dtype=np.uint64),
        )
        assert res.found.shape == (0,)

    def test_query_against_empty_payload(self, fmt):
        result = fmt.build(np.empty((0, 2), dtype=np.uint64), (4, 4))
        res = fmt.read(
            result.payload, result.meta, (4, 4),
            np.array([[1, 1]], dtype=np.uint64),
        )
        assert not res.found[0]

    def test_missing_buffer_raises(self, fmt):
        with pytest.raises(FormatError, match="missing"):
            fmt.read({}, {}, (4, 4), np.array([[0, 0]], dtype=np.uint64))
