"""Unit tests for the sorted-COO variant (paper §II-A trade-off)."""

import numpy as np
import pytest

from repro.core import OpCounter, is_permutation, linearize
from repro.formats import SortedCOOFormat

from ..conftest import query_mix


@pytest.fixture
def fmt():
    return SortedCOOFormat()


class TestBuild:
    def test_sorted_by_linear_address(self, fmt, tensor_3d):
        result = fmt.build(tensor_3d.coords, tensor_3d.shape)
        addr = linearize(result.payload["coords"], tensor_3d.shape)
        assert np.all(addr[1:] >= addr[:-1])

    def test_map_is_permutation(self, fmt, tensor_3d):
        result = fmt.build(tensor_3d.coords, tensor_3d.shape)
        assert is_permutation(result.perm)

    def test_build_charges_sort(self, fmt, tensor_2d):
        counter = OpCounter()
        fmt.build(tensor_2d.coords, tensor_2d.shape, counter=counter)
        assert counter.sort_ops > 0
        assert counter.transforms == tensor_2d.nnz * 2

    def test_same_space_as_coo(self, fmt, tensor_4d):
        result = fmt.build(tensor_4d.coords, tensor_4d.shape)
        assert result.index_nbytes() == tensor_4d.nnz * 4 * 8


class TestRead:
    def test_mixed_queries(self, fmt, any_tensor, rng):
        enc = fmt.encode(any_tensor)
        queries, expected = query_mix(any_tensor, rng)
        found, vals = enc.read(queries)
        assert np.array_equal(found, expected)
        assert np.allclose(vals[: any_tensor.nnz], any_tensor.values)

    def test_faithful_is_logarithmic(self, fmt, tensor_3d):
        enc = fmt.encode(tensor_3d)
        counter = OpCounter()
        q = 16
        fmt.read_faithful(enc.payload, enc.meta, tensor_3d.shape,
                          tensor_3d.coords[:q], counter=counter)
        n = tensor_3d.nnz
        # O(q log n), crucially far below the unsorted O(q n).
        assert counter.comparisons <= q * int(np.ceil(np.log2(n + 1)))
        assert counter.comparisons < q * n / 4

    def test_query_past_last_address(self, fmt):
        from repro.core import SparseTensor

        t = SparseTensor.from_points((4, 4), [(0, 0)], [1.0])
        enc = fmt.encode(t)
        found, _ = enc.read(np.array([[3, 3]], dtype=np.uint64))
        assert not found[0]
