"""Unit tests for the HiCOO-style blocked COO extension."""

import numpy as np
import pytest

from repro.core import is_permutation
from repro.core.errors import FormatError
from repro.formats import COOFormat, HiCOOFormat

from ..conftest import query_mix


@pytest.fixture
def fmt():
    return HiCOOFormat(block_edge=16)


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(FormatError):
            HiCOOFormat(block_edge=12)

    def test_rejects_tiny_block(self):
        with pytest.raises(FormatError):
            HiCOOFormat(block_edge=1)

    def test_element_dtype_matches_edge(self):
        small = HiCOOFormat(block_edge=128)
        large = HiCOOFormat(block_edge=1024)
        coords = np.array([[0, 0]], dtype=np.uint64)
        assert small.build(coords, (256, 256)).payload["elems"].dtype == np.uint8
        assert large.build(coords, (2048, 2048)).payload["elems"].dtype == np.uint16


class TestBuild:
    def test_blocks_sorted_and_segments_align(self, fmt, tensor_3d):
        result = fmt.build(tensor_3d.coords, tensor_3d.shape)
        addrs = result.payload["block_addrs"].astype(np.int64)
        assert np.all(np.diff(addrs) > 0)  # unique, sorted
        ptr = result.payload["block_ptr"].astype(np.int64)
        assert ptr[0] == 0 and ptr[-1] == tensor_3d.nnz
        assert is_permutation(result.perm)

    def test_narrow_elements_smaller_than_coo(self, fmt, tensor_3d):
        """Clustered data: HiCOO's narrow offsets beat raw COO bytes."""
        coo = COOFormat().build(tensor_3d.coords, tensor_3d.shape)
        hic = fmt.build(tensor_3d.coords, tensor_3d.shape)
        assert hic.index_nbytes() < coo.index_nbytes()

    def test_empty(self, fmt):
        result = fmt.build(np.empty((0, 2), dtype=np.uint64), (32, 32))
        assert result.payload["block_addrs"].shape == (0,)


class TestRead:
    def test_mixed_queries(self, fmt, any_tensor, rng):
        enc = fmt.encode(any_tensor)
        queries, expected = query_mix(any_tensor, rng)
        found, vals = enc.read(queries)
        assert np.array_equal(found, expected)
        assert np.allclose(vals[: any_tensor.nnz], any_tensor.values)

    def test_faithful_matches_production(self, fmt, tensor_2d, rng):
        enc = fmt.encode(tensor_2d)
        queries, _ = query_mix(tensor_2d, rng)
        prod = fmt.read(enc.payload, enc.meta, tensor_2d.shape, queries)
        faith = fmt.read_faithful(enc.payload, enc.meta, tensor_2d.shape,
                                  queries)
        assert np.array_equal(prod.found, faith.found)
        assert np.array_equal(prod.value_positions, faith.value_positions)

    def test_query_in_absent_block(self, fmt):
        from repro.core import SparseTensor

        t = SparseTensor.from_points((64, 64), [(0, 0)], [1.0])
        enc = fmt.encode(t)
        found, _ = enc.read(np.array([[40, 40]], dtype=np.uint64))
        assert not found[0]
