"""Unit tests for the LINEAR format."""

import numpy as np
import pytest

from repro.core import IndexOverflowError, OpCounter
from repro.formats import LinearFormat

from ..conftest import query_mix


@pytest.fixture
def fmt():
    return LinearFormat()


class TestBuild:
    def test_stores_row_major_addresses(self, fmt, fig1_tensor):
        result = fmt.build(fig1_tensor.coords, fig1_tensor.shape)
        assert result.payload["addresses"].tolist() == [1, 4, 5, 25, 26]

    def test_preserves_input_order(self, fmt, tensor_3d):
        result = fmt.build(tensor_3d.coords, tensor_3d.shape)
        assert result.perm is None
        assert np.array_equal(
            result.payload["addresses"], tensor_3d.linear_addresses()
        )

    def test_space_is_n_elements(self, fmt, tensor_4d):
        result = fmt.build(tensor_4d.coords, tensor_4d.shape)
        assert result.index_nbytes() == tensor_4d.nnz * 8

    def test_build_charges_n_times_d_transforms(self, fmt, tensor_4d):
        counter = OpCounter()
        fmt.build(tensor_4d.coords, tensor_4d.shape, counter=counter)
        assert counter.transforms == tensor_4d.nnz * 4

    def test_overflow_shape_rejected(self, fmt):
        with pytest.raises(IndexOverflowError):
            fmt.build(np.array([[0, 0]], dtype=np.uint64), (2**33, 2**33))


class TestRead:
    def test_mixed_queries(self, fmt, any_tensor, rng):
        enc = fmt.encode(any_tensor)
        queries, expected = query_mix(any_tensor, rng)
        found, vals = enc.read(queries)
        assert np.array_equal(found, expected)
        assert np.allclose(vals[: any_tensor.nnz], any_tensor.values)

    def test_faithful_matches_production(self, fmt, tensor_2d, rng):
        enc = fmt.encode(tensor_2d)
        queries, _ = query_mix(tensor_2d, rng)
        prod = fmt.read(enc.payload, enc.meta, tensor_2d.shape, queries)
        faith = fmt.read_faithful(enc.payload, enc.meta, tensor_2d.shape, queries)
        assert np.array_equal(prod.found, faith.found)
        assert np.array_equal(prod.value_positions, faith.value_positions)

    def test_faithful_op_accounting(self, fmt, tensor_3d):
        enc = fmt.encode(tensor_3d)
        q = 23
        counter = OpCounter()
        fmt.read_faithful(
            enc.payload, enc.meta, tensor_3d.shape,
            tensor_3d.coords[:q], counter=counter,
        )
        assert counter.comparisons == tensor_3d.nnz * q
        assert counter.transforms == q * 3  # query linearization

    def test_duplicate_stored_addresses_last_match(self, fmt):
        # LINEAR without dedup stores both; read returns the newest
        # (last) position per the central duplicate policy
        # (repro.build.canonical.DUPLICATE_POLICY).
        coords = np.array([[1, 1], [1, 1]], dtype=np.uint64)
        result = fmt.build(coords, (4, 4))
        res = fmt.read(result.payload, result.meta, (4, 4),
                       np.array([[1, 1]], dtype=np.uint64))
        assert res.found[0]
        assert res.value_positions[0] == 1
