"""Public API integrity: exports resolve, docstrings exist, doctest runs."""

import doctest
import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.formats",
    "repro.build",
    "repro.storage",
    "repro.patterns",
    "repro.bench",
    "repro.analysis",
    "repro.algebra",
    "repro.interop",
    "repro.cli",
    "repro.obs",
    "repro.readapi",
    "repro.testing",
    "repro.storage.durability",
]

#: The checked-in public surface.  A PR that changes `repro.__all__` must
#: update this list deliberately — additions and removals alike.
EXPECTED_PUBLIC_API = sorted([
    "inner", "mttkrp", "mttkrp_encoded", "ttv",
    "Workload", "recommend",
    "run_experiment", "run_sweep",
    "CanonicalCoords", "DUPLICATE_POLICY", "encode_all", "merge_sorted_runs",
    "Box", "IndexOverflowError", "OpCounter", "ReproError", "SparseTensor",
    "delinearize", "linearize",
    "EXTENSION_FORMATS", "PAPER_FORMATS",
    "EncodedTensor", "SparseFormat",
    "available_formats", "get_format", "register_format", "resolve_format",
    "Readable", "ReadOutcome",
    "obs",
    "GSPPattern", "MSPPattern", "TSPPattern",
    "characterize", "dataset_suite", "make_pattern",
    "load_dataset", "read_matrix_market", "read_tns",
    "write_matrix_market", "write_tns",
    "fold_to_scipy", "from_scipy", "to_scipy",
    "AdaptiveStore", "StreamingWriter", "convert_store",
    "BlockedDataset", "FragmentCache", "FragmentStore",
    "FsckReport", "RetryPolicy", "fsck",
    "ReadOptions", "ShardedStore", "StoreOptions", "StoreSnapshot",
    "MigrationDecision", "MigrationPolicy",
    "direct_convert", "register_kernel", "registered_pairs",
    "__version__",
])

#: Exports the observability subsystem must keep.
EXPECTED_OBS_API = sorted([
    "DEFAULT_BUCKETS", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NULL_SPAN", "Span", "counter_add", "disable", "enable",
    "enabled_from_env", "gauge_set", "get_registry", "is_enabled", "observe",
    "render_table", "reset", "snapshot", "span", "to_json",
    # Workload ledger (per-fragment observations driving format migration).
    "LEDGER_VERSION", "FragmentWorkload", "WorkloadLedger",
])


class TestExports:
    @pytest.mark.parametrize("module_name", ["repro"] + SUBPACKAGES)
    def test_module_imports(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name",
                             ["repro", "repro.core", "repro.formats",
                              "repro.build", "repro.storage",
                              "repro.patterns", "repro.bench",
                              "repro.analysis"])
    def test_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_version(self):
        assert repro.__version__

    def test_no_private_leaks_in_all(self):
        assert all(not n.startswith("_") or n == "__version__"
                   for n in repro.__all__)

    def test_public_surface_snapshot(self):
        """`repro.__all__` must match the checked-in surface list exactly."""
        assert sorted(repro.__all__) == EXPECTED_PUBLIC_API

    def test_obs_surface_snapshot(self):
        assert sorted(repro.obs.__all__) == EXPECTED_OBS_API

    def test_readapi_protocol_exports(self):
        from repro.readapi import Readable, ReadOutcome

        assert repro.Readable is Readable
        assert repro.ReadOutcome is ReadOutcome


class TestStoreReadTuningSurface:
    """Every storage-backed Readable shares one keyword-only tuning surface.

    ``repro.readapi.STORE_READ_TUNING`` is the checked-in snapshot; a PR
    that renames or drops one of these parameters on any store's
    ``read_points``/``read_box`` must update the snapshot deliberately
    (and with it ``docs/READ_PATH.md``).
    """

    def test_snapshot_value(self):
        from repro.readapi import STORE_READ_TUNING

        assert STORE_READ_TUNING == (
            "options", "faithful", "check_crc", "parallel", "max_workers",
        )

    @pytest.mark.parametrize("cls_name", [
        "FragmentStore", "AdaptiveStore", "BlockedDataset", "ShardedStore",
    ])
    @pytest.mark.parametrize("method", ["read_points", "read_box"])
    def test_stores_accept_tuning_keywords(self, cls_name, method):
        from repro.readapi import STORE_READ_TUNING

        sig = inspect.signature(getattr(getattr(repro, cls_name), method))
        for name in STORE_READ_TUNING:
            param = sig.parameters.get(name)
            assert param is not None, f"{cls_name}.{method} lacks {name}"
            assert param.kind is inspect.Parameter.KEYWORD_ONLY, (
                f"{cls_name}.{method}({name}) must be keyword-only"
            )

    def test_stores_are_readable(self):
        for cls_name in ("FragmentStore", "AdaptiveStore", "BlockedDataset",
                         "ShardedStore"):
            cls = getattr(repro, cls_name)
            assert issubclass(cls, repro.Readable) or all(
                hasattr(cls, m) for m in ("read_points", "read_box")
            )

    def test_stores_accept_options_objects(self):
        """Constructors take ``options=StoreOptions`` (the consolidated API)."""
        for cls_name in ("FragmentStore", "AdaptiveStore", "BlockedDataset",
                         "ShardedStore"):
            sig = inspect.signature(getattr(repro, cls_name).__init__)
            param = sig.parameters.get("options")
            assert param is not None, f"{cls_name} lacks options="
            assert param.kind is inspect.Parameter.KEYWORD_ONLY


class TestDocstrings:
    def test_package_doctest(self):
        """The quickstart in the package docstring must actually run."""
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 2

    @pytest.mark.parametrize("obj", [
        repro.SparseTensor,
        repro.FragmentStore,
        repro.get_format,
        repro.recommend,
        repro.mttkrp,
        repro.linearize,
    ])
    def test_public_callables_documented(self, obj):
        assert inspect.getdoc(obj), f"{obj} lacks a docstring"

    def test_format_classes_documented(self):
        from repro.formats import available_formats, get_format

        for name in available_formats():
            fmt = get_format(name)
            assert inspect.getdoc(type(fmt)), name
            assert inspect.getdoc(type(fmt).build)
            assert inspect.getdoc(type(fmt).read_faithful) or inspect.getdoc(
                repro.formats.SparseFormat.read_faithful
            )
