"""Per-fragment workload ledger (the observe half of adaptive migration).

The advisor's Table IV scoring needs a workload — how often a fragment
is read, point vs box mix, how selective the queries are, how long
decodes take.  At write time :class:`~repro.storage.adaptive.
AdaptiveStore` guesses from a user-supplied
:class:`~repro.analysis.advisor.Workload`; this module records what
actually happened so the migration policy
(:mod:`repro.storage.migrate`) can revisit the guess online.

:class:`FragmentWorkload`
    One fragment's observed counters — plain data, JSON-friendly.
:class:`WorkloadLedger`
    Thread-safe map ``fragment file name → FragmentWorkload``.  Stores
    update it on the read path (outside their fragment locks) and
    persist it beside the manifest as ``workload.json`` at durable
    points (``pack_wal`` / ``compact`` / ``migrate`` / ``close``) —
    **never** per read, so losing the last few observations in a crash
    is acceptable by design (the ledger is advisory, not data).

The on-disk schema is one JSON object::

    {"version": 1,
     "fragments": {"frag-000001.bin": {"point_reads": 12, ...}, ...}}

Unknown keys are ignored on load (forward compatibility) and entries
for files no longer in the manifest are pruned at save time.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

#: On-disk schema version for ``workload.json``.
LEDGER_VERSION = 1

#: Counter fields persisted per fragment, in schema order.
_FIELDS = (
    "point_reads",
    "box_reads",
    "points_queried",
    "points_matched",
    "load_seconds",
    "writes",
)


@dataclass
class FragmentWorkload:
    """Observed access counters for one fragment.

    Attributes
    ----------
    point_reads / box_reads:
        How many ``read_points`` / ``read_box`` calls visited the
        fragment (post-planner: pruned fragments are *not* counted —
        the ledger measures work done, not queries issued).
    points_queried / points_matched:
        Point-query volume and hits against this fragment (point reads
        only); their ratio is the observed selectivity.
    load_seconds:
        Cumulative wall-clock spent loading + decoding the fragment on
        cache misses.
    writes:
        Times the fragment's contents were (re)written — 1 for a normal
        fragment, bumped when a merge/migration produces it.
    """

    point_reads: int = 0
    box_reads: int = 0
    points_queried: int = 0
    points_matched: int = 0
    load_seconds: float = 0.0
    writes: int = 0

    @property
    def reads(self) -> int:
        """Total read operations that visited the fragment."""
        return self.point_reads + self.box_reads

    @property
    def selectivity(self) -> float:
        """Observed hit rate of point queries (0 when never point-read)."""
        if self.points_queried <= 0:
            return 0.0
        return self.points_matched / self.points_queried

    def merge(self, other: "FragmentWorkload") -> "FragmentWorkload":
        """Counter-wise sum (used when fragments are merged/migrated)."""
        return FragmentWorkload(
            point_reads=self.point_reads + other.point_reads,
            box_reads=self.box_reads + other.box_reads,
            points_queried=self.points_queried + other.points_queried,
            points_matched=self.points_matched + other.points_matched,
            load_seconds=self.load_seconds + other.load_seconds,
            writes=self.writes + other.writes,
        )

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in _FIELDS}

    @classmethod
    def from_dict(cls, data: dict) -> "FragmentWorkload":
        kwargs = {}
        for name in _FIELDS:
            if name in data:
                cast = float if name == "load_seconds" else int
                kwargs[name] = cast(data[name])
        return cls(**kwargs)


class WorkloadLedger:
    """Thread-safe per-fragment workload accounting.

    Keys are fragment **file names** (``frag-000123.bin``) — stable
    across store reopens, unique within a store directory, and cheap to
    derive on the read path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, FragmentWorkload] = {}
        self._dirty = False

    # -- recording ------------------------------------------------------

    def _entry(self, name: str) -> FragmentWorkload:
        entry = self._entries.get(name)
        if entry is None:
            entry = self._entries[name] = FragmentWorkload()
        return entry

    def record_point_read(
        self, name: str, *, queried: int, matched: int
    ) -> None:
        with self._lock:
            entry = self._entry(name)
            entry.point_reads += 1
            entry.points_queried += int(queried)
            entry.points_matched += int(matched)
            self._dirty = True

    def record_box_read(self, name: str, *, matched: int) -> None:
        # ``matched`` is accepted for symmetry but deliberately not
        # folded into ``points_matched`` — selectivity measures *point*
        # queries, and box hits would push it past 100%.
        with self._lock:
            self._entry(name).box_reads += 1
            self._dirty = True

    def record_load(self, name: str, seconds: float) -> None:
        with self._lock:
            self._entry(name).load_seconds += float(seconds)
            self._dirty = True

    def record_write(self, name: str) -> None:
        with self._lock:
            self._entry(name).writes += 1
            self._dirty = True

    def merge_into(self, old_names: Iterable[str], new_name: str) -> None:
        """Fold several fragments' history into their merged successor.

        Compaction replaces N fragments with one holding the union of
        their points; the successor inherits the summed observations so
        the migration policy keeps seeing the data's true access history.
        """
        with self._lock:
            merged = self._entries.get(new_name, FragmentWorkload())
            for name in old_names:
                old = self._entries.pop(name, None)
                if old is not None:
                    merged = merged.merge(old)
            self._entries[new_name] = merged
            self._dirty = True

    def carry_over(self, old_name: str, new_name: str) -> None:
        """Transfer (merge) history when a fragment is rewritten in place.

        Migration replaces ``frag-A`` with ``frag-B`` holding the same
        points; the observed workload describes the *data*, so it moves
        with it.  The write counter is bumped to record the rewrite.
        """
        with self._lock:
            old = self._entries.pop(old_name, None) or FragmentWorkload()
            merged = self._entries.get(new_name, FragmentWorkload()).merge(old)
            merged.writes += 1
            self._entries[new_name] = merged
            self._dirty = True

    # -- queries --------------------------------------------------------

    def get(self, name: str) -> FragmentWorkload | None:
        with self._lock:
            entry = self._entries.get(name)
            return dataclasses.replace(entry) if entry is not None else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(sorted(self._entries))

    def snapshot(self) -> dict[str, FragmentWorkload]:
        """A point-in-time copy of every entry."""
        with self._lock:
            return {
                name: dataclasses.replace(entry)
                for name, entry in self._entries.items()
            }

    @property
    def dirty(self) -> bool:
        """Unsaved observations since the last :meth:`save`/:meth:`load`."""
        with self._lock:
            return self._dirty

    # -- persistence ----------------------------------------------------

    def prune(self, keep: Iterable[str]) -> None:
        """Drop entries whose fragment left the manifest."""
        keep_set = set(keep)
        with self._lock:
            gone = [n for n in self._entries if n not in keep_set]
            for name in gone:
                del self._entries[name]
            if gone:
                self._dirty = True

    def to_json_bytes(self) -> bytes:
        with self._lock:
            doc = {
                "version": LEDGER_VERSION,
                "fragments": {
                    name: entry.to_dict()
                    for name, entry in sorted(self._entries.items())
                },
            }
        return (json.dumps(doc, indent=1) + "\n").encode("utf-8")

    def save(self, path: Path, *, fsync: bool = False) -> None:
        """Atomically persist the ledger (write-temp + rename)."""
        blob = self.to_json_bytes()
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(blob)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        with self._lock:
            self._dirty = False

    @classmethod
    def load(cls, path: Path) -> "WorkloadLedger":
        """Load a ledger; damaged or absent files yield an empty one.

        The ledger is advisory — a corrupt ``workload.json`` must never
        block opening the store, it just resets the observations.
        """
        ledger = cls()
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, ValueError):
            return ledger
        fragments = doc.get("fragments")
        if not isinstance(fragments, dict):
            return ledger
        for name, data in fragments.items():
            if isinstance(data, dict):
                try:
                    ledger._entries[str(name)] = FragmentWorkload.from_dict(
                        data
                    )
                except (TypeError, ValueError):
                    continue
        return ledger
