"""Context-manager spans: wall time + bytes + nnz + op accounting.

A span brackets one logical operation on a hot path::

    with span("fragment.write", format="LINEAR") as sp:
        blob = pack(...)
        sp.add_bytes_out(len(blob))
        sp.add_nnz(n)

On exit it records, into the global registry and under the span's labels:

- ``<name>.seconds`` — latency histogram,
- ``<name>.calls`` — invocation counter,
- ``<name>.bytes_in`` / ``<name>.bytes_out`` / ``<name>.nnz`` — counters,
  only when the span was fed those quantities,
- ``<name>.ops.<class>`` — the tallies of the span's attached
  :class:`~repro.core.costmodel.OpCounter` (see :attr:`Span.ops`), so
  Table-I-style op accounting and wall-clock metrics share one report.

When the layer is disabled (``obs.disable()`` / ``REPRO_OBS=0``),
:func:`span` returns a shared no-op span and the whole construct costs one
branch plus a ``with`` block.
"""

from __future__ import annotations

import time
from typing import Any

from ..core.costmodel import NULL_COUNTER, OpCounter
from . import metrics as _m


class Span:
    """A timed scope that reports into the metrics registry on exit."""

    __slots__ = ("name", "labels", "bytes_in", "bytes_out", "nnz",
                 "_ops", "_t0")

    def __init__(self, name: str, labels: dict[str, Any]):
        self.name = name
        self.labels = labels
        self.bytes_in = 0
        self.bytes_out = 0
        self.nnz = 0
        self._ops: OpCounter | None = None
        self._t0 = 0.0

    # -- payload annotations -------------------------------------------

    def add_bytes_in(self, n: int) -> None:
        self.bytes_in += int(n)

    def add_bytes_out(self, n: int) -> None:
        self.bytes_out += int(n)

    def add_nnz(self, n: int) -> None:
        self.nnz += int(n)

    @property
    def ops(self) -> OpCounter:
        """Span-attached :class:`OpCounter`; its tallies are exported as
        ``<name>.ops.*`` counters when the span closes."""
        if self._ops is None:
            self._ops = OpCounter()
        return self._ops

    # -- context manager -----------------------------------------------

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._t0
        if not _m.is_enabled():  # disabled mid-span: drop silently
            return
        reg = _m.get_registry()
        reg.histogram(f"{self.name}.seconds", **self.labels).observe(elapsed)
        reg.counter(f"{self.name}.calls", **self.labels).inc()
        if self.bytes_in:
            reg.counter(f"{self.name}.bytes_in", **self.labels).inc(self.bytes_in)
        if self.bytes_out:
            reg.counter(f"{self.name}.bytes_out", **self.labels).inc(self.bytes_out)
        if self.nnz:
            reg.counter(f"{self.name}.nnz", **self.labels).inc(self.nnz)
        if self._ops is not None:
            for op_class, count in self._ops.snapshot().items():
                if op_class != "total" and count:
                    reg.counter(
                        f"{self.name}.ops.{op_class}", **self.labels
                    ).inc(count)


class _NullSpan:
    """Shared do-nothing span returned while the layer is disabled."""

    __slots__ = ()

    def add_bytes_in(self, n: int) -> None:
        pass

    def add_bytes_out(self, n: int) -> None:
        pass

    def add_nnz(self, n: int) -> None:
        pass

    @property
    def ops(self) -> OpCounter:
        return NULL_COUNTER

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


def span(name: str, **labels: Any) -> Span | _NullSpan:
    """Open a recording span, or the shared no-op span when disabled."""
    if not _m.is_enabled():
        return NULL_SPAN
    return Span(name, labels)
