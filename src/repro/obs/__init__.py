"""Observability layer: always-on metrics for the production hot paths.

The paper's contribution is *measurement* (Table I op counts, Fig 3/4/5
trajectories), but benchmarks only see what the harness times.  This
subsystem gives the production paths — format encode/read, fragment
write/read/compact, overlap pruning, the parallel packer, the adaptive
advisor — first-class counters, gauges, and latency histograms, feeding the
same workload statistics that drive format selection
(:mod:`repro.analysis.advisor`).

Quick tour::

    from repro import obs

    with obs.span("my.operation", format="LINEAR") as sp:
        sp.add_nnz(n)                 # annotate work done
        sp.ops.charge_comparisons(k)  # Table-I-style op accounting

    obs.snapshot()          # JSON-able dict of every metric
    print(obs.render_table())
    obs.to_json()           # export
    obs.reset()             # fresh state
    obs.disable()           # near-zero overhead; also REPRO_OBS=0

The registry is thread-safe (worker threads record concurrently) and
process-global: :func:`get_registry` returns the instance everything
records into.

The durability layer (:mod:`repro.storage.durability`) reports through
this registry too: ``store.corrupt_fragments`` (CRC failures seen by
reads), ``store.fragments_quarantined``, ``store.io_retries`` (transient
errors absorbed by the retry policy), ``store.tmp_cleaned`` (stale temp
files removed at open), ``store.orphan_fragments`` (uncommitted fragments
detected at open), ``store.rescan_skipped``, and ``store.fsck_runs``.

The read pipeline (:mod:`repro.storage.readpath`) records the
decoded-fragment cache: ``store.cache.hits`` / ``store.cache.misses`` /
``store.cache.evictions`` / ``store.cache.invalidations`` counters plus
the ``store.cache.bytes`` gauge (resident decoded bytes, bounded by the
store's ``cache_bytes``).  ``repro stats --store DIR --cache-bytes N``
prints a dedicated cache section from the same totals.

The read-side query planner (:mod:`repro.storage.planner`) records under
``store.plan.*``: ``store.plan.fragments_pruned_index`` (fragments the
spatial interval index excluded before bbox tests ran),
``store.plan.fragments_pruned_zonemap`` (fragments whose zone map proved
no query address can be present), ``store.plan.index_rebuilds`` (interval
index rebuilt after a manifest generation bump),
``store.plan.zone_backfilled`` (pre-v2 manifest entries given zone maps
lazily), ``store.plan.crc_memo_hits`` (whole-file CRC skipped under
``crc_mode="once"``), and ``store.plan.lazy_bytes_avoided`` (bytes mapped
instead of read eagerly under ``lazy_load=True``).  The bbox-level
``store.fragments_pruned`` counter keeps its pre-planner meaning — only
bounding-box rejections — so existing dashboards stay comparable.
``repro stats --store DIR --plan`` prints a planner section from these.

The write-ahead log (:mod:`repro.storage.wal`) records under
``store.wal.*``: ``store.wal.appends`` (durable records written),
``store.wal.records_replayed`` (records recovered at open),
``store.wal.segments_sealed`` / ``store.wal.segments_retired``
(segment lifecycle), ``store.wal.torn_tails`` (torn final records
truncated during replay), ``store.wal.pack_runs``,
``store.wal.snapshots``, ``store.wal.gc_deleted`` (retired fragment
files removed by :meth:`~repro.storage.store.FragmentStore.gc`), and
the ``store.wal.bytes`` gauge (live log footprint).  ``repro stats
--wal`` prints a WAL section from these plus ``store.wal_stats()``.

Format migration (:mod:`repro.storage.migrate`) records
``migrate.direct`` / ``migrate.fallback`` (conversions served by a
direct payload→payload kernel vs the canonical rebuild, labelled
``src``/``dst``), ``store.migrate.fragments`` (fragments re-formatted
in place), and ``store.migrate.noop`` (migrations skipped because the
fragment already had the target format).  The *workload ledger*
(:mod:`repro.obs.workload`) is this layer's per-fragment counterpart:
per-fragment read/write counts, point-vs-box mix, query selectivity and
load time, persisted beside the store manifest as ``workload.json`` and
consumed by the online migration policy.  ``repro stats --store DIR
--migration`` prints both.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_add,
    disable,
    enable,
    enabled_from_env,
    gauge_set,
    get_registry,
    is_enabled,
    observe,
    render_table,
    reset,
    snapshot,
    to_json,
)
from .spans import NULL_SPAN, Span, span
from .workload import LEDGER_VERSION, FragmentWorkload, WorkloadLedger

__all__ = [
    "LEDGER_VERSION",
    "FragmentWorkload",
    "WorkloadLedger",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "counter_add",
    "disable",
    "enable",
    "enabled_from_env",
    "gauge_set",
    "get_registry",
    "is_enabled",
    "observe",
    "render_table",
    "reset",
    "snapshot",
    "span",
    "to_json",
]
