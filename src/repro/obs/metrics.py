"""Thread-safe, zero-dependency metrics primitives.

The registry holds three metric kinds, all identified by ``(name, labels)``:

``Counter``
    Monotonic tally (bytes written, fragments pruned, advisor decisions).
``Gauge``
    Last-set value (compression ratio, worker utilization).
``Histogram``
    Fixed-boundary bucketed distribution plus count/sum/min/max — used for
    wall-clock latencies (the bucket boundaries default to powers of ten
    between 1 µs and 10 s, Prometheus ``le`` semantics).

Everything is guarded by per-metric locks (the parallel writer records from
worker threads) and designed to be near-zero-overhead when the layer is
disabled: every recording helper checks one module-level boolean first, so
a disabled library does a single attribute load + branch per event.

Set ``REPRO_OBS=0`` in the environment to start disabled; flip at runtime
with :func:`enable` / :func:`disable`.
"""

from __future__ import annotations

import bisect
import json
import os
import threading
from typing import Any, Mapping

#: Default histogram bucket upper bounds (seconds); +inf is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

LabelItems = tuple[tuple[str, str], ...]


def enabled_from_env(environ: Mapping[str, str] | None = None) -> bool:
    """Whether ``REPRO_OBS`` asks for the layer to start enabled."""
    env = os.environ if environ is None else environ
    return env.get("REPRO_OBS", "1").strip().lower() not in ("0", "false", "off")


_enabled: bool = enabled_from_env()


def enable() -> None:
    """Turn metric recording on (the default unless ``REPRO_OBS=0``)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn metric recording off; instrumented paths become no-ops."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def _label_key(labels: Mapping[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing tally."""

    kind = "counter"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "value": self._value,
        }


class Gauge:
    """Last-written value."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "value": self._value,
        }


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max.

    ``buckets`` are inclusive upper bounds in ascending order; observations
    above the last bound land in the implicit +inf bucket.
    """

    kind = "histogram"
    __slots__ = (
        "name", "labels", "buckets",
        "_lock", "_counts", "_count", "_sum", "_min", "_max",
    )

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be ascending")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "buckets": list(self.buckets),
            "bucket_counts": list(self._counts),
        }


class MetricsRegistry:
    """Get-or-create store of metrics keyed by kind + name + labels."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, str, LabelItems], Any] = {}

    def _get_or_create(self, kind: str, name: str, labels: LabelItems, factory):
        key = (kind, name, labels)
        metric = self._metrics.get(key)
        if metric is not None:
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _label_key(labels)
        return self._get_or_create(
            "counter", name, key, lambda: Counter(name, key)
        )

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _label_key(labels)
        return self._get_or_create(
            "gauge", name, key, lambda: Gauge(name, key)
        )

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = _label_key(labels)
        return self._get_or_create(
            "histogram", name, key, lambda: Histogram(name, key, buckets)
        )

    # -- reporting -----------------------------------------------------

    def metrics(self) -> list[Any]:
        """All metrics, sorted by (name, labels) for stable output."""
        with self._lock:
            items = list(self._metrics.items())
        items.sort(key=lambda kv: (kv[0][1], kv[0][2], kv[0][0]))
        return [m for _, m in items]

    def snapshot(self) -> dict[str, Any]:
        """JSON-able view of every metric's current state."""
        out: dict[str, list[dict[str, Any]]] = {
            "counters": [], "gauges": [], "histograms": [],
        }
        for metric in self.metrics():
            out[metric.kind + "s"].append(metric.as_dict())
        return out

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def reset(self) -> None:
        """Drop every metric (fresh registry state)."""
        with self._lock:
            self._metrics.clear()

    def render_table(self, *, title: str = "repro observability") -> str:
        """Human-readable dump: one line per metric."""
        rows: list[tuple[str, str, str]] = []
        for metric in self.metrics():
            labels = ",".join(f"{k}={v}" for k, v in metric.labels)
            if metric.kind == "histogram":
                if metric.count:
                    value = (
                        f"n={metric.count} mean={_fmt_seconds(metric.mean)} "
                        f"max={_fmt_seconds(metric._max)}"
                    )
                else:
                    value = "n=0"
            elif metric.kind == "gauge":
                value = f"{metric.value:.4g}"
            else:
                value = f"{metric.value:,}"
            rows.append((metric.name, labels, value))
        if not rows:
            return f"{title}\n(no metrics recorded)"
        w0 = max(len(r[0]) for r in rows + [("metric", "", "")])
        w1 = max(len(r[1]) for r in rows + [("", "labels", "")])
        lines = [title, f"{'metric':<{w0}}  {'labels':<{w1}}  value",
                 "-" * (w0 + w1 + 9)]
        for name, labels, value in rows:
            lines.append(f"{name:<{w0}}  {labels:<{w1}}  {value}")
        return "\n".join(lines)


def _fmt_seconds(v: float) -> str:
    """Format a duration-like quantity with a sensible unit."""
    if v >= 1.0:
        return f"{v:.3g}s"
    if v >= 1e-3:
        return f"{v * 1e3:.3g}ms"
    return f"{v * 1e6:.3g}us"


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry all instrumentation records into."""
    return _REGISTRY


# ----------------------------------------------------------------------
# Fast recording helpers (single branch when disabled)
# ----------------------------------------------------------------------


def counter_add(name: str, amount: int | float = 1, **labels: Any) -> None:
    """Increment a counter iff the layer is enabled."""
    if not _enabled:
        return
    _REGISTRY.counter(name, **labels).inc(amount)


def gauge_set(name: str, value: float, **labels: Any) -> None:
    """Set a gauge iff the layer is enabled."""
    if not _enabled:
        return
    _REGISTRY.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record a histogram observation iff the layer is enabled."""
    if not _enabled:
        return
    _REGISTRY.histogram(name, **labels).observe(value)


def snapshot() -> dict[str, Any]:
    """Convenience: :meth:`MetricsRegistry.snapshot` on the global registry."""
    return _REGISTRY.snapshot()


def reset() -> None:
    """Convenience: drop all metrics in the global registry."""
    _REGISTRY.reset()


def to_json(*, indent: int | None = 2) -> str:
    """Convenience: JSON export of the global registry."""
    return _REGISTRY.to_json(indent=indent)


def render_table(*, title: str = "repro observability") -> str:
    """Convenience: human-readable dump of the global registry."""
    return _REGISTRY.render_table(title=title)
