"""CanonicalCoords — the shared intermediate of every BUILD (write side).

The paper benchmarks five BUILD algorithms on the *same* unsorted
coordinate buffer, yet each of them re-derives the same prerequisites:
the row-major linear addresses (LINEAR, GCSR++/GCSC++ fold, COO-SORTED),
a stable sort by those addresses (COO-SORTED, CSF with the identity
dimension permutation), and the duplicate-run structure (store-level
dedup).  Chou et al.'s format-abstraction line of work expresses formats
as assemblers over one shared coordinate intermediate; this module is
that intermediate for our BUILD/READ contract.

Every derived artifact is computed lazily, exactly once, and cached on
the instance, so ``encode_all`` over N formats pays for linearize + sort
once instead of N times.  Observability:

``build.canonical.linearize``
    linearize passes actually computed,
``build.canonical.sorts``
    stable sorts actually computed (address argsorts and permuted-order
    sorts alike),
``build.canonical.dedup_runs``
    duplicate-run computations,
``build.canonical.reuse``
    cache hits — a request for an artifact that was already computed.

Duplicate policy
----------------
The **central duplicate-coordinate policy** of the codebase lives here:

``DUPLICATE_POLICY = "last"`` — when the same coordinate appears more
than once in one input buffer, the *last* occurrence in input order
wins.  This matches overwrite semantics of repeated writes
(:meth:`SparseTensor.deduplicated` with ``keep="last"``, fragment-store
newest-wins merges) and, since this PR, every format READ: a query for a
duplicated coordinate returns the value written last.  Formats never
drop duplicates on their own — deduplication is an explicit
:meth:`CanonicalCoords.dedup_selection` / store-level step — but when a
payload does carry duplicates, all read paths agree on the winner.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.boundary import Box, extract_boundary
from ..core.dtypes import as_index_array, fits_index_dtype
from ..core.errors import ShapeError
from ..core.linearize import (
    DEFAULT_ADDRESS_ORDER,
    delinearize_order,
    fits_addr_order,
    linearize,
    linearize_order,
    validate_addr_order,
)
from ..core.sorting import lexsort_rows, stable_argsort, segment_boundaries
from ..obs import counter_add

#: The codebase-wide resolution rule for duplicate coordinates in one
#: buffer: the last occurrence in input order wins (newest write).
DUPLICATE_POLICY = "last"


class CanonicalCoords:
    """One input buffer's canonical form: lazy, cached build prerequisites.

    Construct via :meth:`from_coords` (the paper's input contract — an
    unsorted ``(n, d)`` coordinate buffer) or :meth:`from_addresses`
    (payload-to-payload paths that never materialized coordinates).
    Either representation derives the other on demand, so a LINEAR
    payload can be converted without ever delinearizing and a COO buffer
    can be encoded into every format with a single linearize pass.

    Instances are immutable views plus caches; they never mutate the
    buffers they were given.
    """

    def __init__(
        self,
        shape: Sequence[int],
        *,
        coords: np.ndarray | None = None,
        addresses: np.ndarray | None = None,
        sort_perm: np.ndarray | None = None,
        sorted_addresses: np.ndarray | None = None,
        addr_order: str = DEFAULT_ADDRESS_ORDER,
    ):
        self.shape = tuple(int(m) for m in shape)
        self.addr_order = validate_addr_order(addr_order)
        if coords is None and addresses is None:
            raise ShapeError(
                "CanonicalCoords needs coords or addresses"
            )
        self._coords = coords
        self._addresses = addresses
        self._sort_perm = sort_perm
        self._sorted_addresses = sorted_addresses
        self._runs: tuple[np.ndarray, np.ndarray] | None = None
        self._sorted_coords: np.ndarray | None = None
        self._bbox: Box | None = None
        if coords is not None:
            self._n = int(coords.shape[0])
        else:
            self._n = int(addresses.shape[0])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_coords(
        cls,
        coords: np.ndarray,
        shape: Sequence[int],
        *,
        addr_order: str = DEFAULT_ADDRESS_ORDER,
    ) -> "CanonicalCoords":
        """Wrap an unsorted ``(n, d)`` coordinate buffer."""
        coords = as_index_array(coords)
        if coords.ndim != 2:
            raise ShapeError(f"coords must be (n, d); got {coords.shape}")
        if coords.shape[1] != len(shape):
            raise ShapeError(
                f"coords have {coords.shape[1]} dims, shape has {len(shape)}"
            )
        return cls(shape, coords=coords, addr_order=addr_order)

    @classmethod
    def from_addresses(
        cls,
        addresses: np.ndarray,
        shape: Sequence[int],
        *,
        is_sorted: bool = False,
        sort_perm: np.ndarray | None = None,
        sorted_addresses: np.ndarray | None = None,
        addr_order: str = DEFAULT_ADDRESS_ORDER,
    ) -> "CanonicalCoords":
        """Wrap a linear-address vector; coordinates derive lazily.

        ``is_sorted=True`` declares the vector already ascending, so the
        sort permutation is the identity and no sort is ever paid.
        Alternatively a caller that *knows* the sort permutation (the
        merge path does — concatenating sorted runs determines it
        without a comparison sort) can pass ``sort_perm`` /
        ``sorted_addresses`` directly.
        """
        addresses = as_index_array(addresses)
        if addresses.ndim != 1:
            raise ShapeError("addresses must be 1D")
        if is_sorted:
            if sort_perm is not None or sorted_addresses is not None:
                raise ShapeError(
                    "pass either is_sorted or explicit sort_perm, not both"
                )
            sort_perm = np.arange(addresses.shape[0], dtype=np.intp)
            sorted_addresses = addresses
        return cls(
            shape,
            addresses=addresses,
            sort_perm=sort_perm,
            sorted_addresses=sorted_addresses,
            addr_order=addr_order,
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of points (duplicates included)."""
        return self._n

    @property
    def d(self) -> int:
        return len(self.shape)

    @property
    def linearizable(self) -> bool:
        """Whether the shape fits the uint64 address space in this order.

        Row-major checks the cell count; ALTO checks the (stricter)
        interleaved bit budget ``sum(ceil(log2(m_d))) <= 64``.
        """
        return fits_addr_order(self.shape, self.addr_order)

    @property
    def row_major_sorted(self) -> bool:
        """Whether the cached sort artifacts are in row-major address order.

        Consumers that equate "sorted by address" with "sorted
        lexicographically" (CSF's identity-permutation fast path,
        translation-invariant relative rebasing) must gate on this, not
        on :attr:`linearizable`: an ALTO-ordered canonical is perfectly
        linearizable but its sorted order interleaves the modes.
        """
        return self.addr_order == DEFAULT_ADDRESS_ORDER and self.linearizable

    # ------------------------------------------------------------------
    # Lazy artifacts
    # ------------------------------------------------------------------

    @property
    def coords(self) -> np.ndarray:
        """The ``(n, d)`` coordinate buffer (delinearized on demand)."""
        if self._coords is None:
            counter_add("build.canonical.delinearize")
            self._coords = delinearize_order(
                self._addresses, self.shape, self.addr_order, validate=False
            )
        else:
            counter_add("build.canonical.reuse")
        return self._coords

    @property
    def addresses(self) -> np.ndarray:
        """Linear address of every point in this instance's address order.

        Raises :class:`~repro.core.dtypes.IndexOverflowError` when the
        shape is not linearizable — exactly like the formats that need
        addresses do.
        """
        if self._addresses is None:
            counter_add("build.canonical.linearize")
            self._addresses = linearize_order(
                self._coords, self.shape, self.addr_order, validate=False
            )
        else:
            counter_add("build.canonical.reuse")
        return self._addresses

    @property
    def sort_perm(self) -> np.ndarray:
        """Stable gather permutation sorting points by linear address.

        ``addresses[sort_perm]`` is ascending; equal addresses keep input
        order (so the last entry of an equal run is the newest write —
        the anchor of :data:`DUPLICATE_POLICY`).
        """
        if self._sort_perm is None:
            addresses = self.addresses
            counter_add("build.canonical.sorts")
            self._sort_perm = stable_argsort(addresses)
        else:
            counter_add("build.canonical.reuse")
        return self._sort_perm

    @property
    def sorted_addresses(self) -> np.ndarray:
        if self._sorted_addresses is None:
            self._sorted_addresses = self.addresses[self.sort_perm]
        else:
            counter_add("build.canonical.reuse")
        return self._sorted_addresses

    @property
    def sorted_coords(self) -> np.ndarray:
        """The ``(n, d)`` coordinates in ascending linear-address order.

        Shared by every consumer of the sorted point order (COO-SORTED's
        payload, CSF's identity-permutation tree input), so the gather is
        paid once per buffer.  When the instance was built from
        addresses, the sorted coordinates come from a sequential
        delinearize of :attr:`sorted_addresses` — bit-identical to the
        gather (delinearize inverts linearize point-wise) and cheaper
        than materializing the unsorted coordinates first.
        """
        if self._sorted_coords is None:
            if self._coords is None:
                counter_add("build.canonical.delinearize")
                self._sorted_coords = delinearize_order(
                    self.sorted_addresses, self.shape, self.addr_order,
                    validate=False,
                )
            else:
                self._sorted_coords = self.coords[self.sort_perm]
        else:
            counter_add("build.canonical.reuse")
        return self._sorted_coords

    @property
    def dedup_runs(self) -> tuple[np.ndarray, np.ndarray]:
        """``(unique_addresses, run_offsets)`` over the sorted order.

        ``run_offsets`` has a trailing ``n`` entry: duplicate run ``i``
        spans ``sort_perm[run_offsets[i]:run_offsets[i+1]]``.
        """
        if self._runs is None:
            sorted_addresses = self.sorted_addresses
            counter_add("build.canonical.dedup_runs")
            self._runs = segment_boundaries(sorted_addresses)
        else:
            counter_add("build.canonical.reuse")
        return self._runs

    @property
    def n_unique(self) -> int:
        return int(self.dedup_runs[0].shape[0])

    def has_duplicates(self) -> bool:
        return self.n_unique != self.n

    @property
    def bounding_box(self) -> Box:
        """Tight per-dimension extents of the point set."""
        if self._bbox is None:
            self._bbox = extract_boundary(self.coords)
        else:
            counter_add("build.canonical.reuse")
        return self._bbox

    # ------------------------------------------------------------------
    # Derived orderings and selections
    # ------------------------------------------------------------------

    def dedup_selection(self, *, keep: str = DUPLICATE_POLICY) -> np.ndarray:
        """Ascending input indices of the duplicate-run winners.

        Mirrors :meth:`SparseTensor.deduplicated` exactly (same stable
        sort, same winner, same ascending re-ordering), so store-level
        dedup and canonical dedup are bit-identical.
        """
        if self.n == 0:
            return np.empty(0, dtype=np.intp)
        perm = self.sort_perm
        _, offsets = self.dedup_runs
        if keep == "last":
            sel = perm[offsets[1:].astype(np.intp) - 1]
        elif keep == "first":
            sel = perm[offsets[:-1].astype(np.intp)]
        else:
            raise ValueError(f"keep must be 'first' or 'last', got {keep!r}")
        return np.sort(sel)

    def ordering_for_dims(
        self, dim_perm: Sequence[int], permuted_shape: Sequence[int]
    ) -> np.ndarray:
        """Stable lexicographic order of points under a dimension permutation.

        CSF sorts points lexicographically in its (size-sorted) dimension
        order.  For the identity permutation that order *is* the linear
        address order, so the cached :attr:`sort_perm` is reused; any
        other permutation costs one sort — by the permuted linear address
        when it fits uint64 (single-key, cheaper than a d-key lexsort),
        by :func:`lexsort_rows` otherwise.  All three paths are stable
        sorts of the same key order, hence return identical permutations.
        """
        dims = [int(p) for p in dim_perm]
        if dims == list(range(self.d)) and self.row_major_sorted:
            return self.sort_perm
        pcoords = self.coords[:, dims]
        counter_add("build.canonical.sorts")
        if fits_index_dtype(permuted_shape):
            return stable_argsort(
                linearize(pcoords, permuted_shape, validate=False)
            )
        return lexsort_rows(pcoords)

    def rebased(
        self, origin: Sequence[int], shape: Sequence[int]
    ) -> "CanonicalCoords":
        """This point set translated by ``-origin`` into a local box.

        Row-major address order equals lexicographic coordinate order,
        and translation preserves lexicographic order, so the cached
        sort permutation carries over to the rebased copy — relative
        -coordinate fragment writes keep the no-resort fast path.  The
        ALTO interleaving is shape-dependent (the local box compiles its
        own bit masks), so an ALTO instance rebases without the cached
        permutation and re-sorts lazily in the local address space.
        """
        org = as_index_array(list(origin))
        carry = (
            self._sort_perm
            if self.addr_order == DEFAULT_ADDRESS_ORDER
            else None
        )
        rebased = CanonicalCoords(
            shape,
            coords=self.coords - org[np.newaxis, :],
            sort_perm=carry,
            addr_order=self.addr_order,
        )
        return rebased

    def with_order(self, addr_order: str) -> "CanonicalCoords":
        """This point set re-linearized in ``addr_order``.

        Returns ``self`` when the order already matches.  The converted
        instance keeps the same point sequence (so value buffers stay
        aligned) and re-derives addresses and sort artifacts lazily in
        the new order; the stable re-sort preserves the newest-last
        position of duplicate coordinates, so :data:`DUPLICATE_POLICY`
        survives conversion.
        """
        validate_addr_order(addr_order)
        if addr_order == self.addr_order:
            return self
        return CanonicalCoords(
            self.shape, coords=self.coords, addr_order=addr_order
        )
