"""Merge of already-sorted fragment payloads (compaction without decode).

``FragmentStore.compact()`` used to reconstruct every fragment into a
full ``SparseTensor`` (decode + delinearize), concatenate, dedup, and
rebuild from scratch — paying the global linearize + sort the fragments
already paid at write time.  This module replaces that with a k-way
merge over per-fragment *sorted address runs*:

1. each fragment contributes ``(sorted_addresses, value_order)`` via its
   format's :meth:`SparseFormat.extract_addresses` — for LINEAR that is
   a plain argsort of the stored address buffer (no delinearize), for
   COO-SORTED/identity-CSF it is free;
2. the runs are concatenated in fragment order and stably argsorted —
   NumPy's timsort detects the pre-sorted runs, making this the galloping
   k-way merge rather than a fresh O(n log n) sort;
3. duplicate addresses resolve to the *last* occurrence in
   (fragment, stored-position) order — exactly the store's newest-wins
   overwrite rule (:data:`repro.build.canonical.DUPLICATE_POLICY`);
4. the surviving points are re-expressed in concatenation order with
   their sort permutation *derived* (not re-sorted), so the output
   fragment is bit-identical to what the legacy decode-and-rebuild
   compaction produced, while sorted target formats still skip their
   build sort.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.sorting import invert_permutation, stable_argsort
from ..obs import counter_add
from .canonical import CanonicalCoords


@dataclass
class SortedRun:
    """One fragment's contribution to a merge.

    ``addresses`` are ascending global linear addresses; ``values`` is
    the aligned value buffer (already gathered into address order);
    ``positions`` maps each entry back to its stored position inside the
    source fragment (used to reconstruct newest-wins order across runs).
    """

    addresses: np.ndarray
    values: np.ndarray
    positions: np.ndarray


@dataclass
class MergedPoints:
    """Result of a newest-wins merge, in legacy concatenation order.

    ``canonical`` carries the merged addresses *plus* their known sort
    permutation, so a follow-up :meth:`SparseFormat.build_canonical`
    never re-sorts; ``values`` is aligned with ``canonical``'s input
    order.  The point order matches what decode-and-rebuild compaction
    produced (concatenated stored order, duplicates collapsed to the
    newest), which keeps the two strategies bit-identical.
    """

    canonical: CanonicalCoords
    values: np.ndarray


def merge_sorted_runs(
    runs: list[SortedRun],
    shape: tuple[int, ...],
    *,
    addr_order: str = "row_major",
) -> MergedPoints:
    """Newest-wins k-way merge of sorted address runs.

    Runs must be given oldest-first (fragment commit order); within a
    run, entries with equal addresses must be in stored order — both are
    what :meth:`SparseFormat.extract_addresses` yields.  ``addr_order``
    names the address space the runs are sorted in (every run must
    already be expressed in it — mixed-order sources convert before
    merging); the merged canonical inherits it.
    """
    counter_add("build.merge.runs", len(runs))
    if not runs:
        return MergedPoints(
            canonical=CanonicalCoords.from_addresses(
                np.empty(0, dtype=np.uint64), shape, is_sorted=True,
                addr_order=addr_order,
            ),
            values=np.empty(0, dtype=np.float64),
        )
    addresses = np.concatenate([r.addresses for r in runs])
    values = np.concatenate([r.values for r in runs])
    # Global stored position of every entry: fragment offset + position
    # inside the fragment.  Equal addresses resolve to the max position,
    # i.e. the newest fragment's latest occurrence.
    offsets = np.cumsum([0] + [r.positions.shape[0] for r in runs[:-1]])
    gpos = np.concatenate(
        [r.positions.astype(np.int64) + off
         for r, off in zip(runs, offsets)]
    )
    counter_add("build.merge.points", int(addresses.shape[0]))
    # Stable argsort over concatenated sorted runs == the k-way merge
    # (timsort gallops through the pre-sorted stretches).
    order = stable_argsort(addresses)
    merged = addresses[order]
    if merged.shape[0] == 0:
        return MergedPoints(
            canonical=CanonicalCoords.from_addresses(
                merged, shape, is_sorted=True, addr_order=addr_order
            ),
            values=values,
        )
    is_last = np.empty(merged.shape[0], dtype=bool)
    is_last[-1] = True
    np.not_equal(merged[1:], merged[:-1], out=is_last[:-1])
    # Within an equal-address group entries arrive in ascending global
    # stored position (runs are concatenated oldest-first and are stable
    # within themselves), so the last entry is the newest write.
    survivors = order[is_last]
    addr_sorted = merged[is_last]
    surv_gpos = gpos[survivors]
    surv_values = values[survivors]
    # Re-express in legacy concatenation order (what decode-and-rebuild
    # produced: deduplicated keep-last, selection indices ascending),
    # deriving the sort permutation instead of re-sorting addresses.
    to_concat_order = stable_argsort(surv_gpos)
    sort_perm = invert_permutation(to_concat_order).astype(np.intp)
    return MergedPoints(
        canonical=CanonicalCoords.from_addresses(
            addr_sorted[to_concat_order],
            shape,
            sort_perm=sort_perm,
            sorted_addresses=addr_sorted,
            addr_order=addr_order,
        ),
        values=surv_values[to_concat_order],
    )
