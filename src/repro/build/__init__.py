"""repro.build — the staged write-side pipeline (canonical intermediate).

Public surface:

:class:`CanonicalCoords`
    One input buffer's canonical form — linear addresses, stable sort
    permutation, duplicate-run boundaries, per-dimension extents — each
    lazy and cached, shared by every format BUILD.
:func:`encode_all`
    Build-once-encode-many: encode one tensor into N formats paying for
    linearize + sort once.
:data:`DUPLICATE_POLICY`
    The codebase-wide duplicate-coordinate rule (last write wins).
:func:`merge_sorted_runs`
    Newest-wins k-way merge of sorted fragment runs (the engine behind
    merge-based compaction and payload-to-payload conversion).
"""

from .canonical import DUPLICATE_POLICY, CanonicalCoords
from .merge import MergedPoints, SortedRun, merge_sorted_runs
from .pipeline import encode_all

__all__ = [
    "CanonicalCoords",
    "DUPLICATE_POLICY",
    "MergedPoints",
    "SortedRun",
    "encode_all",
    "merge_sorted_runs",
]
