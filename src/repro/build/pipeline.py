"""Build-once-encode-many: the staged write-side pipeline.

``encode_all`` is the shape of the paper's Fig 3/4 benchmark loop — one
unsorted input buffer, every format built from it — with the canonical
prerequisites (linearize, stable address sort) computed once and shared
through :class:`~repro.build.canonical.CanonicalCoords` instead of being
recomputed per format.  Payloads are bit-identical to calling each
format's :meth:`~repro.formats.SparseFormat.encode` independently; only
the redundant work disappears.

OpCounter attribution stays per-format: pass ``counters`` and each
format's BUILD charges its own counter exactly as the standalone
faithful path does — the paper's Table III accounting is about what the
algorithm *would* do, which is independent of the cache the production
pipeline reads prerequisites from.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.costmodel import NULL_COUNTER, OpCounter
from ..core.tensor import SparseTensor
from ..formats.base import EncodedTensor
from ..formats.registry import PAPER_FORMATS, resolve_format
from ..obs import span
from .canonical import CanonicalCoords


def encode_all(
    tensor: SparseTensor,
    formats: Sequence = PAPER_FORMATS,
    *,
    counters: Mapping[str, OpCounter] | None = None,
) -> dict[str, EncodedTensor]:
    """Encode one tensor into every requested format, sharing prerequisites.

    Parameters
    ----------
    tensor:
        The input buffer (paper contract: unsorted coordinates + values).
    formats:
        Format names or instances; defaults to the paper's five.
    counters:
        Optional per-format :class:`~repro.core.OpCounter` map (keyed by
        resolved format name) for Table-III-style build accounting.
        Charges are identical to standalone ``build`` calls.

    Returns
    -------
    dict[str, EncodedTensor]
        Resolved format name -> encoded tensor, in input order.
    """
    canon = CanonicalCoords.from_coords(tensor.coords, tensor.shape)
    values = np.asarray(tensor.values)
    out: dict[str, EncodedTensor] = {}
    gather_cache: dict = {}
    with span("build.encode_all") as sp:
        for fmt in formats:
            fmt = resolve_format(fmt)
            counter = NULL_COUNTER
            if counters is not None:
                counter = counters.get(fmt.name, NULL_COUNTER)
            out[fmt.name] = fmt.encode_canonical(
                canon, values, counter=counter, gather_cache=gather_cache
            )
        sp.add_nnz(tensor.nnz * max(1, len(out)))
    return out
