"""repro — reproduction of *The Art of Sparsity: Mastering High-Dimensional
Tensor Storage* (Bin Dong, Kesheng Wu, Suren Byna; IPPS 2024).

The library implements the paper's five sparse-tensor storage organizations
(COO, LINEAR, GCSR++, GCSC++, CSF) plus extensions, the fragment-based
storage substrate of its benchmark system (Algorithm 3), its three
synthetic sparsity patterns (TSP/GSP/MSP), and regenerators for every table
and figure in the evaluation.

Quickstart
----------

>>> import numpy as np
>>> from repro import SparseTensor, get_format
>>> t = SparseTensor.from_points((3, 3, 3),
...     [(0, 0, 1), (0, 1, 1), (0, 1, 2), (2, 2, 1), (2, 2, 2)])
>>> encoded = get_format("LINEAR").encode(t)
>>> out = encoded.read_points(np.array([[0, 1, 1], [1, 1, 1]], dtype=np.uint64))
>>> bool(out.found[0]), bool(out.found[1])
(True, False)

Every queryable object — in-memory encodings, fragment stores, adaptive
stores, blocked datasets — shares this ``read_points``/``read_box`` API
(:mod:`repro.readapi`), and the hot paths feed an always-on metrics layer
(:mod:`repro.obs`; see ``repro stats`` and ``obs.snapshot()``).

See ``examples/`` for full scenarios and ``benchmarks/`` for the paper's
tables and figures.
"""

from . import obs
from .algebra import inner, mttkrp, mttkrp_encoded, ttv
from .analysis import Workload, recommend
from .bench import run_experiment, run_sweep
from .build import (
    DUPLICATE_POLICY,
    CanonicalCoords,
    encode_all,
    merge_sorted_runs,
)
from .core import (
    Box,
    IndexOverflowError,
    OpCounter,
    ReproError,
    SparseTensor,
    delinearize,
    linearize,
)
from .formats import (
    EXTENSION_FORMATS,
    PAPER_FORMATS,
    EncodedTensor,
    SparseFormat,
    available_formats,
    get_format,
    register_format,
    resolve_format,
)
from .readapi import Readable, ReadOutcome
from .patterns import (
    GSPPattern,
    MSPPattern,
    TSPPattern,
    characterize,
    dataset_suite,
    make_pattern,
)
from .interop import fold_to_scipy, from_scipy, to_scipy
from .io import load_dataset, read_matrix_market, read_tns, write_matrix_market, write_tns
from .storage import (
    AdaptiveStore,
    BlockedDataset,
    FragmentCache,
    FragmentStore,
    FsckReport,
    MigrationDecision,
    MigrationPolicy,
    ReadOptions,
    RetryPolicy,
    ShardedStore,
    StoreOptions,
    StoreSnapshot,
    StreamingWriter,
    convert_store,
    direct_convert,
    fsck,
    register_kernel,
    registered_pairs,
)

__version__ = "1.0.0"

__all__ = [
    "inner",
    "mttkrp",
    "mttkrp_encoded",
    "ttv",
    "Workload",
    "recommend",
    "run_experiment",
    "run_sweep",
    "CanonicalCoords",
    "DUPLICATE_POLICY",
    "encode_all",
    "merge_sorted_runs",
    "Box",
    "IndexOverflowError",
    "OpCounter",
    "ReproError",
    "SparseTensor",
    "delinearize",
    "linearize",
    "EXTENSION_FORMATS",
    "PAPER_FORMATS",
    "EncodedTensor",
    "SparseFormat",
    "available_formats",
    "get_format",
    "register_format",
    "resolve_format",
    "Readable",
    "ReadOutcome",
    "obs",
    "GSPPattern",
    "MSPPattern",
    "TSPPattern",
    "characterize",
    "dataset_suite",
    "make_pattern",
    "load_dataset",
    "read_matrix_market",
    "read_tns",
    "write_matrix_market",
    "write_tns",
    "fold_to_scipy",
    "from_scipy",
    "to_scipy",
    "AdaptiveStore",
    "StreamingWriter",
    "convert_store",
    "BlockedDataset",
    "FragmentCache",
    "FragmentStore",
    "FsckReport",
    "MigrationDecision",
    "MigrationPolicy",
    "ReadOptions",
    "RetryPolicy",
    "ShardedStore",
    "StoreOptions",
    "StoreSnapshot",
    "direct_convert",
    "fsck",
    "register_kernel",
    "registered_pairs",
    "__version__",
]
