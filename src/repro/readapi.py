"""Unified read-side API shared by encodings and stores.

Every queryable object in the library — an in-memory
:class:`~repro.formats.base.EncodedTensor`, an on-disk
:class:`~repro.storage.store.FragmentStore` (and its
:class:`~repro.storage.adaptive.AdaptiveStore` subclass), and a
:class:`~repro.storage.blocks.BlockedDataset` — answers queries through the
same two methods:

``read_points(query_coords) -> ReadOutcome``
    Point-existence queries for an explicit ``(q, d)`` coordinate buffer.
``read_box(box) -> SparseTensor``
    Structural range read: every stored point inside an axis-aligned
    :class:`~repro.core.boundary.Box`, merged and address-sorted.

Code written against :class:`Readable` works unchanged whether the data
lives in memory, in one fragment directory, or sharded over blocks.
``EncodedTensor.read`` survives as a deprecated alias of ``read_points``.
Generation-pinned store views (:class:`~repro.storage.store.
StoreSnapshot`, :class:`~repro.storage.sharded.ShardedSnapshot` — see
``docs/WAL_SNAPSHOTS.md``) answer the same two methods, so query code
is equally agnostic to whether it reads the live store or a snapshot.

The storage-backed implementations (:class:`~repro.storage.store.
FragmentStore`, :class:`~repro.storage.adaptive.AdaptiveStore`,
:class:`~repro.storage.blocks.BlockedDataset`,
:class:`~repro.storage.sharded.ShardedStore`) additionally share one
keyword-only *tuning surface* on both methods — a single
``options=``\\ :class:`~repro.storage.options.ReadOptions` value, plus
the pre-consolidation keywords ``faithful``, ``check_crc``, ``parallel``
(``"none"`` | ``"thread"``), and ``max_workers`` as warn-once
deprecation shims — so per-call read tuning is portable across every
store kind (see ``docs/READ_PATH.md`` and ``docs/API_GUIDE.md``).
In-memory encodings ignore storage tuning by construction: there is
nothing to cache or fan out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core.boundary import Box
    from .core.tensor import SparseTensor

#: The keyword-only per-call tuning parameters every storage-backed
#: ``Readable`` accepts on ``read_points`` and ``read_box`` (snapshot
#: tested in ``tests/test_public_api.py``).  ``options`` is the
#: consolidated :class:`~repro.storage.options.ReadOptions` spelling; the
#: rest are its warn-once deprecated keyword shims.
STORE_READ_TUNING = (
    "options", "faithful", "check_crc", "parallel", "max_workers"
)


@dataclass
class ReadOutcome:
    """Result of one point-query batch, aligned with the query buffer.

    Attributes
    ----------
    found:
        Boolean mask over the query buffer: does the point exist?
    values:
        Values of the found queries, in query order.
    fragments_visited:
        How many physical fragments the read touched (1 for in-memory
        encodings; overlap pruning keeps this below the fragment count).
    points_matched:
        ``int(found.sum())`` — carried so callers need not recompute.
    """

    found: np.ndarray
    values: np.ndarray
    fragments_visited: int = 1
    points_matched: int = 0


@runtime_checkable
class Readable(Protocol):
    """Structural protocol every queryable storage object implements."""

    def read_points(self, query_coords: np.ndarray) -> ReadOutcome:
        """Point queries for an explicit ``(q, d)`` coordinate buffer."""
        ...  # pragma: no cover - protocol stub

    def read_box(self, box: "Box") -> "SparseTensor":
        """All stored points inside ``box``, merged and sorted."""
        ...  # pragma: no cover - protocol stub
