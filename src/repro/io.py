"""External dataset I/O.

The paper's pattern survey draws on the SuiteSparse collection [25], whose
interchange format is Matrix Market.  This module reads/writes Matrix
Market files as :class:`~repro.core.tensor.SparseTensor` (2D via
``scipy.io``), plus a simple ``.tns`` text format (the FROSTT convention:
one line per point, 1-based coordinates then the value) for tensors of any
dimensionality — so real datasets can be dropped straight into the
benchmark harness and the advisor.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import scipy.io
import scipy.sparse as sp

from .core.dtypes import INDEX_DTYPE
from .core.errors import ShapeError
from .core.tensor import SparseTensor
from .interop import from_scipy, to_scipy


def read_matrix_market(path: str | Path) -> SparseTensor:
    """Load a Matrix Market file as a 2D sparse tensor."""
    matrix = scipy.io.mmread(str(path))
    if not sp.issparse(matrix):
        matrix = sp.coo_matrix(np.asarray(matrix))
    return from_scipy(matrix).deduplicated(keep="last")


def write_matrix_market(
    path: str | Path, tensor: SparseTensor, *, comment: str = ""
) -> None:
    """Write a 2D sparse tensor as Matrix Market."""
    if tensor.ndim != 2:
        raise ShapeError(
            f"Matrix Market holds 2D matrices; got {tensor.ndim}D "
            "(use write_tns for higher dimensions)"
        )
    scipy.io.mmwrite(str(path), to_scipy(tensor, format="coo"),
                     comment=comment)


def read_tns(path: str | Path) -> SparseTensor:
    """Load a FROSTT-style ``.tns`` file (1-based coords, value last).

    Lines starting with ``#`` or ``%`` are comments; the tensor shape is
    the per-dimension coordinate maximum.
    """
    rows = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ShapeError(
                    f"{path}:{line_no}: need at least one coordinate and "
                    "a value"
                )
            rows.append(parts)
    if not rows:
        raise ShapeError(f"{path}: no data lines")
    width = len(rows[0])
    if any(len(r) != width for r in rows):
        raise ShapeError(f"{path}: inconsistent column counts")
    d = width - 1
    coords = np.empty((len(rows), d), dtype=INDEX_DTYPE)
    values = np.empty(len(rows))
    for i, parts in enumerate(rows):
        for k in range(d):
            c = int(parts[k])
            if c < 1:
                raise ShapeError(
                    f"{path}: coordinates are 1-based; got {c}"
                )
            coords[i, k] = c - 1
        values[i] = float(parts[d])
    shape = tuple(int(coords[:, k].max()) + 1 for k in range(d))
    return SparseTensor(shape, coords, values)


def write_tns(path: str | Path, tensor: SparseTensor) -> None:
    """Write a tensor in the FROSTT ``.tns`` convention (1-based coords)."""
    with open(path, "w") as fh:
        fh.write(f"# shape: {' '.join(str(m) for m in tensor.shape)}\n")
        for coord, value in zip(tensor.coords, tensor.values):
            cells = " ".join(str(int(c) + 1) for c in coord)
            fh.write(f"{cells} {float(value)!r}\n")


def load_dataset(path: str | Path) -> SparseTensor:
    """Dispatch on extension: ``.mtx``/``.mm`` -> Matrix Market,
    ``.tns`` -> FROSTT text, ``.npz`` -> the CLI's native bundle."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix in (".mtx", ".mm"):
        return read_matrix_market(path)
    if suffix == ".tns":
        return read_tns(path)
    if suffix == ".npz":
        with np.load(path) as data:
            return SparseTensor(
                tuple(int(m) for m in data["shape"]),
                data["coords"],
                data["values"],
            )
    raise ShapeError(
        f"unknown dataset extension {suffix!r}; expected .mtx/.mm/.tns/.npz"
    )
