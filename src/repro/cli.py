"""Command-line interface.

``python -m repro <command>``:

``formats``
    List the registered organizations with their Table I complexities.
``generate``
    Generate a synthetic pattern dataset and save it as ``.npz``.
``encode``
    Write a ``.npz`` dataset into a fragment store directory.
``info``
    Inspect a fragment store (fragments, sizes, bounding boxes).
``advise``
    Characterize a dataset and recommend an organization for a workload.
``experiment``
    Regenerate a paper table/figure (same ids as
    ``python -m repro.bench.experiments``).
``stats``
    Exercise the observability layer (``repro.obs``) with a write + read
    round-trip — against an existing store or a synthetic demo — and print
    every recorded counter, gauge, and latency histogram, plus a
    decoded-fragment cache section (``--cache-bytes`` sets the budget,
    ``--parallel thread`` fans the reads out over the read pool,
    ``--build`` adds a unified-build-pipeline section showing the
    canonical-intermediate counters, ``--shards`` adds the
    per-shard band table for a ``ShardedStore``, and ``--wal``
    exercises the durable append path and prints the write-ahead-log
    section — ``store.wal.*`` counters plus the live log footprint;
    ``--migration`` prints the format-migration section: direct-kernel
    counters plus the per-fragment workload ledger).
``migrate``
    Re-format a store's fragments in place — ``--to FORMAT`` for an
    explicit target, or (default) a policy-driven sweep scoring each
    fragment's observed workload from ``workload.json`` (``--dry-run``
    prints the decisions without migrating).
``fsck``
    Verify a store: every fragment's header and CRC checked against the
    manifest, drift reported (missing/extra/corrupt/stale temp files),
    write-ahead-log segments scanned (count and valid bytes reported);
    sharded directories are auto-detected and get the parent+children
    walk; ``--repair`` rebuilds manifests, recovers readable uncommitted
    fragments, quarantines unreadable ones, and truncates torn WAL
    tails back to the last intact record.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np


def _load_dataset(path: str):
    from .io import load_dataset

    return load_dataset(path)


def cmd_formats(args: argparse.Namespace) -> int:
    from .analysis.complexity import build_ops, read_ops
    from .bench.report import render_table
    from .formats.registry import PAPER_FORMATS, available_formats

    rows = []
    n, q, shape = 1_000_000, 1000, (128, 128, 128, 128)
    for name in available_formats(include_extensions=not args.paper_only):
        tag = "paper" if name in PAPER_FORMATS else "extension"
        try:
            b = f"{build_ops(name, n, shape):,}"
            r = f"{read_ops(name, n, q, shape):,}"
        except Exception:
            b = r = "-"
        rows.append([name, tag, b, r])
    print(render_table(
        ["format", "kind", "build ops (n=1e6,d=4)", "read ops (q=1e3)"],
        rows,
        title="Registered sparse tensor organizations",
        formatters={2: str, 3: str},
    ))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from .patterns.suite import make_pattern

    shape = tuple(int(s) for s in args.shape)
    gen = make_pattern(args.pattern, shape)
    tensor = gen.generate(np.random.default_rng(args.seed))
    np.savez_compressed(
        args.output,
        shape=np.asarray(tensor.shape, dtype=np.int64),
        coords=tensor.coords,
        values=tensor.values,
    )
    print(f"{args.pattern} tensor {shape}: nnz={tensor.nnz:,} "
          f"density={tensor.density:.3%} -> {args.output}")
    return 0


def cmd_encode(args: argparse.Namespace) -> int:
    from .storage.options import StoreOptions
    from .storage.sharded import ShardedStore
    from .storage.store import FragmentStore

    tensor = _load_dataset(args.dataset)
    options = StoreOptions(codec=args.codec)
    if args.shards:
        store = ShardedStore(
            args.store, tensor.shape, args.format,
            n_shards=args.shards, options=options,
        )
        receipts = store.write_tensor(tensor)
        print(f"wrote {len(receipts)} band fragments across "
              f"{len(store.shards)} shards: "
              f"file={sum(r.file_nbytes for r in receipts):,} B "
              f"(build {sum(r.build_seconds for r in receipts) * 1000:.1f} ms)")
        return 0
    store = FragmentStore(args.store, tensor.shape, args.format,
                          options=options)
    receipt = store.write_tensor(tensor)
    print(f"wrote fragment {receipt.info.path.name}: "
          f"index={receipt.index_nbytes:,} B values={receipt.value_nbytes:,} B "
          f"file={receipt.file_nbytes:,} B "
          f"(build {receipt.build_seconds * 1000:.1f} ms)")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    import json

    from .bench.report import format_bytes, render_table
    from .storage.store import FragmentStore

    manifest = json.loads((Path(args.store) / "manifest.json").read_text())
    store = FragmentStore(args.store, manifest["shape"], manifest["format"])
    rows = [
        [f.path.name, f.format_name, f.nnz,
         str(f.bbox.origin), str(f.bbox.size), format_bytes(f.nbytes)]
        for f in store.fragments
    ]
    print(render_table(
        ["fragment", "format", "nnz", "bbox origin", "bbox size", "size"],
        rows,
        title=(f"store {args.store}: shape={tuple(store.shape)} "
               f"{len(store.fragments)} fragments, {store.nnz:,} points, "
               f"{format_bytes(store.total_file_nbytes)}"),
        formatters={3: str, 4: str, 5: str},
    ))
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    from .analysis.advisor import ANALYTICAL, ARCHIVAL, BALANCED, recommend
    from .patterns.stats import characterize

    tensor = _load_dataset(args.dataset)
    stats = characterize(tensor)
    workload = {"balanced": BALANCED, "archival": ARCHIVAL,
                "analytical": ANALYTICAL}[args.workload]
    rec = recommend(stats, workload)
    print(f"dataset: shape={stats.shape} nnz={stats.nnz:,} "
          f"density={stats.density:.3%} "
          f"csf-sharing={stats.csf_sharing_ratio:.2f}")
    print(f"workload: {args.workload}")
    for i, p in enumerate(rec.ranked, 1):
        print(f"  {i}. {p.format_name:<10s} combined={p.combined:.3f}")
    print(f"recommendation: {rec.best}")
    return 0


def _render_cache_section(cache) -> str:
    """The ``repro stats`` cache section (decoded-fragment LRU totals)."""
    from .bench.report import format_bytes

    stats = cache.stats()
    lookups = stats["hits"] + stats["misses"]
    hit_rate = stats["hits"] / lookups if lookups else 0.0
    lines = ["fragment cache (decoded-payload LRU)"]
    if not stats["enabled"]:
        lines.append("  disabled (cache_bytes=0; pass --cache-bytes to enable)")
        return "\n".join(lines)
    lines.append(
        f"  budget    {format_bytes(stats['max_bytes'])}  "
        f"resident {format_bytes(stats['bytes'])} "
        f"in {stats['entries']} entries"
    )
    lines.append(
        f"  lookups   {lookups}  hits {stats['hits']}  "
        f"misses {stats['misses']}  hit-rate {hit_rate:.1%}"
    )
    lines.append(
        f"  evictions {stats['evictions']}  "
        f"invalidations {stats['invalidations']}"
    )
    return "\n".join(lines)


def _render_plan_section(
    explain_summary: str | None = None,
    addr_order: str | None = None,
) -> str:
    """The ``repro stats --plan`` section: read-side planner counters."""
    from . import obs
    from .bench.report import format_bytes

    counters = {
        c["name"]: c["value"] for c in obs.snapshot()["counters"]
    }
    lines = ["query planner (spatial index + zone maps)"]
    if addr_order:
        lines.append(f"  address order: {addr_order}")
    lines.append(
        f"  visited   {counters.get('store.fragments_visited', 0)}  "
        f"pruned-bbox {counters.get('store.fragments_pruned', 0)}  "
        f"pruned-index "
        f"{counters.get('store.plan.fragments_pruned_index', 0)}  "
        f"pruned-zonemap "
        f"{counters.get('store.plan.fragments_pruned_zonemap', 0)}"
    )
    lines.append(
        f"  index rebuilds "
        f"{counters.get('store.plan.index_rebuilds', 0)}  "
        f"zone backfills {counters.get('store.plan.zone_backfilled', 0)}"
    )
    lines.append(
        f"  crc memo hits {counters.get('store.plan.crc_memo_hits', 0)}  "
        f"lazy bytes avoided "
        f"{format_bytes(counters.get('store.plan.lazy_bytes_avoided', 0))}"
    )
    if explain_summary:
        lines.append("  example plan (first fragment's bbox):")
        lines.extend("    " + ln for ln in explain_summary.splitlines())
    return "\n".join(lines)


def _render_build_section() -> str:
    """The ``repro stats --build`` section: canonical-pipeline counters."""
    from . import obs

    counters = {
        c["name"]: c["value"]
        for c in obs.snapshot()["counters"]
        if c["name"].startswith("build.")
    }
    lines = ["build pipeline (canonical coordinate intermediate)"]
    if not counters:
        lines.append("  no build.* activity recorded")
        return "\n".join(lines)
    lines.append(
        f"  linearize passes {counters.get('build.canonical.linearize', 0)}  "
        f"address sorts {counters.get('build.canonical.sorts', 0)}  "
        f"reuses {counters.get('build.canonical.reuse', 0)}"
    )
    lines.append(
        f"  delinearize passes "
        f"{counters.get('build.canonical.delinearize', 0)}  "
        f"dedup-run scans {counters.get('build.canonical.dedup_runs', 0)}"
    )
    lines.append(
        f"  encode_all calls {counters.get('build.encode_all.calls', 0)}  "
        f"merged runs {counters.get('build.merge.runs', 0)}  "
        f"merged points {counters.get('build.merge.points', 0)}"
    )
    return "\n".join(lines)


def _render_wal_section(store) -> str:
    """The ``repro stats --wal`` section: durable append-path counters."""
    from . import obs
    from .bench.report import format_bytes

    counters = {
        c["name"]: c["value"] for c in obs.snapshot()["counters"]
    }
    ws = store.wal_stats()
    lines = ["write-ahead log (durable append path)"]
    lines.append(
        f"  live      {ws['segments']} segment(s)  "
        f"{format_bytes(ws['bytes'])}  "
        f"{ws['points']} unpacked point(s)"
    )
    lines.append(
        f"  appends   {counters.get('store.wal.appends', 0)}  "
        f"records replayed "
        f"{counters.get('store.wal.records_replayed', 0)}  "
        f"torn tails {counters.get('store.wal.torn_tails', 0)}"
    )
    lines.append(
        f"  segments  sealed "
        f"{counters.get('store.wal.segments_sealed', 0)}  "
        f"retired {counters.get('store.wal.segments_retired', 0)}"
    )
    lines.append(
        f"  pack runs {counters.get('store.wal.pack_runs', 0)}  "
        f"snapshots {counters.get('store.wal.snapshots', 0)}  "
        f"gc deleted {counters.get('store.wal.gc_deleted', 0)}"
    )
    return "\n".join(lines)


def _render_migration_section(store) -> str:
    """The ``repro stats --migration`` section: ledger + kernel counters."""
    from . import obs
    from .bench.report import render_table

    counters: dict[str, float] = {}
    for c in obs.snapshot()["counters"]:
        counters[c["name"]] = counters.get(c["name"], 0) + c["value"]
    lines = ["format migration (direct kernels + workload ledger)"]
    lines.append(
        f"  conversions  direct {int(counters.get('migrate.direct', 0))}  "
        f"fallback {int(counters.get('migrate.fallback', 0))}"
    )
    lines.append(
        f"  fragments    migrated "
        f"{int(counters.get('store.migrate.fragments', 0))}  "
        f"no-op {int(counters.get('store.migrate.noop', 0))}"
    )
    ledger = getattr(store, "workload_ledger", None)
    if ledger is None:
        lines.append("  (sharded store: per-fragment ledgers live per shard)")
        return "\n".join(lines)
    entries = ledger.snapshot()
    if not entries:
        lines.append("  workload ledger empty (no reads observed yet)")
        return "\n".join(lines)
    fmt_by_name = {f.path.name: f.format_name for f in store.fragments}
    rows = [
        [name, fmt_by_name.get(name, "retired"), w.point_reads, w.box_reads,
         f"{w.selectivity:.1%}", w.writes, f"{w.load_seconds * 1e3:.1f}ms"]
        for name, w in sorted(entries.items())
    ]
    table = render_table(
        ["fragment", "format", "pt-reads", "box-reads", "selectivity",
         "writes", "load"],
        rows,
        title="workload ledger (persisted as workload.json)",
        formatters={2: str, 3: str, 5: str},
    )
    lines.append("")
    lines.append(table)
    return "\n".join(lines)


def cmd_migrate(args: argparse.Namespace) -> int:
    from .analysis.advisor import ANALYTICAL, ARCHIVAL, BALANCED
    from .storage.migrate import MigrationPolicy, plan_migrations
    from .storage.options import StoreOptions
    from .storage.sharded import ShardedStore

    store, _ = _open_stats_store(args, StoreOptions())
    if not store.fragments:
        print(f"store {args.store} has no fragments", file=sys.stderr)
        return 1

    if args.to:
        targets = [
            (i, f.format_name) for i, f in enumerate(store.fragments)
            if f.format_name != args.to
        ]
        if args.dry_run:
            for i, current in targets:
                print(f"  fragment {i}: {current} -> {args.to}")
            print(f"would migrate {len(targets)} fragment(s) to {args.to}")
            return 0
        infos = store.migrate_all(args.to)
        print(f"migrated {len(infos)} fragment(s) to {args.to} "
              f"({len(store.fragments) - len(infos)} already there)")
        return 0

    if isinstance(store, ShardedStore):
        print("policy-driven migration needs a flat store's workload "
              "ledger; pass --to FORMAT for sharded stores",
              file=sys.stderr)
        return 1
    workload = {"balanced": BALANCED, "archival": ARCHIVAL,
                "analytical": ANALYTICAL}[args.workload]
    policy = MigrationPolicy(
        min_reads=args.min_reads, hysteresis=args.hysteresis
    )
    decisions = plan_migrations(store, workload=workload, policy=policy)
    for d in decisions:
        verdict = (f"-> {d.target_format}" if d.migrate
                   else f"keep ({d.reason})")
        print(f"  fragment {d.index}: {d.current_format} {verdict}")
    winners = [d for d in decisions if d.migrate]
    if args.dry_run:
        print(f"would migrate {len(winners)} of {len(decisions)} fragment(s)")
        return 0
    for d in winners:
        store.migrate_fragment(d.index, d.target_format)
    print(f"migrated {len(winners)} of {len(decisions)} fragment(s)")
    return 0


def _render_compression_section(store) -> str:
    """The ``repro stats --compression`` section: bytes-on-disk per codec."""
    from . import obs
    from .bench.report import format_bytes

    cs = store.compression_stats()
    counters = {
        (c["name"], c["labels"].get("codec")): c["value"]
        for c in obs.snapshot()["counters"]
        if c["name"].startswith("store.compression.")
    }
    lines = [f"compression (codec option: {cs['codec']})"]
    lines.append(
        f"  fragments {cs['fragments']}  files "
        f"{format_bytes(cs['file_nbytes'])}  payload "
        f"{format_bytes(cs['encoded_nbytes'])} on disk for "
        f"{format_bytes(cs['raw_nbytes'])} raw  "
        f"(ratio {cs['ratio']:.2f}x)"
    )
    if cs["by_codec"]:
        per_codec = "  ".join(
            f"{tag}={format_bytes(nbytes)}"
            for tag, nbytes in cs["by_codec"].items()
        )
        lines.append(f"  by codec  {per_codec}")
    picks = {
        labels: val for (name, labels), val in counters.items()
        if name == "store.compression.advisor_picks"
    }
    if picks:
        pick_str = "  ".join(
            f"{tag}={int(val)}" for tag, val in sorted(picks.items())
        )
        lines.append(f"  advisor picks (this process)  {pick_str}")
    decoded = sum(
        val for (name, _), val in counters.items()
        if name == "store.compression.decoded_bytes"
    )
    if decoded:
        lines.append(f"  compressed bytes decoded  {format_bytes(decoded)}")
    return "\n".join(lines)


def _render_shards_section(store) -> str:
    """The ``repro stats --shards`` section: per-band summary rows."""
    from .bench.report import format_bytes, render_table

    rows = [
        [r["shard"], f"[{r['addr_lo']}, {r['addr_hi']})", r["nnz"],
         r["fragments"], format_bytes(r["nbytes"]), r["generation"]]
        for r in store.stats()
    ]
    return render_table(
        ["shard", "address band", "nnz", "fragments", "bytes", "gen"],
        rows,
        title=(f"shards (parent generation {store.generation}, "
               f"{store.nnz:,} points)"),
        formatters={2: str, 3: str, 4: str, 5: str},
    )


def _open_stats_store(args, options):
    """Open ``args.store`` as the right store kind for ``repro stats``.

    Returns ``(store, cache)`` — ``cache`` is ``None`` for sharded
    stores, whose decoded-fragment caches live per child.
    """
    import json

    from .storage.sharded import ShardedStore, is_sharded_dir
    from .storage.store import FragmentStore

    if is_sharded_dir(args.store):
        doc = json.loads((Path(args.store) / "shards.json").read_text())
        store = ShardedStore(
            args.store, doc["shape"], doc["format"], options=options
        )
        return store, None
    manifest = json.loads((Path(args.store) / "manifest.json").read_text())
    store = FragmentStore(
        args.store, manifest["shape"], manifest["format"], options=options
    )
    return store, store.cache


def cmd_stats(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from . import obs
    from .core.boundary import Box
    from .storage.options import ReadOptions, StoreOptions
    from .storage.sharded import ShardedStore
    from .storage.store import FragmentStore

    obs.enable()
    obs.reset()
    rng = np.random.default_rng(args.seed)
    store_options = StoreOptions(cache_bytes=args.cache_bytes)
    if args.compression and not args.store:
        # The demo store writes through the adaptive cascade so the
        # compression section has per-codec data to show.
        store_options = store_options.replace(codec="cascade")
    read_options = ReadOptions(parallel=args.parallel)
    cache = None
    plan_summary = None
    plan_addr_order = None
    shard_table = None
    wal_section = None
    compression_section = None
    compression_stats = None
    migration_section = None

    if args.store:
        store, cache = _open_stats_store(args, store_options)
        if not store.fragments:
            print(f"store {args.store} has no fragments", file=sys.stderr)
            return 1
        # Sample query points from each fragment's bounding box so reads
        # exercise the real pruning and per-format read paths.
        per_frag = max(1, args.points // len(store.fragments))
        queries = np.vstack([
            np.asarray(f.bbox.origin, dtype=np.uint64)[np.newaxis, :]
            + rng.integers(
                0, np.maximum(1, np.asarray(f.bbox.size, dtype=np.int64)),
                size=(per_frag, len(store.shape)),
            ).astype(np.uint64)
            for f in store.fragments
        ])
        # Two rounds: the second demonstrates warm-cache hits (and the
        # parallel pipeline when --parallel thread is given).
        for _ in range(2):
            store.read_points(queries, options=read_options)
            store.read_box(store.fragments[0].bbox, options=read_options)
        if args.plan:
            plan_summary = store.explain(store.fragments[0].bbox).summary()
            plan_addr_order = getattr(store, "addr_order", None)
        if args.shards:
            if not isinstance(store, ShardedStore):
                print(f"store {args.store} is not sharded "
                      "(--shards needs a ShardedStore directory)",
                      file=sys.stderr)
                return 1
            shard_table = _render_shards_section(store)
        if args.wal:
            # Read-only against an existing store: report the live log
            # footprint and whatever replay recorded on open.
            wal_section = _render_wal_section(store)
        if args.compression:
            compression_section = _render_compression_section(store)
            compression_stats = store.compression_stats()
        if args.migration:
            migration_section = _render_migration_section(store)
        title = f"repro observability — store {args.store}"
    else:
        # Self-contained demo: two disjoint fragments, so the read shows
        # bbox overlap pruning alongside byte and latency metrics.  With
        # --shards the demo store is a 4-band ShardedStore instead, so
        # the per-shard table and store.shard.* counters have data.
        shape = (64, 64, 64)
        n = max(16, args.points)
        with tempfile.TemporaryDirectory() as tmp:
            if args.shards:
                store = ShardedStore(
                    tmp, shape, args.format, n_shards=4,
                    options=store_options,
                )
            else:
                store = FragmentStore(
                    tmp, shape, args.format, options=store_options
                )
            low = rng.integers(0, 32, size=(n, 3)).astype(np.uint64)
            high = rng.integers(32, 64, size=(n, 3)).astype(np.uint64)
            store.write(low, rng.random(n))
            store.write(high, rng.random(n))
            for _ in range(2):
                store.read_points(
                    low[: max(1, n // 2)], options=read_options
                )
                store.read_box(
                    Box((0, 0, 0), (16, 16, 16)), options=read_options
                )
            if args.wal:
                # Exercise the whole durable lifecycle so every
                # store.wal.* counter has data: append -> read (tail
                # merge) -> snapshot -> pack -> gc.
                extra = rng.integers(0, 64, size=(n, 3)).astype(np.uint64)
                store.append(extra, rng.random(n))
                store.read_points(extra[: max(1, n // 2)],
                                  options=read_options)
                with store.snapshot():
                    store.pack_wal()
                store.gc()
                wal_section = _render_wal_section(store)
            cache = None if args.shards else store.cache
            if args.plan:
                plan_summary = store.explain(
                    Box((0, 0, 0), (16, 16, 16))
                ).summary()
                plan_addr_order = getattr(store, "addr_order", None)
            if args.shards:
                shard_table = _render_shards_section(store)
            if args.compression:
                compression_section = _render_compression_section(store)
                compression_stats = store.compression_stats()
            if args.migration:
                # Two hops so both migrate.* paths have data: the
                # unsorted demo payloads rebuild canonically, then the
                # now-canonical fragments take a direct kernel.
                store.migrate_all("GCSR++")
                store.migrate_all("COO-SORTED")
                store.read_points(low[: max(1, n // 2)],
                                  options=read_options)
                migration_section = _render_migration_section(store)
        kind = "4-shard" if args.shards else "2-fragment"
        title = (f"repro observability — demo round-trip "
                 f"({args.format}, {kind}, {n} points per write)")

    if args.build:
        # Exercise the shared-intermediate write pipeline so the
        # build.canonical.* counters show up: one encode_all over the
        # paper formats plus one merge-based compaction.
        from .build import encode_all
        from .core.tensor import SparseTensor

        bshape = (32, 32, 32)
        nb = max(16, args.points)
        bcoords = rng.integers(0, 32, size=(nb, 3)).astype(np.uint64)
        tensor = SparseTensor(
            bshape, bcoords, rng.random(nb)
        ).deduplicated(keep="last")
        encode_all(tensor)
        with tempfile.TemporaryDirectory() as tmp:
            bstore = FragmentStore(tmp, bshape, "LINEAR")
            half = max(1, tensor.nnz // 2)
            bstore.write(tensor.coords[:half], tensor.values[:half])
            bstore.write(tensor.coords[half:], tensor.values[half:])
            bstore.compact(strategy="merge")

    if args.json:
        payload = json.loads(obs.to_json())
        if cache is not None:
            payload["cache"] = cache.stats()
        if compression_stats is not None:
            payload["compression"] = compression_stats
        print(json.dumps(payload, indent=1))
    else:
        print(obs.render_table(title=title))
        if cache is not None:
            print()
            print(_render_cache_section(cache))
        if shard_table is not None:
            print()
            print(shard_table)
        if wal_section is not None:
            print()
            print(wal_section)
        if compression_section is not None:
            print()
            print(compression_section)
        if migration_section is not None:
            print()
            print(migration_section)
        if args.plan:
            print()
            print(_render_plan_section(plan_summary, plan_addr_order))
        if args.build:
            print()
            print(_render_build_section())
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    import json

    from .storage.durability import fsck
    from .storage.sharded import fsck_sharded, is_sharded_dir

    # A sharded directory (parent manifest or any range.json breadcrumb)
    # gets the parent+children walk; anything else the flat-store check.
    if is_sharded_dir(args.store):
        report = fsck_sharded(args.store, repair=args.repair)
    else:
        report = fsck(args.store, repair=args.repair)
    if args.json:
        print(json.dumps(report.as_dict(), indent=1))
    else:
        print(report.summary())
    if report.clean or report.repaired:
        return 0
    return 1


def cmd_experiment(args: argparse.Namespace) -> int:
    from .bench.experiments import ExperimentConfig, run_experiment

    config = ExperimentConfig(scale=args.scale, verbose=args.verbose)
    print(run_experiment(args.experiment, config))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sparse tensor storage organizations "
                    "(reproduction of Dong/Wu/Byna, IPPS 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("formats", help="list organizations + complexities")
    p.add_argument("--paper-only", action="store_true")
    p.set_defaults(func=cmd_formats)

    p = sub.add_parser("generate", help="generate a synthetic dataset")
    p.add_argument("pattern", choices=["TSP", "GSP", "MSP"])
    p.add_argument("shape", nargs="+", help="dimension sizes")
    p.add_argument("-o", "--output", required=True, help="output .npz")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("encode", help="write a dataset into a store")
    p.add_argument("dataset", help="input dataset (.npz/.mtx/.tns)")
    p.add_argument("store", help="fragment store directory")
    p.add_argument("-f", "--format", default="LINEAR")
    p.add_argument("--codec", default="raw",
                   choices=["raw", "zlib", "delta-zlib", "cascade"])
    p.add_argument("--shards", type=int, default=0, metavar="N",
                   help="write into a range-partitioned ShardedStore "
                        "with N bands instead of a flat FragmentStore")
    p.set_defaults(func=cmd_encode)

    p = sub.add_parser("info", help="inspect a fragment store")
    p.add_argument("store")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("advise", help="recommend an organization")
    p.add_argument("dataset", help="input dataset (.npz/.mtx/.tns)")
    p.add_argument("-w", "--workload", default="balanced",
                   choices=["balanced", "archival", "analytical"])
    p.set_defaults(func=cmd_advise)

    p = sub.add_parser("stats", help="observability metrics round-trip")
    p.add_argument("--store", default=None,
                   help="existing store directory to exercise "
                        "(default: synthetic demo store)")
    p.add_argument("-f", "--format", default="LINEAR",
                   help="organization for the demo store")
    p.add_argument("--points", type=int, default=2000,
                   help="points per fragment / total queries")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache-bytes", type=int, default=0,
                   help="decoded-fragment cache budget in bytes "
                        "(0 = cache off; reads run twice so a warm "
                        "second round shows up as hits)")
    p.add_argument("--parallel", default="none", choices=["none", "thread"],
                   help="read-side fan-out mode for the exercised reads")
    p.add_argument("--plan", action="store_true",
                   help="also print the read-side query-planner section "
                        "(store.plan.* counters + an example explain())")
    p.add_argument("--build", action="store_true",
                   help="also exercise the unified build pipeline "
                        "(encode_all + merge compaction) and print the "
                        "build.canonical.* counter section")
    p.add_argument("--shards", action="store_true",
                   help="also print the per-shard band table; with "
                        "--store the directory must be a ShardedStore, "
                        "without it the demo store is built 4-way sharded")
    p.add_argument("--compression", action="store_true",
                   help="report bytes-on-disk per codec chain (and, for "
                        "the demo store, write through the cascade)")
    p.add_argument("--migration", action="store_true",
                   help="print a format-migration section (direct-kernel "
                        "counters plus the per-fragment workload ledger)")
    p.add_argument("--wal", action="store_true",
                   help="also print the write-ahead-log section "
                        "(store.wal.* counters + live log footprint); "
                        "the demo store exercises the full durable "
                        "lifecycle: append, tail read, snapshot, pack, gc")
    p.add_argument("--json", action="store_true",
                   help="emit the metrics snapshot as JSON")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("migrate",
                       help="re-format store fragments in place")
    p.add_argument("store", help="store directory (flat or sharded)")
    p.add_argument("--to", default=None, metavar="FORMAT",
                   help="explicit target organization; omit for a "
                        "policy-driven sweep from the workload ledger")
    p.add_argument("-w", "--workload", default="balanced",
                   choices=["balanced", "archival", "analytical"],
                   help="base workload the ledger observations specialize")
    p.add_argument("--min-reads", type=int, default=4,
                   help="observed reads required before migrating (default 4)")
    p.add_argument("--hysteresis", type=float, default=0.1,
                   help="relative cost margin the winner must clear "
                        "(default 0.1)")
    p.add_argument("--dry-run", action="store_true",
                   help="print decisions without migrating")
    p.set_defaults(func=cmd_migrate)

    p = sub.add_parser("fsck",
                       help="verify/repair a store (sharded auto-detected)")
    p.add_argument("store", help="store directory (flat or sharded)")
    p.add_argument("--repair", action="store_true",
                   help="rebuild manifests; recover readable orphans, "
                        "quarantine unreadable fragments (sharded: also "
                        "rebuild the parent from range.json sidecars)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON")
    p.set_defaults(func=cmd_fsck)

    p = sub.add_parser("experiment", help="regenerate a paper artifact")
    p.add_argument("experiment",
                   choices=["table1", "table2", "table3", "table4",
                            "fig2", "fig3", "fig4", "fig5", "claims"])
    p.add_argument("scale", nargs="?", default=None,
                   choices=["tiny", "default", "paper"])
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=cmd_experiment)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
