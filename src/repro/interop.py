"""SciPy sparse interoperability.

The paper positions its organizations against the classic 2D CSR/CSC
ecosystem (Barrett et al. [24], scipy.sparse being the ubiquitous
implementation).  This module bridges both directions:

* 2D :class:`~repro.core.tensor.SparseTensor` <-> ``scipy.sparse`` matrices;
* high-dimensional tensors -> scipy CSR *through the GCSR++ fold*, which is
  exactly the paper's dimensionality-reduction trick — giving downstream
  users scipy's mature kernels (SpMV, slicing) over folded tensors;
* GCSR++/GCSC++ payloads -> scipy matrices without re-sorting (the pointer
  arrays are already CSR/CSC form).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np
import scipy.sparse as sp

from .core.errors import FormatError, ShapeError
from .core.linearize import fold_coords_2d
from .core.tensor import SparseTensor


def to_scipy(tensor: SparseTensor, *, format: str = "csr") -> sp.spmatrix:
    """Convert a 2D sparse tensor to a scipy matrix (csr/csc/coo)."""
    if tensor.ndim != 2:
        raise ShapeError(
            f"to_scipy needs a 2D tensor; got {tensor.ndim}D "
            "(use fold_to_scipy for higher dimensions)"
        )
    coo = sp.coo_matrix(
        (
            tensor.values,
            (
                tensor.coords[:, 0].astype(np.int64),
                tensor.coords[:, 1].astype(np.int64),
            ),
        ),
        shape=tensor.shape,
    )
    return coo.asformat(format)


def from_scipy(matrix: sp.spmatrix | sp.sparray) -> SparseTensor:
    """Convert any scipy sparse matrix to a :class:`SparseTensor`."""
    coo = sp.coo_matrix(matrix)
    coords = np.column_stack(
        [coo.row.astype(np.uint64), coo.col.astype(np.uint64)]
    )
    return SparseTensor(tuple(int(s) for s in coo.shape), coords,
                        np.asarray(coo.data))


def fold_to_scipy(tensor: SparseTensor, *, format: str = "csr") -> sp.spmatrix:
    """Fold a d-dimensional tensor to 2D (the GCSR++ mapping) as scipy.

    The fold keeps the row-major linear order, so a cell of the folded
    matrix corresponds to exactly one cell of the original tensor:
    ``(r, c)`` maps back through the linear address ``r * n_cols + c``.
    """
    min_dim_as = "rows" if format != "csc" else "cols"
    coords2d, shape2d = fold_coords_2d(
        tensor.coords, tensor.shape, min_dim_as=min_dim_as
    )
    folded = SparseTensor(shape2d, coords2d, tensor.values)
    return to_scipy(folded, format=format)


def gcsr_payload_to_scipy(
    payload: Mapping[str, np.ndarray],
    meta: Mapping[str, Any],
    values: np.ndarray,
) -> sp.csr_matrix:
    """Wrap a GCSR++ payload as scipy CSR without copying the structure."""
    if "row_ptr" not in payload or "col_ind" not in payload:
        raise FormatError("not a GCSR++ payload (row_ptr/col_ind missing)")
    shape2d = tuple(int(v) for v in meta["shape2d"])
    return sp.csr_matrix(
        (
            np.asarray(values),
            payload["col_ind"].astype(np.int64),
            payload["row_ptr"].astype(np.int64),
        ),
        shape=shape2d,
    )


def gcsc_payload_to_scipy(
    payload: Mapping[str, np.ndarray],
    meta: Mapping[str, Any],
    values: np.ndarray,
) -> sp.csc_matrix:
    """Wrap a GCSC++ payload as scipy CSC without copying the structure."""
    if "col_ptr" not in payload or "row_ind" not in payload:
        raise FormatError("not a GCSC++ payload (col_ptr/row_ind missing)")
    shape2d = tuple(int(v) for v in meta["shape2d"])
    return sp.csc_matrix(
        (
            np.asarray(values),
            payload["row_ind"].astype(np.int64),
            payload["col_ptr"].astype(np.int64),
        ),
        shape=shape2d,
    )
