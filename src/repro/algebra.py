"""Sparse tensor algebra kernels over the storage organizations.

The paper motivates CSF through SPLATT's sparse tensor-matrix products
([14, 15]) and cites SpMTTKRP ([22]) as the driving workload for COO
variants.  This module provides those kernels so the organizations can be
exercised by a real computation, not just point queries:

``mttkrp``
    Matricized-Tensor Times Khatri-Rao Product on the coordinate form —
    the reference implementation (vectorized scatter-add).
``mttkrp_csf``
    The SPLATT-style tree algorithm over a CSF payload: per-node partial
    factor products are computed once per *node* and shared by all points
    under it — the prefix-sharing that makes CSF attractive for MTTKRP.
``ttv``
    Tensor-times-vector contraction along one mode, returning a sparse
    tensor of one fewer dimension (duplicate result coordinates combined).
``inner``
    Inner product of two sparse tensors over matching coordinates.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from .core.dtypes import INDEX_DTYPE
from .core.errors import ShapeError
from .core.linearize import linearize
from .core.sorting import segment_boundaries, stable_argsort
from .core.tensor import SparseTensor
from .formats.base import EncodedTensor


def _check_factors(
    shape: Sequence[int], factors: Sequence[np.ndarray]
) -> int:
    """Validate factor matrices; returns the shared rank R."""
    if len(factors) != len(shape):
        raise ShapeError(
            f"need one factor per mode: {len(shape)} modes, "
            f"{len(factors)} factors"
        )
    rank = None
    for k, (m, u) in enumerate(zip(shape, factors)):
        u = np.asarray(u)
        if u.ndim != 2 or u.shape[0] != int(m):
            raise ShapeError(
                f"factor {k} must be ({m}, R); got {u.shape}"
            )
        if rank is None:
            rank = u.shape[1]
        elif u.shape[1] != rank:
            raise ShapeError("factor ranks differ")
    return int(rank if rank is not None else 0)


def mttkrp(
    tensor: SparseTensor, factors: Sequence[np.ndarray], mode: int
) -> np.ndarray:
    """MTTKRP on the coordinate form.

    ``out[i, r] = sum over points p with p[mode] == i of
    value(p) * prod_{k != mode} factors[k][p[k], r]``.
    """
    rank = _check_factors(tensor.shape, factors)
    d = tensor.ndim
    if not 0 <= mode < d:
        raise ShapeError(f"mode {mode} out of range for {d}D tensor")
    out = np.zeros((tensor.shape[mode], rank))
    if tensor.nnz == 0 or rank == 0:
        return out
    prod = np.repeat(tensor.values[:, np.newaxis], rank, axis=1)
    for k in range(d):
        if k == mode:
            continue
        prod *= np.asarray(factors[k])[tensor.coords[:, k].astype(np.int64)]
    np.add.at(out, tensor.coords[:, mode].astype(np.int64), prod)
    return out


def mttkrp_csf(
    payload: Mapping[str, np.ndarray],
    meta: Mapping[str, Any],
    shape: Sequence[int],
    stored_values: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
) -> np.ndarray:
    """SPLATT-style MTTKRP over a CSF payload.

    Factor rows are looked up once per tree *node* and propagated down to
    children with ``repeat`` — points sharing a coordinate prefix share the
    partial product, which is the asymptotic win over the coordinate form
    (one multiply per node instead of per point, per level).
    """
    rank = _check_factors(shape, factors)
    d = len(shape)
    if not 0 <= mode < d:
        raise ShapeError(f"mode {mode} out of range for {d}D tensor")
    nfibs = payload["nfibs"]
    n = int(nfibs[-1]) if nfibs.shape[0] else 0
    out = np.zeros((int(shape[mode]), rank))
    if n == 0 or rank == 0:
        return out
    dim_perm = list(meta.get("dim_perm", range(d)))
    mode_level = dim_perm.index(mode)
    fids = [payload[f"fids_{i}"] for i in range(d)]
    fptr = [payload[f"fptr_{i}"] for i in range(d - 1)]

    # Top-down partial products over every level except the mode's, plus
    # the mode-level ancestor index carried alongside.
    prod = np.ones((int(nfibs[0]), rank))
    mode_idx = np.zeros(int(nfibs[0]), dtype=np.int64)
    if mode_level == 0:
        mode_idx = fids[0].astype(np.int64)
    else:
        prod = np.asarray(factors[dim_perm[0]])[fids[0].astype(np.int64)]
    for i in range(1, d):
        counts = np.diff(fptr[i - 1].astype(np.int64))
        prod = np.repeat(prod, counts, axis=0)
        mode_idx = np.repeat(mode_idx, counts)
        if i == mode_level:
            mode_idx = fids[i].astype(np.int64)
        else:
            prod = prod * np.asarray(factors[dim_perm[i]])[
                fids[i].astype(np.int64)
            ]
    contrib = prod * np.asarray(stored_values)[:, np.newaxis]
    np.add.at(out, mode_idx, contrib)
    return out


def mttkrp_encoded(
    encoded: EncodedTensor, factors: Sequence[np.ndarray], mode: int
) -> np.ndarray:
    """MTTKRP dispatch for an encoded tensor.

    Uses the tree algorithm for CSF payloads and falls back to decode +
    coordinate MTTKRP for every other organization.
    """
    if encoded.fmt.name == "CSF":
        return mttkrp_csf(
            encoded.payload, encoded.meta, encoded.shape, encoded.values,
            factors, mode,
        )
    return mttkrp(encoded.decode(), factors, mode)


def ttv(tensor: SparseTensor, vector: np.ndarray, mode: int) -> SparseTensor:
    """Tensor-times-vector contraction along ``mode``.

    Each point's value is scaled by ``vector[p[mode]]``; the mode column is
    dropped and points that collide in the reduced space are summed.
    """
    vector = np.asarray(vector)
    d = tensor.ndim
    if not 0 <= mode < d:
        raise ShapeError(f"mode {mode} out of range for {d}D tensor")
    if d < 2:
        raise ShapeError("ttv needs at least 2 dimensions")
    if vector.shape != (tensor.shape[mode],):
        raise ShapeError(
            f"vector must have length {tensor.shape[mode]}; "
            f"got {vector.shape}"
        )
    keep = [k for k in range(d) if k != mode]
    new_shape = tuple(tensor.shape[k] for k in keep)
    if tensor.nnz == 0:
        return SparseTensor.empty(new_shape)
    new_coords = tensor.coords[:, keep]
    scaled = tensor.values * vector[tensor.coords[:, mode].astype(np.int64)]
    # Combine colliding points by address (group-by sum).
    addresses = linearize(new_coords, new_shape, validate=False)
    order = stable_argsort(addresses)
    sorted_addr = addresses[order]
    uniq, offsets = segment_boundaries(sorted_addr)
    sums = np.add.reduceat(scaled[order], offsets[:-1].astype(np.int64))
    from .core.linearize import delinearize

    return SparseTensor(new_shape, delinearize(uniq, new_shape), sums)


def inner(a: SparseTensor, b: SparseTensor) -> float:
    """Inner product: sum of products of values at matching coordinates."""
    if a.shape != b.shape:
        raise ShapeError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.nnz == 0 or b.nnz == 0:
        return 0.0
    addr_a = a.linear_addresses()
    addr_b = b.linear_addresses()
    order = stable_argsort(addr_b)
    sorted_b = addr_b[order]
    pos = np.searchsorted(sorted_b, addr_a)
    pos_clip = np.minimum(pos, sorted_b.shape[0] - 1)
    match = (pos < sorted_b.shape[0]) & (sorted_b[pos_clip] == addr_a)
    return float(
        np.dot(a.values[match], b.values[order][pos_clip[match]])
    )
