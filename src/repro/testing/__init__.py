"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
for the storage durability layer (torn writes, injected ``EIO``, seeded
intermittent failures).  :mod:`repro.testing.generators` provides seeded
random tensors, query mixes, and brute-force oracles for differential and
stress testing.  Both live in the package — not the test tree — so
downstream users can run the same crash-consistency and differential
drills against their own deployments.
"""

from .faults import (
    FaultEvent,
    FaultPlan,
    FaultRule,
    OpRecorder,
    SeededFaults,
    inject,
)
from .generators import (
    VALUE_DTYPES,
    oracle_read_box,
    oracle_read_points,
    random_box,
    random_queries,
    random_shape,
    random_sparse_tensor,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultRule",
    "OpRecorder",
    "SeededFaults",
    "VALUE_DTYPES",
    "inject",
    "oracle_read_box",
    "oracle_read_points",
    "random_box",
    "random_queries",
    "random_shape",
    "random_sparse_tensor",
]
