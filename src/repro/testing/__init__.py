"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
for the storage durability layer (torn writes, injected ``EIO``, seeded
intermittent failures).  It lives in the package — not the test tree — so
downstream users can run the same crash-consistency drills against their
own deployments.
"""

from .faults import (
    FaultEvent,
    FaultPlan,
    FaultRule,
    OpRecorder,
    SeededFaults,
    inject,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultRule",
    "OpRecorder",
    "SeededFaults",
    "inject",
]
