"""Seeded random-tensor generators for differential and stress testing.

The property suites (``tests/property/test_differential.py``) drive their
case generation through :mod:`hypothesis`, but the concurrency stress
tests, the store-level differential fuzz loop, and the read benchmarks all
need plain *seeded* generation — reproducible from one integer, usable
outside a hypothesis context, and cheap enough to call thousands of times.
This module is that generator, shipped in the package (like
:mod:`repro.testing.faults`) so downstream users can fuzz their own
deployments against the same oracle.

Everything takes an explicit :class:`numpy.random.Generator`; the caller
owns the seed, so a failing case is reproducible by construction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.boundary import Box
from ..core.tensor import SparseTensor

#: Value dtypes the differential suites sweep over.
VALUE_DTYPES = ("float64", "float32", "int64")


def random_shape(
    rng: np.random.Generator,
    *,
    min_dims: int = 1,
    max_dims: int = 5,
    max_side: int = 8,
) -> tuple[int, ...]:
    """A random tensor shape with 1..5 dimensions (paper's d range)."""
    d = int(rng.integers(min_dims, max_dims + 1))
    return tuple(int(rng.integers(1, max_side + 1)) for _ in range(d))


def random_sparse_tensor(
    rng: np.random.Generator,
    shape: Sequence[int] | None = None,
    *,
    max_points: int = 64,
    dtype: str | None = None,
    allow_duplicates: bool = True,
    max_side: int = 8,
) -> SparseTensor:
    """A random sparse tensor, possibly empty, possibly with duplicates.

    Duplicate coordinates are generated on purpose (unless
    ``allow_duplicates=False``): deduplication with newest-wins semantics
    is part of the read pipeline under test.  ``dtype`` picks the value
    dtype (default: seeded choice from :data:`VALUE_DTYPES`).
    """
    if shape is None:
        shape = random_shape(rng, max_side=max_side)
    shape = tuple(int(m) for m in shape)
    n = int(rng.integers(0, max_points + 1))
    coords = np.column_stack([
        rng.integers(0, m, size=n, dtype=np.uint64) for m in shape
    ]) if n else np.empty((0, len(shape)), dtype=np.uint64)
    if n and not allow_duplicates:
        # Keep first occurrence of each coordinate (order preserved).
        _, first = np.unique(coords, axis=0, return_index=True)
        coords = coords[np.sort(first)]
        n = coords.shape[0]
    if dtype is None:
        dtype = VALUE_DTYPES[int(rng.integers(0, len(VALUE_DTYPES)))]
    if np.issubdtype(np.dtype(dtype), np.integer):
        values = rng.integers(-1000, 1000, size=n).astype(dtype)
    else:
        values = (rng.standard_normal(n) * 100).astype(dtype)
    return SparseTensor(shape, coords, values)


def random_queries(
    rng: np.random.Generator,
    tensor: SparseTensor,
    *,
    n_absent: int = 16,
    shuffle: bool = True,
) -> np.ndarray:
    """A ``(q, d)`` query buffer mixing stored points with random cells.

    Every stored coordinate appears at least once; the absent extras may
    accidentally hit stored cells — the oracle decides, not the generator.
    """
    absent = np.column_stack([
        rng.integers(0, m, size=n_absent, dtype=np.uint64)
        for m in tensor.shape
    ]) if n_absent else np.empty((0, tensor.ndim), dtype=np.uint64)
    queries = np.vstack([tensor.coords, absent])
    if shuffle and queries.shape[0] > 1:
        queries = queries[rng.permutation(queries.shape[0])]
    return queries


def random_box(rng: np.random.Generator, shape: Sequence[int]) -> Box:
    """A random axis-aligned query box inside ``shape`` (never empty)."""
    origin = tuple(int(rng.integers(0, m)) for m in shape)
    size = tuple(
        int(rng.integers(1, m - o + 1)) for o, m in zip(origin, shape)
    )
    return Box(origin, size)


def oracle_read_points(
    tensor: SparseTensor, queries: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Brute-force COO oracle for ``read_points``.

    A plain dictionary lookup per query — no linearization, no sorting, no
    format machinery — so a mismatch against it indicts the format, not
    the oracle.  ``tensor`` must already carry the expected duplicate
    semantics (dedupe with ``keep="last"`` before calling).  Returns
    ``(found_mask, values_of_found_in_query_order)``.
    """
    table = {
        tuple(int(x) for x in c): v
        for c, v in zip(tensor.coords, tensor.values)
    }
    found = np.zeros(queries.shape[0], dtype=bool)
    values = []
    for i, q in enumerate(queries):
        key = tuple(int(x) for x in q)
        if key in table:
            found[i] = True
            values.append(table[key])
    return found, np.asarray(values, dtype=tensor.values.dtype)


def oracle_read_box(tensor: SparseTensor, box: Box) -> SparseTensor:
    """Brute-force oracle for ``read_box``: filter + address sort."""
    from ..core.dtypes import fits_index_dtype

    mask = box.contains_points(tensor.coords)
    inside = SparseTensor(
        tensor.shape, tensor.coords[mask], tensor.values[mask]
    )
    if fits_index_dtype(tensor.shape):
        return inside.sorted_by_linear()
    return inside.sorted_lexicographic()


__all__ = [
    "VALUE_DTYPES",
    "oracle_read_box",
    "oracle_read_points",
    "random_box",
    "random_queries",
    "random_shape",
    "random_sparse_tensor",
]
