"""Deterministic fault injection for the storage durability layer.

Every filesystem primitive in :mod:`repro.storage.durability` consults a
process-global *fault hook* before touching the OS.  This module provides
three hook implementations:

:class:`FaultPlan`
    A list of :class:`FaultRule` s matched in order against each I/O op.
    Rules fire a bounded number of times, can skip the first *N* matches,
    and either raise an injected ``OSError(EIO)`` or (for writes) tear the
    write at an exact byte offset.  Fully deterministic — the same program
    against the same plan fails at the same byte.

:class:`OpRecorder`
    Fails nothing; records every ``(op, path)`` the durability layer
    performs.  The crash-consistency suite first records a fault-free run
    to *enumerate* the injection points, then replays the workload once per
    point with a plan that kills exactly that op.

:class:`SeededFaults`
    Seeded intermittent failures: each matching op fails with probability
    ``p`` drawn from ``random.Random(seed)`` — deterministic across runs,
    chaotic within one.  For soak-testing the retry policy.

Use :func:`inject` as a context manager; it installs the hook and always
restores the previous one::

    with inject(FaultPlan([FaultRule(op="rename", pattern="manifest*")])):
        store.write(coords, values)   # raises OSError at the manifest commit
"""

from __future__ import annotations

import errno
import fnmatch
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..storage import durability

#: Ops the durability layer announces, in the vocabulary rules match on.
OPS = ("write", "read", "rename", "fsync", "unlink", "truncate")


@dataclass
class FaultEvent:
    """One injected (or recorded) I/O event."""

    op: str
    path: Path
    torn_at: int | None = None  # byte offset for torn writes

    def __str__(self) -> str:  # pragma: no cover - debug aid
        tear = f" torn@{self.torn_at}" if self.torn_at is not None else ""
        return f"{self.op}({self.path.name}){tear}"


@dataclass
class FaultRule:
    """One deterministic failure to inject.

    Parameters
    ----------
    op:
        Which primitive to fail (``"write"``, ``"read"``, ``"rename"``,
        ``"fsync"``, ``"unlink"``, ``"truncate"``) or ``"*"`` for any.
    pattern:
        ``fnmatch`` pattern against the file *name* (not the full path).
    torn_bytes:
        For ``op="write"`` only: persist exactly this many bytes of the
        blob, then raise — a torn write.  ``None`` fails the op outright.
    after:
        Skip the first ``after`` matching ops before firing.
    times:
        Fire at most this many times (``None`` = every match forever).
    errno_code:
        The ``errno`` of the injected :class:`OSError` (default ``EIO``).
    """

    op: str = "*"
    pattern: str = "*"
    torn_bytes: int | None = None
    after: int = 0
    times: int | None = 1
    errno_code: int = errno.EIO
    _seen: int = field(default=0, repr=False)
    _fired: int = field(default=0, repr=False)

    def matches(self, op: str, path: Path) -> bool:
        if self.op != "*" and self.op != op:
            return False
        return fnmatch.fnmatch(path.name, self.pattern)

    def should_fire(self) -> bool:
        """Advance this rule's match counter; True when it should fail now."""
        if self.times is not None and self._fired >= self.times:
            return False
        self._seen += 1
        if self._seen <= self.after:
            return False
        self._fired += 1
        return True

    def make_error(self, op: str, path: Path) -> OSError:
        return OSError(
            self.errno_code, f"injected fault on {op} (rule {self.pattern!r})",
            str(path),
        )


class FaultPlan:
    """An ordered set of :class:`FaultRule` s acting as a durability hook."""

    def __init__(self, rules: list[FaultRule] | None = None):
        self.rules = list(rules or [])
        #: Every fault actually injected, in order.
        self.fired: list[FaultEvent] = []

    # -- durability.FaultHook interface --------------------------------

    def before(self, op: str, path: Path) -> None:
        # Torn-write rules fire from torn_write(), not here — otherwise one
        # write op would advance the same rule's counters twice.
        for rule in self.rules:
            if (
                rule.torn_bytes is None
                and rule.matches(op, path)
                and rule.should_fire()
            ):
                self.fired.append(FaultEvent(op, path))
                raise rule.make_error(op, path)

    def torn_write(self, path: Path, data: bytes) -> int | None:
        for rule in self.rules:
            if (
                rule.op == "write"
                and rule.torn_bytes is not None
                and rule.matches("write", path)
                and rule.should_fire()
            ):
                torn = min(rule.torn_bytes, len(data))
                self.fired.append(FaultEvent("write", path, torn_at=torn))
                return torn
        return None


class OpRecorder:
    """A hook that fails nothing and logs every durability-layer op.

    ``events`` after a run is the complete, ordered list of injection
    points; drive :func:`plan_for_crash_point` with an index into it to
    re-run the workload crashing at exactly that op.
    """

    def __init__(self) -> None:
        self.events: list[FaultEvent] = []

    def before(self, op: str, path: Path) -> None:
        self.events.append(FaultEvent(op, path))

    def torn_write(self, path: Path, data: bytes) -> int | None:
        return None


def plan_for_crash_point(
    events: list[FaultEvent], index: int, *, torn_bytes: int | None = None
) -> FaultPlan:
    """A plan that kills the ``index``-th recorded op of a replayed run.

    The replay must perform the same op sequence as the recorded run (the
    workload is deterministic; that is the point).  ``torn_bytes`` applies
    only when the target op is a write, turning the failure into a torn
    write at that byte offset instead of an outright error.
    """
    target = events[index]
    preceding = sum(
        1 for e in events[:index]
        if e.op == target.op and e.path.name == target.path.name
    )
    return FaultPlan([
        FaultRule(
            op=target.op,
            pattern=target.path.name,
            after=preceding,
            times=1,
            torn_bytes=torn_bytes if target.op == "write" else None,
        )
    ])


class SeededFaults:
    """Intermittent failures from a seeded RNG (deterministic per seed)."""

    def __init__(
        self,
        seed: int,
        p: float,
        *,
        ops: tuple[str, ...] = ("read",),
        pattern: str = "*",
    ):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be a probability")
        self.rng = random.Random(seed)
        self.p = p
        self.ops = tuple(ops)
        self.pattern = pattern
        self.fired: list[FaultEvent] = []

    def before(self, op: str, path: Path) -> None:
        if op not in self.ops or not fnmatch.fnmatch(path.name, self.pattern):
            return
        if self.rng.random() < self.p:
            self.fired.append(FaultEvent(op, path))
            raise OSError(
                errno.EIO, f"injected intermittent fault on {op}", str(path)
            )

    def torn_write(self, path: Path, data: bytes) -> int | None:
        return None


@contextmanager
def inject(hook) -> Iterator:
    """Install ``hook`` as the process fault hook for the ``with`` body."""
    old = durability.set_fault_hook(hook)
    try:
        yield hook
    finally:
        durability.set_fault_hook(old)
