"""Automated validation of the paper's empirical claims.

Each claim from the paper's findings (§I bullets, §III discussion, §IV
lessons) is encoded as a predicate over a measured
:class:`~repro.bench.sweep.SweepResult`; evaluating them yields a pass/fail
table with numeric evidence — the reproduction's scorecard.

Wall-clock claims are evaluated with majority-of-cells semantics (timing
noise at small scales), size claims exactly.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Iterable

from ..bench.score import overall_scores
from ..bench.sweep import SweepResult

Cell = tuple[str, int]  # (pattern, ndim)


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of evaluating one claim."""

    claim_id: str
    statement: str
    passed: bool
    evidence: str


def _cells(sweep: SweepResult) -> list[Cell]:
    seen: list[Cell] = []
    for rec in sweep.records:
        key = (rec.pattern, rec.ndim)
        if key not in seen:
            seen.append(key)
    return seen


def _cell_values(sweep: SweepResult, metric: str) -> dict[Cell, dict[str, float]]:
    out: dict[Cell, dict[str, float]] = {}
    for (pattern, ndim, fmt), v in sweep.metric_cells(metric).items():
        out.setdefault((pattern, ndim), {})[fmt] = v
    return out


def _majority(results: Iterable[bool], *, frac: float = 0.66) -> bool:
    results = list(results)
    if not results:
        return False
    return sum(results) / len(results) >= frac


def check_build_is_cheapest_for_coo(sweep: SweepResult) -> ClaimResult:
    """§III-A: COO's build phase is negligible versus every other format."""
    wins = []
    for rec_cell in _cells(sweep):
        pattern, ndim = rec_cell
        coo = sweep.cell(pattern, ndim, "COO").write.build_seconds
        others = [
            sweep.cell(pattern, ndim, f).write.build_seconds
            for f in ("GCSR++", "GCSC++", "CSF")
            if _has(sweep, pattern, ndim, f)
        ]
        wins.append(bool(others) and coo <= min(others))
    return ClaimResult(
        "C1",
        "COO build time is the smallest of all organizations",
        _majority(wins),
        f"cells won: {sum(wins)}/{len(wins)}",
    )


def _has(sweep: SweepResult, pattern: str, ndim: int, fmt: str) -> bool:
    try:
        sweep.cell(pattern, ndim, fmt)
        return True
    except KeyError:
        return False


def check_linear_beats_coo_overall(sweep: SweepResult) -> ClaimResult:
    """§III-A / Table III: COO pays its free build back at write time —
    LINEAR's total write is at most COO's (within noise) in most cells."""
    sizes = _cell_values(sweep, "write_time")
    wins = [
        by_fmt.get("LINEAR", float("inf")) <= 1.2 * by_fmt.get("COO", 0.0)
        for by_fmt in sizes.values()
    ]
    return ClaimResult(
        "C2",
        "LINEAR's total write time <= COO's (free build paid back by bytes)",
        _majority(wins),
        f"cells won: {sum(wins)}/{len(wins)}",
    )


def check_size_ordering(sweep: SweepResult) -> ClaimResult:
    """§III-B: LINEAR < GCSR++ = GCSC++, with COO the largest — exact in
    every cell."""
    sizes = _cell_values(sweep, "file_size")
    ok = True
    for by_fmt in sizes.values():
        ok &= by_fmt["LINEAR"] < by_fmt["GCSR++"]
        ok &= abs(by_fmt["GCSR++"] - by_fmt["GCSC++"]) <= 16  # header noise
        ok &= by_fmt["COO"] >= by_fmt["LINEAR"]
    return ClaimResult(
        "C3",
        "File sizes: LINEAR < GCSR++ = GCSC++ and COO >= LINEAR everywhere",
        ok,
        f"cells checked: {len(sizes)}",
    )


def check_coo_reduction_factor(sweep: SweepResult) -> ClaimResult:
    """§III-B: 'the potential reduction in storage space can be as much as
    O(d) times' — COO/LINEAR index ratio equals d."""
    ratios = []
    for pattern, ndim in _cells(sweep):
        coo = sweep.cell(pattern, ndim, "COO").write.index_nbytes
        lin = sweep.cell(pattern, ndim, "LINEAR").write.index_nbytes
        ratios.append((ndim, coo / lin if lin else 0.0))
    ok = all(abs(r - d) < 0.01 for d, r in ratios)
    return ClaimResult(
        "C4",
        "COO's index is exactly d times LINEAR's",
        ok,
        "; ".join(f"{d}D: {r:.2f}x" for d, r in sorted(set(ratios))),
    )


def check_scans_read_slowest(sweep: SweepResult) -> ClaimResult:
    """§III-C: COO and LINEAR read significantly slower than the
    compressed organizations."""
    times = _cell_values(sweep, "read_time")
    wins = []
    for by_fmt in times.values():
        scan_best = min(by_fmt["COO"], by_fmt["LINEAR"])
        comp_worst = max(by_fmt["GCSR++"], by_fmt["GCSC++"])
        wins.append(by_fmt["COO"] == max(by_fmt.values())
                    and comp_worst < scan_best)
    return ClaimResult(
        "C5",
        "COO reads slowest; GCSR++/GCSC++ beat both scan formats",
        _majority(wins),
        f"cells won: {sum(wins)}/{len(wins)}",
    )


def check_csf_size_variance(sweep: SweepResult) -> ClaimResult:
    """§III-B: CSF 'exhibits variable space sizes across different sparse
    patterns' — its per-point size varies more than LINEAR's."""

    def per_point_spread(fmt: str) -> float:
        vals = []
        for pattern, ndim in _cells(sweep):
            rec = sweep.cell(pattern, ndim, fmt)
            if rec.write.nnz:
                vals.append(rec.write.index_nbytes / rec.write.nnz)
        if len(vals) < 2:
            return 0.0
        return statistics.pstdev(vals) / (statistics.mean(vals) or 1.0)

    csf = per_point_spread("CSF")
    linear = per_point_spread("LINEAR")
    return ClaimResult(
        "C6",
        "CSF's per-point size varies across patterns; LINEAR's is fixed",
        csf > 2 * linear,
        f"relative spread: CSF {csf:.3f} vs LINEAR {linear:.3f}",
    )


def check_overall_scores(sweep: SweepResult) -> ClaimResult:
    """Table IV: LINEAR holds the best balanced score (GCSR++ within a
    whisker) and COO sits at the bottom of the ranking."""
    ranked = [s.format_name for s in sweep.scores()]
    ok = ranked[0] in ("LINEAR", "GCSR++", "GCSC++") and "COO" in ranked[-2:]
    return ClaimResult(
        "C7",
        "Balanced scores: LINEAR-family best, COO among the worst",
        ok,
        " > ".join(ranked) + " (best first)",
    )


ALL_CHECKS: tuple[Callable[[SweepResult], ClaimResult], ...] = (
    check_build_is_cheapest_for_coo,
    check_linear_beats_coo_overall,
    check_size_ordering,
    check_coo_reduction_factor,
    check_scans_read_slowest,
    check_csf_size_variance,
    check_overall_scores,
)


def evaluate_claims(sweep: SweepResult) -> list[ClaimResult]:
    """Evaluate every registered claim against a measured sweep."""
    return [check(sweep) for check in ALL_CHECKS]


def claims_report(sweep: SweepResult) -> str:
    """Render the scorecard."""
    from ..bench.report import render_table

    results = evaluate_claims(sweep)
    rows = [
        [r.claim_id, "PASS" if r.passed else "FAIL", r.statement, r.evidence]
        for r in results
    ]
    passed = sum(r.passed for r in results)
    return render_table(
        ["id", "verdict", "claim", "evidence"],
        rows,
        title=(f"Paper-claims scorecard: {passed}/{len(results)} reproduced "
               "on this sweep"),
        formatters={2: str, 3: str},
    )
