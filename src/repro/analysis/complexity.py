"""Closed-form complexity models — Table I as executable code.

For every organization the paper states build time, read time, and space
complexity (Table I).  This module turns those into evaluable functions of
``(n, d, shape, q)`` so that:

* the op-counting tests can check measured counts against the models,
* the advisor can rank organizations for a predicted workload, and
* the Table I bench can report predicted vs fitted scaling exponents.

Unit conventions: "ops" are the abstract operations
:class:`~repro.core.costmodel.OpCounter` tallies; "space" is counted in
index *elements* (the paper's "units of the index type's size"), values and
negligible metadata excluded, as in §II.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.errors import FormatError


def _min_dim(shape: Sequence[int]) -> int:
    return min(int(m) for m in shape)


def sort_ops(n: int) -> int:
    """The n log2 n budget the cost model charges per sort."""
    return 0 if n <= 1 else math.ceil(n * math.log2(n))


# ----------------------------------------------------------------------
# Build time (Table I column 2)
# ----------------------------------------------------------------------


def build_ops(fmt: str, n: int, shape: Sequence[int]) -> int:
    """Predicted build operations for ``n`` points in ``shape``."""
    d = len(shape)
    key = fmt.upper()
    if key == "COO":
        return 1  # O(1): adopt the buffer
    if key == "LINEAR":
        return n * d  # O(n*d) transform
    if key in ("GCSR++", "GCSC++"):
        # O(n log n + 2n): sort plus transform-and-package passes.
        return sort_ops(n) + 2 * n
    if key == "CSF":
        return sort_ops(n) + n * d  # O(n log n + n*d)
    if key == "COO-SORTED":
        return sort_ops(n) + n * d
    if key == "HICOO":
        return sort_ops(n) + 2 * n * d
    raise FormatError(f"no build model for format {fmt!r}")


# ----------------------------------------------------------------------
# Read time (Table I column 3)
# ----------------------------------------------------------------------


def read_ops(fmt: str, n: int, q: int, shape: Sequence[int]) -> int:
    """Predicted read operations for ``q`` queries against ``n`` points."""
    d = len(shape)
    key = fmt.upper()
    if key in ("COO", "LINEAR"):
        base = n * q  # full scan per query
        if key == "LINEAR":
            base += q * d  # query transform pass
        return base
    if key in ("GCSR++", "GCSC++"):
        # O(q * n/min(m) + q): segment scan plus one fold-transform pass
        # over the query buffer (Table I's "+ n" term, with q queries),
        # plus the two indptr lookups per query.
        return math.ceil(q * n / _min_dim(shape)) + q + 2 * q
    if key == "CSF":
        # Root-to-leaf descent: d levels, each a binary search over the
        # node's fan-out; modeled with the global average fan-out.
        avg_fanout = max(2.0, n ** (1.0 / d))
        return math.ceil(q * d * math.log2(avg_fanout + 1))
    if key == "COO-SORTED":
        return math.ceil(q * math.log2(n + 1)) + q * d
    if key == "HICOO":
        n_blocks = max(1, n // 64)
        return math.ceil(q * math.log2(n_blocks + 1)) + q * max(
            1, n // n_blocks
        )
    raise FormatError(f"no read model for format {fmt!r}")


# ----------------------------------------------------------------------
# Space (Table I column 4)
# ----------------------------------------------------------------------


def space_elements(fmt: str, n: int, shape: Sequence[int]) -> int:
    """Predicted index elements stored (deterministic formats)."""
    d = len(shape)
    key = fmt.upper()
    if key in ("COO", "COO-SORTED"):
        return n * d
    if key == "LINEAR":
        return n
    if key in ("GCSR++", "GCSC++"):
        return n + _min_dim(shape) + 1  # indices + pointer array
    if key == "CSF":
        raise FormatError(
            "CSF space is data-dependent; use csf_space_bounds or "
            "patterns.stats.csf_level_counts"
        )
    raise FormatError(f"no space model for format {fmt!r}")


@dataclass(frozen=True)
class CSFSpaceBounds:
    """The paper's three CSF space cases (§II-E), in index elements."""

    best: int  # O(n + d): single chain above the leaves
    average: int  # ~O(2n (1 - (1/2)^d)): half duplication per level
    worst: int  # O(n * d): no shared prefixes


def csf_space_bounds(n: int, d: int) -> CSFSpaceBounds:
    """Evaluate the paper's best/average/worst CSF space cases."""
    best = n + d
    average = math.ceil(2 * n * (1.0 - 0.5**d))
    worst = n * d
    return CSFSpaceBounds(best=best, average=average, worst=worst)


# ----------------------------------------------------------------------
# Predicted orderings (the inequalities the paper's text asserts)
# ----------------------------------------------------------------------

#: §III-A: build-time ranking, fastest first.
PREDICTED_BUILD_ORDER: tuple[str, ...] = (
    "COO",
    "LINEAR",
    "GCSR++",
    "GCSC++",
    "CSF",
)

#: §III-B: file-size ranking, smallest first.
PREDICTED_SIZE_ORDER: tuple[str, ...] = (
    "LINEAR",
    "GCSR++",
    "GCSC++",
    "CSF",
    "COO",
)

#: §III-C: query-time ranking, fastest first (CSF fastest at high d).
PREDICTED_READ_ORDER: tuple[str, ...] = (
    "CSF",
    "GCSR++",
    "GCSC++",
    "LINEAR",
    "COO",
)


def predicted_growth_exponent(fmt: str, *, operation: str) -> float:
    """Leading-order exponent of ops vs n (for scaling-fit validation).

    ``operation`` is "build" or "read-per-query".  Sorting contributes the
    log factor, which a finite-range power-law fit absorbs as a small bump
    above 1.0 — callers should use generous tolerances.
    """
    key = fmt.upper()
    if operation == "build":
        return 0.0 if key == "COO" else 1.0
    if operation == "read-per-query":
        if key in ("COO", "LINEAR"):
            return 1.0  # per query cost grows linearly with n
        if key in ("GCSR++", "GCSC++"):
            return 1.0  # n / min(m) with fixed shape is linear in n
        if key in ("CSF", "COO-SORTED", "HICOO"):
            return 0.0  # logarithmic: exponent ~ 0
        raise FormatError(f"no read growth model for {fmt!r}")
    raise ValueError(f"operation must be 'build' or 'read-per-query', got {operation!r}")
