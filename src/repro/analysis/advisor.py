"""Automatic organization selection — the paper's stated future work.

§VI: "In future, we plan to explore automatic strategies for selecting
different organization for applications based on the characterization of
sparsity in their data."  This module implements that strategy: given a
tensor's :class:`~repro.patterns.stats.PatternStats` and a workload
description (how write-heavy / read-heavy / size-sensitive the application
is), predict each organization's cost from the Table I closed forms plus
the measured sparsity characterization, and rank them.

The predictions deliberately reuse the same normalized-score construction
as Table IV so the advisor's ranking can be validated against an actual
measured sweep (``benchmarks/bench_ablation_advisor.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from ..core.tensor import SparseTensor
from ..formats.registry import PAPER_FORMATS
from ..patterns.stats import PatternStats, characterize
from .complexity import build_ops, read_ops, space_elements


@dataclass(frozen=True)
class Workload:
    """Relative importance of the three cost axes, plus read volume.

    ``write_weight`` / ``read_weight`` / ``size_weight`` mirror the paper's
    equal-weight score (all 1.0 by default).  ``reads_per_write`` scales the
    read cost: an archival workload queries rarely (~0), an analysis
    workload queries constantly (>> 1).
    """

    write_weight: float = 1.0
    read_weight: float = 1.0
    size_weight: float = 1.0
    reads_per_write: float = 1.0
    queries_per_read: int = 2048

    def __post_init__(self) -> None:
        if min(self.write_weight, self.read_weight, self.size_weight) < 0:
            raise ValueError("workload weights must be non-negative")
        if self.reads_per_write < 0 or self.queries_per_read < 0:
            raise ValueError("workload volumes must be non-negative")


#: Archive-style workload: write once, rarely read, size matters most.
ARCHIVAL = Workload(write_weight=1.0, read_weight=0.25, size_weight=2.0,
                    reads_per_write=0.1)

#: Analysis-style workload: write once, read constantly.
ANALYTICAL = Workload(write_weight=0.5, read_weight=2.0, size_weight=0.5,
                      reads_per_write=50.0)

#: The paper's balanced score.
BALANCED = Workload()


@dataclass
class FormatPrediction:
    """Predicted per-axis costs for one organization (abstract units)."""

    format_name: str
    build_cost: float
    read_cost: float
    space_cost: float
    combined: float = 0.0


@dataclass
class Recommendation:
    """Ranked advisor output."""

    ranked: list[FormatPrediction]
    workload: Workload
    stats: PatternStats = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def best(self) -> str:
        return self.ranked[0].format_name

    def order(self) -> list[str]:
        return [p.format_name for p in self.ranked]


def _predicted_space(fmt: str, stats: PatternStats) -> float:
    """Index elements, using the characterization for data-dependent CSF."""
    key = fmt.upper()
    n = stats.nnz
    shape = stats.shape
    if key == "CSF":
        # Measured prefix sharing: nodes per level, plus the fptr arrays
        # (one pointer per non-leaf node plus a terminator per level).
        non_leaf = sum(stats.csf_levels[:-1]) if stats.csf_levels else 0
        return stats.csf_total_nodes + non_leaf + max(0, len(shape) - 1)
    return float(space_elements(fmt, n, shape))


def _predicted_read(fmt: str, stats: PatternStats, q: int) -> float:
    """Read ops, refined with the measured row-occupancy for GCSR/GCSC."""
    key = fmt.upper()
    n = stats.nnz
    shape = stats.shape
    if key in ("GCSR++", "GCSC++"):
        # Replace the uniform n/min(m) estimate with the measured average
        # folded-row occupancy.
        per_query = max(1.0, stats.avg_points_per_folded_row)
        return q * per_query + 2 * q * len(shape)
    if key == "CSF":
        # Per-level average fan-out from the measured node counts.
        cost = 0.0
        prev = 1
        for count in stats.csf_levels:
            fanout = max(1.0, count / max(1, prev))
            cost += math.log2(fanout + 1)
            prev = count
        return q * max(1.0, cost)
    return float(read_ops(fmt, n, q, shape))


def predict_costs(
    stats: PatternStats,
    workload: Workload = BALANCED,
    *,
    formats: Sequence[str] = PAPER_FORMATS,
) -> list[FormatPrediction]:
    """Predicted per-axis costs for each candidate organization.

    Write cost combines the build ops with the serialized index size (the
    Table III lesson: a cheap build can be paid back by a large fragment
    write).  The I/O term converts index elements to "op equivalents" with
    a single calibration constant chosen so that COO's write penalty
    dominates its build advantage, as measured in the paper.
    """
    n = stats.nnz
    shape = stats.shape
    q = workload.queries_per_read
    # One stored index element costs about as much to push through the
    # filesystem as ~8 in-memory ops (8 bytes at ~GB/s vs ~GHz op rates).
    io_ops_per_element = 8.0
    predictions = []
    for fmt in formats:
        space = _predicted_space(fmt, stats)
        build = build_ops(fmt, n, shape) + io_ops_per_element * space
        read = _predicted_read(fmt, stats, q) + io_ops_per_element * space * 0.25
        predictions.append(
            FormatPrediction(
                format_name=fmt,
                build_cost=build,
                read_cost=read,
                space_cost=space,
            )
        )
    return predictions


def recommend(
    tensor_or_stats: SparseTensor | PatternStats,
    workload: Workload = BALANCED,
    *,
    formats: Sequence[str] = PAPER_FORMATS,
) -> Recommendation:
    """Rank organizations for a tensor under a workload.

    Costs are normalized per axis by the worst candidate (exactly the Table
    IV construction) and combined with the workload weights; lower is
    better.
    """
    if isinstance(tensor_or_stats, SparseTensor):
        stats = characterize(tensor_or_stats)
    else:
        stats = tensor_or_stats
    predictions = predict_costs(stats, workload, formats=formats)
    max_build = max(p.build_cost for p in predictions) or 1.0
    max_read = max(p.read_cost for p in predictions) or 1.0
    max_space = max(p.space_cost for p in predictions) or 1.0
    # The read axis is amplified by how often the application re-reads what
    # it wrote; an archival workload (reads_per_write ~ 0) all but ignores
    # read cost.
    effective_read_weight = workload.read_weight * workload.reads_per_write
    wsum = (
        workload.write_weight + effective_read_weight + workload.size_weight
    ) or 1.0
    for p in predictions:
        p.combined = (
            workload.write_weight * (p.build_cost / max_build)
            + effective_read_weight * (p.read_cost / max_read)
            + workload.size_weight * (p.space_cost / max_space)
        ) / wsum
    ranked = sorted(predictions, key=lambda p: p.combined)
    return Recommendation(ranked=ranked, workload=workload, stats=stats)
