"""Analysis: Table I complexity models, scaling fits, format advisor."""

from .advisor import (
    ANALYTICAL,
    ARCHIVAL,
    BALANCED,
    FormatPrediction,
    Recommendation,
    Workload,
    predict_costs,
    recommend,
)
from .claims import ClaimResult, claims_report, evaluate_claims
from .crossover import (
    CrossoverPoint,
    compare_read_costs,
    critical_occupancy,
    dimensionality_sweep,
    measured_crossover,
)
from .complexity import (
    PREDICTED_BUILD_ORDER,
    PREDICTED_READ_ORDER,
    PREDICTED_SIZE_ORDER,
    CSFSpaceBounds,
    build_ops,
    csf_space_bounds,
    predicted_growth_exponent,
    read_ops,
    sort_ops,
    space_elements,
)
from .fit import PowerLawFit, exponent_matches, fit_power_law

__all__ = [
    "ClaimResult",
    "claims_report",
    "evaluate_claims",
    "CrossoverPoint",
    "compare_read_costs",
    "critical_occupancy",
    "dimensionality_sweep",
    "measured_crossover",
    "ANALYTICAL",
    "ARCHIVAL",
    "BALANCED",
    "FormatPrediction",
    "Recommendation",
    "Workload",
    "predict_costs",
    "recommend",
    "PREDICTED_BUILD_ORDER",
    "PREDICTED_READ_ORDER",
    "PREDICTED_SIZE_ORDER",
    "CSFSpaceBounds",
    "build_ops",
    "csf_space_bounds",
    "predicted_growth_exponent",
    "read_ops",
    "sort_ops",
    "space_elements",
    "PowerLawFit",
    "exponent_matches",
    "fit_power_law",
]
