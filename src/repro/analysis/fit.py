"""Empirical scaling fits (log–log regression) for Table I validation.

Measured operation counts (or wall times) at a sweep of problem sizes are
fit to ``y = c * n^k`` by least squares in log space; the fitted exponent
``k`` is compared against :func:`repro.analysis.complexity.predicted_growth_exponent`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a log–log least squares fit ``y = coefficient * x^exponent``."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = c * x^k`` by linear regression on (log x, log y).

    Zero or negative samples are rejected — callers should add a small
    epsilon to op counts that can be zero (COO's O(1) build).
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("xs and ys must be 1D and aligned")
    if x.shape[0] < 2:
        raise ValueError("need at least two samples to fit")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires positive samples")
    lx = np.log(x)
    ly = np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    pred = slope * lx + intercept
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(np.exp(intercept)),
        r_squared=r2,
    )


def exponent_matches(
    fit: PowerLawFit, predicted: float, *, tolerance: float = 0.35
) -> bool:
    """Whether a fitted exponent is consistent with the predicted one.

    Tolerance is generous by design: log factors from sorting and constant
    terms at small n both bias finite-range exponents.
    """
    return abs(fit.exponent - predicted) <= tolerance
