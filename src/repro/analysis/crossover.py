"""Crossover analysis: where does CSF overtake GCSR++ on reads?

§III-C's key observation: "the read time complexity of GCSR++ and GCSC++
increases as the number of dimensions rises … CSF exhibits lower
performance when handling 2D tensors but surpasses GCSR++ and GCSC++ when
dealing with 3D or 4D tensors."  The mechanism is folded-row occupancy:
GCSR++ scans ``n / min(m)`` entries per query while CSF descends
``d * log2(fanout)`` levels.  This module computes the crossover point from
the Table I models and checks it against measured op counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.tensor import SparseTensor
from .complexity import read_ops


@dataclass(frozen=True)
class CrossoverPoint:
    """The occupancy at which CSF's per-query read cost undercuts GCSR++."""

    n: int
    shape: tuple[int, ...]
    gcsr_per_query: float
    csf_per_query: float

    @property
    def csf_wins(self) -> bool:
        return self.csf_per_query < self.gcsr_per_query

    @property
    def row_occupancy(self) -> float:
        return self.n / min(self.shape)


def compare_read_costs(n: int, shape: Sequence[int]) -> CrossoverPoint:
    """Model per-query read cost of GCSR++ vs CSF for one configuration."""
    q = 1000
    gcsr = read_ops("GCSR++", n, q, shape) / q
    csf = read_ops("CSF", n, q, shape) / q
    return CrossoverPoint(
        n=n,
        shape=tuple(int(m) for m in shape),
        gcsr_per_query=gcsr,
        csf_per_query=csf,
    )


def critical_occupancy(n: int, d: int) -> float:
    """Folded-row occupancy above which CSF's descent is predicted cheaper.

    GCSR++ scans ``occupancy`` entries per query; CSF compares
    ``d * log2(n^(1/d) + 1)`` per query — so the crossover sits at
    ``occupancy* = d * log2(n^(1/d) + 1)`` (a few dozen for realistic n/d).
    """
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    avg_fanout = max(2.0, n ** (1.0 / d))
    return d * math.log2(avg_fanout + 1)


def dimensionality_sweep(
    n: int, *, min_dim: int = 2, max_dim: int = 6, side_budget: int = 1 << 24
) -> list[CrossoverPoint]:
    """Model the 2D→high-d crossover at (approximately) constant cell count.

    Mirrors the paper's Table II construction: as d grows, per-dimension
    sides shrink (8192² → 512³ → 128⁴ all have ~2^26 cells), so the min
    dimension — GCSR++'s folded row count — shrinks and row occupancy
    grows.
    """
    points = []
    for d in range(min_dim, max_dim + 1):
        side = max(2, round(side_budget ** (1.0 / d)))
        points.append(compare_read_costs(n, (side,) * d))
    return points


def measured_crossover(
    tensor: SparseTensor, q: int = 256
) -> CrossoverPoint:
    """Measured (op-counted) per-query costs for one real tensor."""
    from ..core.costmodel import OpCounter
    from ..formats import CSFFormat, GCSRFormat

    queries = tensor.coords[: min(q, tensor.nnz)]
    costs = {}
    for fmt in (GCSRFormat(), CSFFormat()):
        result = fmt.build(tensor.coords, tensor.shape)
        counter = OpCounter()
        fmt.read_faithful(
            result.payload, result.meta, tensor.shape, queries,
            counter=counter,
        )
        costs[fmt.name] = counter.total / max(1, queries.shape[0])
    return CrossoverPoint(
        n=tensor.nnz,
        shape=tensor.shape,
        gcsr_per_query=costs["GCSR++"],
        csf_per_query=costs["CSF"],
    )
