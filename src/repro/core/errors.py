"""Exception hierarchy shared across the library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ShapeError(ReproError, ValueError):
    """A tensor shape or coordinate buffer is malformed or out of bounds."""


class FormatError(ReproError, ValueError):
    """A storage-organization payload is structurally invalid."""


class FragmentError(ReproError, IOError):
    """A fragment file is missing, truncated, or fails integrity checks."""


class PatternError(ReproError, ValueError):
    """A sparsity-pattern generator was configured inconsistently."""
