"""Exception hierarchy shared across the library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ShapeError(ReproError, ValueError):
    """A tensor shape or coordinate buffer is malformed or out of bounds."""


class FormatError(ReproError, ValueError):
    """A storage-organization payload is structurally invalid."""


class FragmentError(ReproError, IOError):
    """A fragment file is missing, truncated, or fails integrity checks."""


class ChecksumError(FragmentError):
    """A fragment's trailing CRC-32 does not match its contents.

    Subclass of :class:`FragmentError`, so existing ``except FragmentError``
    handlers keep working; raised by
    :func:`repro.storage.serialization.verify_crc`.
    """


class ManifestError(FragmentError):
    """A store manifest is unreadable, unparsable, or inconsistent.

    Subclass of :class:`FragmentError` for backward compatibility with
    callers that catch the broad class.
    """


class FragmentIOError(FragmentError):
    """The operating system failed to read or write a fragment file.

    Distinguished from corruption (:class:`ChecksumError`) because an
    ``EIO``/``EAGAIN`` from a parallel filesystem may be *transient* — the
    store's :class:`~repro.storage.durability.RetryPolicy` retries these but
    never retries checksum or parse failures.
    """


class WorkerError(ReproError):
    """A parallel packaging worker failed; ``part_index`` names the part.

    Raised by :func:`repro.storage.parallel.pack_parts_parallel` (and thus
    :meth:`FragmentStore.write_many`) so a partial-batch failure reports
    *which* input part died instead of surfacing a bare pickled traceback.
    """

    def __init__(self, message: str, *, part_index: int | None = None):
        super().__init__(message)
        self.part_index = part_index


class PatternError(ReproError, ValueError):
    """A sparsity-pattern generator was configured inconsistently."""
