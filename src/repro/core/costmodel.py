"""Operation counting used to validate the paper's Table I empirically.

Measured wall-clock on a Python/NumPy substrate has different constant
factors than the paper's C++ testbed, so the *exact* complexity claims are
checked at the level of abstract operation counts instead: every BUILD/READ
implementation can be handed an :class:`OpCounter` and charges it for the
operations Table I's closed forms count — coordinate transforms, sort key
comparisons, index probes, and pointer lookups.

Tests in ``tests/analysis`` assert the measured counts match the Table I
formulas (see :mod:`repro.analysis.complexity` for the closed forms).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class OpCounter:
    """Mutable tally of abstract operations charged by format algorithms.

    Attributes
    ----------
    transforms:
        Per-point, per-dimension coordinate arithmetic (linearization,
        delinearization, folding).  LINEAR build charges ``n * d`` here.
    comparisons:
        Key/coordinate equality or ordering probes during reads — the
        dominant term of every read complexity in Table I.
    sort_ops:
        Comparison budget attributed to sorting, charged as
        ``ceil(n * log2(n))`` per sort of ``n`` keys (0 or 1 keys are free).
    pointer_lookups:
        Structure-navigation loads (``row_ptr``/``fptr`` dereferences).
    memory_ops:
        Element moves: buffer packaging, value reorganization, gathers.
    """

    transforms: int = 0
    comparisons: int = 0
    sort_ops: int = 0
    pointer_lookups: int = 0
    memory_ops: int = 0
    phase_log: list[tuple[str, str, int]] = field(default_factory=list)

    def charge_transforms(self, count: int, *, note: str = "") -> None:
        self.transforms += int(count)
        if note:
            self.phase_log.append((note, "transforms", int(count)))

    def charge_comparisons(self, count: int, *, note: str = "") -> None:
        self.comparisons += int(count)
        if note:
            self.phase_log.append((note, "comparisons", int(count)))

    def charge_sort(self, n_keys: int, *, note: str = "") -> None:
        n = int(n_keys)
        cost = 0 if n <= 1 else math.ceil(n * math.log2(n))
        self.sort_ops += cost
        if note:
            self.phase_log.append((note, "sort_ops", cost))

    def charge_pointer_lookups(self, count: int, *, note: str = "") -> None:
        self.pointer_lookups += int(count)
        if note:
            self.phase_log.append((note, "pointer_lookups", int(count)))

    def charge_memory(self, count: int, *, note: str = "") -> None:
        self.memory_ops += int(count)
        if note:
            self.phase_log.append((note, "memory_ops", int(count)))

    @property
    def total(self) -> int:
        """Grand total across all operation classes."""
        return (
            self.transforms
            + self.comparisons
            + self.sort_ops
            + self.pointer_lookups
            + self.memory_ops
        )

    def snapshot(self) -> dict[str, int]:
        """Immutable view of the current tallies (phase log excluded)."""
        return {
            "transforms": self.transforms,
            "comparisons": self.comparisons,
            "sort_ops": self.sort_ops,
            "pointer_lookups": self.pointer_lookups,
            "memory_ops": self.memory_ops,
            "total": self.total,
        }

    def reset(self) -> None:
        self.transforms = 0
        self.comparisons = 0
        self.sort_ops = 0
        self.pointer_lookups = 0
        self.memory_ops = 0
        self.phase_log.clear()

    def absorb(self, other: "OpCounter") -> None:
        """Fold another counter's tallies into this one.

        The parallel read pipeline hands each worker its own counter
        (``OpCounter`` is deliberately lock-free) and merges them here in
        the coordinating thread, so op accounting stays exact under
        ``parallel="thread"``.
        """
        self.transforms += other.transforms
        self.comparisons += other.comparisons
        self.sort_ops += other.sort_ops
        self.pointer_lookups += other.pointer_lookups
        self.memory_ops += other.memory_ops
        self.phase_log.extend(other.phase_log)


class NullCounter(OpCounter):
    """Counter that discards all charges (used when accounting is off).

    Keeping the same interface lets format code charge unconditionally
    without ``if counter is not None`` branches on hot paths that are already
    vectorized (the charge itself is O(1) per phase, not per element).
    """

    def charge_transforms(self, count: int, *, note: str = "") -> None:  # noqa: D102
        pass

    def charge_comparisons(self, count: int, *, note: str = "") -> None:  # noqa: D102
        pass

    def charge_sort(self, n_keys: int, *, note: str = "") -> None:  # noqa: D102
        pass

    def charge_pointer_lookups(self, count: int, *, note: str = "") -> None:  # noqa: D102
        pass

    def charge_memory(self, count: int, *, note: str = "") -> None:  # noqa: D102
        pass

    def absorb(self, other: OpCounter) -> None:  # noqa: D102
        pass


#: Shared do-nothing counter instance.
NULL_COUNTER = NullCounter()
