"""Coordinate <-> linear-address transforms (paper §II-B).

The LINEAR organization stores, for a point with coordinates
``(c_1, ..., c_d)`` in a tensor of shape ``(m_1, ..., m_d)``, the row-major
address ``sum_i c_i * prod_{j>i} m_j``.  GCSR++/GCSC++ reuse the same
transform to fold high-dimensional tensors into 2D (Algorithm 1 lines 8–9),
and the benchmark READ merges results by linear address (Algorithm 3 line 12).

All transforms are vectorized over ``(n, d)`` coordinate arrays and guarded
against 64-bit overflow through :func:`repro.core.dtypes.check_linearizable`.
Block-local variants support the paper's mitigation for address overflow:
linearize against a block's own boundary instead of the global tensor.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .dtypes import (
    INDEX_DTYPE,
    as_index_array,
    check_linearizable,
    column_major_strides,
    row_major_strides,
)
from .errors import ShapeError


def _validate_coords(coords: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    coords = as_index_array(coords)
    if coords.ndim != 2:
        raise ShapeError(f"coords must be 2D (n, d); got ndim={coords.ndim}")
    if coords.shape[1] != len(shape):
        raise ShapeError(
            f"coords have {coords.shape[1]} dims but shape has {len(shape)}"
        )
    return coords


def linearize(
    coords: np.ndarray,
    shape: Sequence[int],
    *,
    order: str = "row",
    validate: bool = True,
) -> np.ndarray:
    """Transform an ``(n, d)`` coordinate array into ``n`` linear addresses.

    Parameters
    ----------
    coords:
        Coordinate buffer, one point per row.
    shape:
        Tensor extent per dimension.
    order:
        ``"row"`` (paper default) or ``"col"`` for column-major.
    validate:
        When true, verify every coordinate is within ``shape``.

    Returns
    -------
    numpy.ndarray
        ``uint64`` addresses, one per point.
    """
    coords = _validate_coords(coords, shape)
    check_linearizable(shape)
    if validate and coords.size:
        bounds = as_index_array(list(shape))
        if np.any(coords >= bounds[np.newaxis, :]):
            bad = int(np.argmax(np.any(coords >= bounds[np.newaxis, :], axis=1)))
            raise ShapeError(
                f"coordinate {tuple(int(c) for c in coords[bad])} outside "
                f"tensor shape {tuple(int(m) for m in shape)}"
            )
    if order == "row":
        strides = row_major_strides(shape)
    elif order == "col":
        strides = column_major_strides(shape)
    else:
        raise ValueError(f"order must be 'row' or 'col', got {order!r}")
    # (coords * strides).sum keeps everything in uint64; overflow is ruled
    # out by check_linearizable above.
    return (coords * strides[np.newaxis, :]).sum(axis=1, dtype=INDEX_DTYPE)


def delinearize(
    addresses: np.ndarray,
    shape: Sequence[int],
    *,
    order: str = "row",
    validate: bool = True,
) -> np.ndarray:
    """Inverse of :func:`linearize`: addresses back to ``(n, d)`` coordinates.

    This is the ``reverse_transform`` of Algorithm 1 line 9 — GCSR++ uses it
    with a *different* (2D) shape than the one used to linearize, which is
    exactly how the dimensionality reduction works.
    """
    addresses = as_index_array(addresses)
    if addresses.ndim != 1:
        raise ShapeError("addresses must be a 1D vector")
    check_linearizable(shape)
    if validate and addresses.size:
        from .dtypes import cell_count

        if int(addresses.max()) >= cell_count(shape):
            raise ShapeError(
                f"address {int(addresses.max())} outside tensor of "
                f"{cell_count(shape)} cells"
            )
    d = len(shape)
    out = np.empty((addresses.shape[0], d), dtype=INDEX_DTYPE)
    rem = addresses
    if order == "row":
        dims = range(d)
        strides = row_major_strides(shape)
    elif order == "col":
        dims = range(d - 1, -1, -1)
        strides = column_major_strides(shape)
    else:
        raise ValueError(f"order must be 'row' or 'col', got {order!r}")
    for i in dims:
        s = strides[i]
        out[:, i] = rem // s
        rem = rem % s
    return out


def linearize_block_local(
    coords: np.ndarray,
    origin: Sequence[int],
    block_shape: Sequence[int],
    *,
    order: str = "row",
) -> np.ndarray:
    """Linearize ``coords`` relative to a block at ``origin``.

    The paper's mitigation for LINEAR address overflow on extremely large
    tensors: "break large tensors into small blocks … use local boundary of
    each block to perform the transform" (§II-B).
    """
    coords = as_index_array(coords)
    org = as_index_array(list(origin))
    if coords.ndim != 2 or coords.shape[1] != org.shape[0]:
        raise ShapeError("coords and origin dimensionality mismatch")
    if coords.size and np.any(coords < org[np.newaxis, :]):
        raise ShapeError("coordinate below block origin")
    local = coords - org[np.newaxis, :]
    return linearize(local, block_shape, order=order)


def delinearize_block_local(
    addresses: np.ndarray,
    origin: Sequence[int],
    block_shape: Sequence[int],
    *,
    order: str = "row",
) -> np.ndarray:
    """Inverse of :func:`linearize_block_local`."""
    local = delinearize(addresses, block_shape, order=order)
    org = as_index_array(list(origin))
    return local + org[np.newaxis, :]


def fold_shape_2d(shape: Sequence[int], *, min_dim_as: str = "rows") -> tuple[int, int]:
    """The 2D target shape used by GCSR++ / GCSC++ (Algorithm 1 line 6).

    GCSR++ picks the *smallest* dimension size as the number of rows and the
    product of the remaining sizes as the number of columns; GCSC++ uses the
    smallest size as the number of columns instead (§II-D difference (1)).

    Parameters
    ----------
    shape:
        Original tensor shape.
    min_dim_as:
        ``"rows"`` (GCSR++) or ``"cols"`` (GCSC++).
    """
    if len(shape) == 0:
        raise ShapeError("cannot fold a 0-dimensional shape")
    check_linearizable(shape)
    smallest = min(int(m) for m in shape)
    if smallest == 0:
        raise ShapeError("cannot fold a shape with a zero-sized dimension")
    total = 1
    for m in shape:
        total *= int(m)
    rest = total // smallest
    if min_dim_as == "rows":
        return smallest, rest
    if min_dim_as == "cols":
        return rest, smallest
    raise ValueError(f"min_dim_as must be 'rows' or 'cols', got {min_dim_as!r}")


def fold_coords_2d(
    coords: np.ndarray,
    shape: Sequence[int],
    *,
    min_dim_as: str = "rows",
) -> tuple[np.ndarray, tuple[int, int]]:
    """Fold ``(n, d)`` coordinates into 2D via the linear address.

    Implements Algorithm 1 lines 8–9: linearize against the original shape,
    then delinearize against the folded 2D shape.  Locality in the original
    row-major order is preserved exactly, which is the paper's "locality is
    preserved very well" lesson (§IV).
    """
    shape2d = fold_shape_2d(shape, min_dim_as=min_dim_as)
    addresses = linearize(coords, shape)
    coords2d = delinearize(addresses, shape2d)
    return coords2d, shape2d
