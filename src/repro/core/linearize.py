"""Coordinate <-> linear-address transforms (paper §II-B).

The LINEAR organization stores, for a point with coordinates
``(c_1, ..., c_d)`` in a tensor of shape ``(m_1, ..., m_d)``, the row-major
address ``sum_i c_i * prod_{j>i} m_j``.  GCSR++/GCSC++ reuse the same
transform to fold high-dimensional tensors into 2D (Algorithm 1 lines 8–9),
and the benchmark READ merges results by linear address (Algorithm 3 line 12).

All transforms are vectorized over ``(n, d)`` coordinate arrays and guarded
against 64-bit overflow through :func:`repro.core.dtypes.check_linearizable`.
Block-local variants support the paper's mitigation for address overflow:
linearize against a block's own boundary instead of the global tensor.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .dtypes import (
    INDEX_DTYPE,
    as_index_array,
    check_linearizable,
    column_major_strides,
    row_major_strides,
)
from .errors import ShapeError


def _validate_coords(coords: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    coords = as_index_array(coords)
    if coords.ndim != 2:
        raise ShapeError(f"coords must be 2D (n, d); got ndim={coords.ndim}")
    if coords.shape[1] != len(shape):
        raise ShapeError(
            f"coords have {coords.shape[1]} dims but shape has {len(shape)}"
        )
    return coords


def linearize(
    coords: np.ndarray,
    shape: Sequence[int],
    *,
    order: str = "row",
    validate: bool = True,
) -> np.ndarray:
    """Transform an ``(n, d)`` coordinate array into ``n`` linear addresses.

    Parameters
    ----------
    coords:
        Coordinate buffer, one point per row.
    shape:
        Tensor extent per dimension.
    order:
        ``"row"`` (paper default) or ``"col"`` for column-major.
    validate:
        When true, verify every coordinate is within ``shape``.

    Returns
    -------
    numpy.ndarray
        ``uint64`` addresses, one per point.
    """
    coords = _validate_coords(coords, shape)
    check_linearizable(shape)
    if validate and coords.size:
        bounds = as_index_array(list(shape))
        if np.any(coords >= bounds[np.newaxis, :]):
            bad = int(np.argmax(np.any(coords >= bounds[np.newaxis, :], axis=1)))
            raise ShapeError(
                f"coordinate {tuple(int(c) for c in coords[bad])} outside "
                f"tensor shape {tuple(int(m) for m in shape)}"
            )
    if order == "row":
        strides = row_major_strides(shape)
    elif order == "col":
        strides = column_major_strides(shape)
    else:
        raise ValueError(f"order must be 'row' or 'col', got {order!r}")
    # (coords * strides).sum keeps everything in uint64; overflow is ruled
    # out by check_linearizable above.
    return (coords * strides[np.newaxis, :]).sum(axis=1, dtype=INDEX_DTYPE)


def delinearize(
    addresses: np.ndarray,
    shape: Sequence[int],
    *,
    order: str = "row",
    validate: bool = True,
) -> np.ndarray:
    """Inverse of :func:`linearize`: addresses back to ``(n, d)`` coordinates.

    This is the ``reverse_transform`` of Algorithm 1 line 9 — GCSR++ uses it
    with a *different* (2D) shape than the one used to linearize, which is
    exactly how the dimensionality reduction works.
    """
    addresses = as_index_array(addresses)
    if addresses.ndim != 1:
        raise ShapeError("addresses must be a 1D vector")
    check_linearizable(shape)
    if validate and addresses.size:
        from .dtypes import cell_count

        if int(addresses.max()) >= cell_count(shape):
            raise ShapeError(
                f"address {int(addresses.max())} outside tensor of "
                f"{cell_count(shape)} cells"
            )
    d = len(shape)
    out = np.empty((addresses.shape[0], d), dtype=INDEX_DTYPE)
    if order == "row":
        dims = range(d)
        strides = row_major_strides(shape)
    elif order == "col":
        dims = range(d - 1, -1, -1)
        strides = column_major_strides(shape)
    else:
        raise ValueError(f"order must be 'row' or 'col', got {order!r}")
    # Single divmod cascade over a working copy: each np.divmod produces
    # the dimension's coordinate and the remainder for the next stride in
    # one pass, halving the arithmetic of the former //-then-% pair while
    # keeping the outputs byte-identical.
    rem = addresses.copy()
    for i in dims:
        np.divmod(rem, strides[i], out[:, i], rem)
    return out


def linearize_block_local(
    coords: np.ndarray,
    origin: Sequence[int],
    block_shape: Sequence[int],
    *,
    order: str = "row",
) -> np.ndarray:
    """Linearize ``coords`` relative to a block at ``origin``.

    The paper's mitigation for LINEAR address overflow on extremely large
    tensors: "break large tensors into small blocks … use local boundary of
    each block to perform the transform" (§II-B).
    """
    coords = as_index_array(coords)
    org = as_index_array(list(origin))
    if coords.ndim != 2 or coords.shape[1] != org.shape[0]:
        raise ShapeError("coords and origin dimensionality mismatch")
    if coords.size and np.any(coords < org[np.newaxis, :]):
        raise ShapeError("coordinate below block origin")
    local = coords - org[np.newaxis, :]
    return linearize(local, block_shape, order=order)


def delinearize_block_local(
    addresses: np.ndarray,
    origin: Sequence[int],
    block_shape: Sequence[int],
    *,
    order: str = "row",
) -> np.ndarray:
    """Inverse of :func:`linearize_block_local`."""
    local = delinearize(addresses, block_shape, order=order)
    org = as_index_array(list(origin))
    return local + org[np.newaxis, :]


# ---------------------------------------------------------------------------
# ALTO: adaptive bit-interleaved linearization (PAPERS.md — "ALTO: Adaptive
# Linearized Storage of Sparse Tensors").
#
# Each mode gets ``ceil(log2(m_d))`` address bits; bits are interleaved
# round-robin from the LSB among the modes that still have bits left, so
# every mode stays locality-preserving at once (a small step in *any*
# coordinate only perturbs low address bits).  Modes with more bits end up
# owning the contiguous high bits once the others are exhausted.  The
# per-shape interleaving is compiled once into *field segments* — runs of
# consecutive bits of one mode that map to consecutive address bits — so
# encode/decode are a handful of vectorized shift/mask gathers, never a
# per-element Python loop.
# ---------------------------------------------------------------------------

#: Store-facing address-order names.  ``"row_major"`` is the paper's
#: default linearization (bit-identical to the historical behavior);
#: ``"alto"`` is the adaptive bit-interleaved order.
ADDRESS_ORDERS = ("row_major", "alto")

#: Default order everywhere an ``addr_order`` is optional.
DEFAULT_ADDRESS_ORDER = "row_major"


def validate_addr_order(addr_order: str) -> str:
    if addr_order not in ADDRESS_ORDERS:
        raise ValueError(
            f"addr_order must be one of {ADDRESS_ORDERS}, got {addr_order!r}"
        )
    return addr_order


class _AltoSpec:
    """Compiled per-shape ALTO interleaving (cached by shape).

    Attributes
    ----------
    bits:
        ``ceil(log2(m_d))`` per mode.
    total_bits:
        Sum of ``bits`` — the width of the interleaved address.
    segments:
        ``(dim, src_shift, dst_shift, width)`` tuples: ``width``
        consecutive bits of mode ``dim`` starting at value bit
        ``src_shift`` land at address bits ``dst_shift ..``.
    masks:
        Per-mode ``uint64`` mask of the *address* bits owned by the mode
        (the public :func:`alto_masks` view of the interleaving).
    bit_dim / bit_src:
        Per address bit (LSB first): owning mode and its value-bit index
        — the bit-granular view the box decomposition walks.
    """

    __slots__ = (
        "shape", "bits", "total_bits", "segments", "masks",
        "bit_dim", "bit_src", "undecided", "_spread_tables",
    )

    def __init__(self, shape: tuple[int, ...]):
        self.shape = shape
        self.bits = tuple(
            max(int(m) - 1, 0).bit_length() for m in shape
        )
        self.total_bits = sum(self.bits)
        if self.total_bits > 64:
            raise ShapeError(
                f"tensor shape {shape} needs {self.total_bits} interleaved "
                "address bits; ALTO addresses overflow uint64. Fall back to "
                "the lexicographic (non-linearizable) path or split the "
                "tensor into blocks."
            )
        remaining = list(self.bits)
        next_src = [0] * len(shape)
        bit_dim: list[int] = []
        bit_src: list[int] = []
        # Round-robin from the LSB, last mode first (mirrors row-major's
        # "last dimension varies fastest"), dropping exhausted modes.
        while len(bit_dim) < self.total_bits:
            for dim in range(len(shape) - 1, -1, -1):
                if remaining[dim] > 0:
                    bit_dim.append(dim)
                    bit_src.append(next_src[dim])
                    next_src[dim] += 1
                    remaining[dim] -= 1
        self.bit_dim = tuple(bit_dim)
        self.bit_src = tuple(bit_src)
        segments: list[tuple[int, int, int, int]] = []
        for dst, (dim, src) in enumerate(zip(bit_dim, bit_src)):
            if (
                segments
                and segments[-1][0] == dim
                and segments[-1][1] + segments[-1][3] == src
                and segments[-1][2] + segments[-1][3] == dst
            ):
                dim0, src0, dst0, width = segments[-1]
                segments[-1] = (dim0, src0, dst0, width + 1)
            else:
                segments.append((dim, src, dst, 1))
        self.segments = tuple(segments)
        masks = np.zeros(len(shape), dtype=INDEX_DTYPE)
        for dim, _src, dst, width in segments:
            masks[dim] |= np.uint64(((1 << width) - 1) << dst)
        self.masks = masks
        # undecided[b][d]: value-space mask of mode d's bits living at
        # address bits 0..b — the per-node slack of the box-range DFS.
        undecided: list[tuple[int, ...]] = []
        acc = [0] * len(shape)
        for dim, src in zip(bit_dim, bit_src):
            acc[dim] |= 1 << src
            undecided.append(tuple(acc))
        self.undecided = tuple(undecided)
        self._spread_tables: tuple[np.ndarray, ...] | None | bool = False

    @property
    def spread_tables(self) -> tuple[np.ndarray, ...] | None:
        """Per-mode ``value -> interleaved bits`` lookup tables.

        Turns the per-segment shift/mask loop of :func:`linearize_alto`
        into one gather per mode — the encode is then as cheap as the
        row-major stride dot product.  Built lazily on first use and
        only while every mode stays within ``_SPREAD_TABLE_BITS``
        (tables are ``2**bits`` entries per mode); ``None`` means the
        caller must fall back to the segment loop.
        """
        if self._spread_tables is False:
            if max(self.bits, default=0) > _SPREAD_TABLE_BITS:
                self._spread_tables = None
            else:
                tables = []
                for d, nbits in enumerate(self.bits):
                    v = np.arange(1 << nbits, dtype=INDEX_DTYPE)
                    spread = np.zeros(v.shape[0], dtype=INDEX_DTYPE)
                    for dim, src, dst, width in self.segments:
                        if dim != d:
                            continue
                        field = (v >> np.uint64(src)) & np.uint64(
                            (1 << width) - 1
                        )
                        spread |= field << np.uint64(dst)
                    tables.append(spread)
                self._spread_tables = tuple(tables)
        return self._spread_tables


#: Spread tables cap: modes longer than 2**16 fall back to the segment
#: loop rather than materialize multi-megabyte lookup tables.
_SPREAD_TABLE_BITS = 16


_ALTO_SPECS: dict[tuple[int, ...], _AltoSpec] = {}


def _alto_spec(shape: Sequence[int]) -> _AltoSpec:
    key = tuple(int(m) for m in shape)
    spec = _ALTO_SPECS.get(key)
    if spec is None:
        spec = _ALTO_SPECS[key] = _AltoSpec(key)
    return spec


def fits_alto(shape: Sequence[int]) -> bool:
    """Whether ``shape``'s interleaved addresses fit in the index dtype.

    Stricter than :func:`~repro.core.dtypes.fits_index_dtype`: ALTO
    rounds every mode up to a power of two, so
    ``sum(ceil(log2(m_d)))`` must stay within 64 bits.
    """
    return sum(max(int(m) - 1, 0).bit_length() for m in shape) <= 64


def alto_masks(shape: Sequence[int]) -> np.ndarray:
    """Per-mode ``uint64`` masks of the address bits each mode owns.

    ORing all masks gives the full address mask
    (``2**total_bits - 1``); the masks are disjoint.
    """
    return _alto_spec(shape).masks.copy()


def alto_address_bits(shape: Sequence[int]) -> int:
    """Width of the interleaved address space for ``shape``."""
    return _alto_spec(shape).total_bits


def linearize_alto(
    coords: np.ndarray,
    shape: Sequence[int],
    *,
    validate: bool = True,
) -> np.ndarray:
    """Interleaved ALTO addresses for an ``(n, d)`` coordinate array.

    Unlike row-major addresses, ALTO addresses are *sparse*: the maximum
    address is ``2**total_bits - 1``, which can exceed
    ``cell_count(shape) - 1`` whenever a mode size is not a power of two.
    Monotone per coordinate (others held fixed), so a box's address
    envelope is still ``[lin(origin), lin(end - 1)]``.
    """
    coords = _validate_coords(coords, shape)
    spec = _alto_spec(shape)
    if validate and coords.size:
        bounds = as_index_array(list(shape))
        if np.any(coords >= bounds[np.newaxis, :]):
            bad = int(np.argmax(np.any(coords >= bounds[np.newaxis, :], axis=1)))
            raise ShapeError(
                f"coordinate {tuple(int(c) for c in coords[bad])} outside "
                f"tensor shape {tuple(int(m) for m in shape)}"
            )
    tables = spec.spread_tables
    if tables is not None:
        out = tables[0][coords[:, 0]] if tables else np.zeros(
            coords.shape[0], dtype=INDEX_DTYPE
        )
        for d in range(1, len(tables)):
            out = out | tables[d][coords[:, d]]
        return out
    out = np.zeros(coords.shape[0], dtype=INDEX_DTYPE)
    for dim, src, dst, width in spec.segments:
        field = coords[:, dim]
        if src:
            field = field >> np.uint64(src)
        field = field & np.uint64((1 << width) - 1)
        out |= field << np.uint64(dst)
    return out


def delinearize_alto(
    addresses: np.ndarray,
    shape: Sequence[int],
    *,
    validate: bool = True,
) -> np.ndarray:
    """Inverse of :func:`linearize_alto`."""
    addresses = as_index_array(addresses)
    if addresses.ndim != 1:
        raise ShapeError("addresses must be a 1D vector")
    spec = _alto_spec(shape)
    if validate and addresses.size:
        full = np.uint64((1 << spec.total_bits) - 1)
        if np.any(addresses & ~full):
            raise ShapeError(
                f"address {int(addresses.max())} has bits outside the "
                f"{spec.total_bits}-bit ALTO space of shape "
                f"{tuple(int(m) for m in shape)}"
            )
    out = np.zeros((addresses.shape[0], len(shape)), dtype=INDEX_DTYPE)
    for dim, src, dst, width in spec.segments:
        field = addresses
        if dst:
            field = field >> np.uint64(dst)
        field = field & np.uint64((1 << width) - 1)
        out[:, dim] |= field << np.uint64(src)
    return out


def address_space_size(
    shape: Sequence[int], addr_order: str = DEFAULT_ADDRESS_ORDER
) -> int:
    """Exclusive upper bound of the address space in ``addr_order``.

    ``row_major`` addresses are dense (``cell_count``); ``alto``
    addresses span the power-of-two envelope ``2**total_bits``.
    """
    validate_addr_order(addr_order)
    if addr_order == "alto":
        return 1 << _alto_spec(shape).total_bits
    from .dtypes import cell_count

    return cell_count(shape)


def fits_addr_order(shape: Sequence[int], addr_order: str) -> bool:
    """Whether ``shape`` is linearizable at all in ``addr_order``."""
    validate_addr_order(addr_order)
    if addr_order == "alto":
        return fits_alto(shape)
    from .dtypes import fits_index_dtype

    return fits_index_dtype(shape)


def linearize_order(
    coords: np.ndarray,
    shape: Sequence[int],
    addr_order: str = DEFAULT_ADDRESS_ORDER,
    *,
    validate: bool = True,
) -> np.ndarray:
    """Order-dispatched linearize (``row_major`` or ``alto``)."""
    if addr_order == "alto":
        return linearize_alto(coords, shape, validate=validate)
    validate_addr_order(addr_order)
    return linearize(coords, shape, validate=validate)


def delinearize_order(
    addresses: np.ndarray,
    shape: Sequence[int],
    addr_order: str = DEFAULT_ADDRESS_ORDER,
    *,
    validate: bool = True,
) -> np.ndarray:
    """Order-dispatched delinearize (``row_major`` or ``alto``)."""
    if addr_order == "alto":
        return delinearize_alto(addresses, shape, validate=validate)
    validate_addr_order(addr_order)
    return delinearize(addresses, shape, validate=validate)


def alto_box_ranges(
    origin: Sequence[int],
    end: Sequence[int],
    shape: Sequence[int],
    *,
    max_ranges: int = 64,
) -> list[tuple[int, int]]:
    """Decompose a half-open box into contiguous ALTO address intervals.

    BIGMIN-style DFS over the interleaved bits, MSB first: a subtree
    whose per-mode prefix interval misses the box in any mode is pruned;
    one fully contained in every mode emits its whole address span.  The
    result is an ascending list of inclusive ``(lo, hi)`` intervals
    covering exactly the box's addresses — except when the interval
    budget is hit, where the remaining subtree is emitted whole (a sound
    over-approximation: pruning with a coarsened list can only visit
    more, never miss).  A box needs O(bits) intervals per split mode, so
    ``max_ranges=64`` is rarely binding in practice.
    """
    spec = _alto_spec(shape)
    d = len(spec.shape)
    lo_box = [max(int(o), 0) for o in origin]
    hi_box = [min(int(e), int(m)) - 1 for e, m in zip(end, shape)]
    if any(h < l for l, h in zip(lo_box, hi_box)):
        return []
    if spec.total_bits == 0:
        return [(0, 0)]
    out: list[tuple[int, int]] = []

    def emit(lo: int, hi: int) -> None:
        if out and out[-1][1] + 1 == lo:
            out[-1] = (out[-1][0], hi)
        else:
            out.append((lo, hi))

    def rec(bit: int, prefix: int, dvals: list[int]) -> None:
        # Bits above ``bit`` are decided; the node spans addresses
        # ``[prefix, prefix + 2**(bit+1) - 1]``.
        if bit < 0:
            slack = (0,) * d
        else:
            slack = spec.undecided[bit]
        contained = True
        for dim in range(d):
            lo_d = dvals[dim]
            hi_d = dvals[dim] | slack[dim]
            if hi_d < lo_box[dim] or lo_d > hi_box[dim]:
                return
            if lo_d < lo_box[dim] or hi_d > hi_box[dim]:
                contained = False
        span_hi = prefix + ((1 << (bit + 1)) - 1 if bit >= 0 else 0)
        if contained or bit < 0 or len(out) >= max_ranges:
            emit(prefix, span_hi)
            return
        dim = spec.bit_dim[bit]
        src = spec.bit_src[bit]
        rec(bit - 1, prefix, dvals)
        dvals[dim] |= 1 << src
        rec(bit - 1, prefix | (1 << bit), dvals)
        dvals[dim] &= ~(1 << src)

    rec(spec.total_bits - 1, 0, [0] * d)
    return out


def fold_shape_2d(shape: Sequence[int], *, min_dim_as: str = "rows") -> tuple[int, int]:
    """The 2D target shape used by GCSR++ / GCSC++ (Algorithm 1 line 6).

    GCSR++ picks the *smallest* dimension size as the number of rows and the
    product of the remaining sizes as the number of columns; GCSC++ uses the
    smallest size as the number of columns instead (§II-D difference (1)).

    Parameters
    ----------
    shape:
        Original tensor shape.
    min_dim_as:
        ``"rows"`` (GCSR++) or ``"cols"`` (GCSC++).
    """
    if len(shape) == 0:
        raise ShapeError("cannot fold a 0-dimensional shape")
    check_linearizable(shape)
    smallest = min(int(m) for m in shape)
    if smallest == 0:
        raise ShapeError("cannot fold a shape with a zero-sized dimension")
    total = 1
    for m in shape:
        total *= int(m)
    rest = total // smallest
    if min_dim_as == "rows":
        return smallest, rest
    if min_dim_as == "cols":
        return rest, smallest
    raise ValueError(f"min_dim_as must be 'rows' or 'cols', got {min_dim_as!r}")


def fold_coords_2d(
    coords: np.ndarray,
    shape: Sequence[int],
    *,
    min_dim_as: str = "rows",
) -> tuple[np.ndarray, tuple[int, int]]:
    """Fold ``(n, d)`` coordinates into 2D via the linear address.

    Implements Algorithm 1 lines 8–9: linearize against the original shape,
    then delinearize against the folded 2D shape.  Locality in the original
    row-major order is preserved exactly, which is the paper's "locality is
    preserved very well" lesson (§IV).
    """
    shape2d = fold_shape_2d(shape, min_dim_as=min_dim_as)
    addresses = linearize(coords, shape)
    coords2d = delinearize(addresses, shape2d)
    return coords2d, shape2d
