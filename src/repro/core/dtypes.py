"""Index dtype policy and overflow-safe arithmetic helpers.

The paper standardizes coordinates as ``unsigned long long int`` (8 bytes);
we mirror that with :data:`INDEX_DTYPE` (``numpy.uint64``).  Because row-major
linearization multiplies dimension sizes together, a d-dimensional tensor can
overflow 64-bit addresses even when every coordinate fits comfortably — the
paper calls this out as the main risk of the LINEAR organization (§II-B).
All capacity checks here are therefore done in arbitrary-precision Python
integers *before* any uint64 arithmetic is attempted.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Coordinate / linear-address dtype used across the library (8 bytes, as in
#: the paper's synthetic datasets).
INDEX_DTYPE = np.dtype(np.uint64)

#: Dtype used for pointer arrays (``row_ptr``, ``fptr`` …).  Pointers index
#: into point arrays, so they share the index width.
POINTER_DTYPE = np.dtype(np.uint64)

#: Maximum value representable in the index dtype.
INDEX_MAX: int = int(np.iinfo(INDEX_DTYPE).max)


class IndexOverflowError(OverflowError):
    """Raised when a tensor's linear address space exceeds the index dtype.

    The paper's practical mitigation is block decomposition with block-local
    linearization (§II-B); see :mod:`repro.storage.blocks`.
    """


def cell_count(shape: Sequence[int]) -> int:
    """Total number of cells of ``shape`` as an exact Python int.

    Computed in arbitrary precision so that the result is meaningful even
    when it exceeds ``uint64`` range.
    """
    total = 1
    for m in shape:
        total *= int(m)
    return total


def fits_index_dtype(shape: Sequence[int]) -> bool:
    """Whether every linear address of ``shape`` fits in the index dtype."""
    return cell_count(shape) - 1 <= INDEX_MAX if cell_count(shape) > 0 else True


def check_linearizable(shape: Sequence[int]) -> None:
    """Validate that ``shape`` can be linearized without overflow.

    Raises
    ------
    IndexOverflowError
        If the last linear address ``prod(shape) - 1`` does not fit in
        :data:`INDEX_DTYPE`.
    """
    if not fits_index_dtype(shape):
        raise IndexOverflowError(
            f"tensor shape {tuple(int(m) for m in shape)} has "
            f"{cell_count(shape)} cells; linear addresses overflow "
            f"{INDEX_DTYPE.name} (max {INDEX_MAX}). Split the tensor into "
            "blocks (repro.storage.blocks) and linearize block-locally."
        )


def as_index_array(values: Iterable[int] | np.ndarray) -> np.ndarray:
    """Convert ``values`` to a contiguous :data:`INDEX_DTYPE` array.

    Negative inputs are rejected rather than wrapped, since a silent
    two's-complement wrap would corrupt addresses.
    """
    arr = np.asarray(values)
    if arr.dtype.kind == "i" and arr.size and int(arr.min()) < 0:
        raise ValueError("coordinates must be non-negative")
    if arr.dtype.kind == "f":
        if arr.size and not np.all(arr == np.floor(arr)):
            raise ValueError("coordinates must be integral")
    return np.ascontiguousarray(arr, dtype=INDEX_DTYPE)


def row_major_strides(shape: Sequence[int]) -> np.ndarray:
    """Row-major strides (in elements) for ``shape`` as an index array.

    ``strides[i] = prod(shape[i+1:])`` — the multiplier applied to
    coordinate ``i`` during linearization:
    ``addr = sum_i c_i * strides[i]`` (paper §II-B).
    """
    check_linearizable(shape)
    d = len(shape)
    strides = np.empty(d, dtype=INDEX_DTYPE)
    acc = 1
    for i in range(d - 1, -1, -1):
        strides[i] = acc
        acc *= int(shape[i])
    return strides


def column_major_strides(shape: Sequence[int]) -> np.ndarray:
    """Column-major strides for ``shape``: ``strides[i] = prod(shape[:i])``."""
    check_linearizable(shape)
    d = len(shape)
    strides = np.empty(d, dtype=INDEX_DTYPE)
    acc = 1
    for i in range(d):
        strides[i] = acc
        acc *= int(shape[i])
    return strides


def safe_mul(a: int, b: int) -> int:
    """Exact product of two non-negative ints, checked against INDEX_MAX."""
    prod = int(a) * int(b)
    if prod > INDEX_MAX:
        raise IndexOverflowError(f"product {a} * {b} overflows {INDEX_DTYPE.name}")
    return prod
