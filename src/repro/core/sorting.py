"""Stable sorting and permutation-map helpers.

Every BUILD algorithm in the paper that reorders points returns a ``map``
vector "recording the original index in sorting ``b_coor``" (Algorithm 1
line 4, Algorithm 2 line 4).  The benchmark WRITE then reorganizes the value
buffer with that map (Algorithm 3 line 5).  This module centralizes the sort
and the permutation algebra so every format treats ``map`` identically:

``map`` is the *gather* permutation: ``sorted_buffer[i] = original[map[i]]``.

Sorts are ``kind="stable"`` throughout.  NumPy's stable sort (timsort for
non-trivial sizes) is adaptive on pre-sorted runs, which is precisely the
mechanism behind the paper's GCSR++-vs-GCSC++ asymmetry: row keys derived
from a row-major input buffer are already non-decreasing, column keys are
scattered (Table III discussion).
"""

from __future__ import annotations

import numpy as np

from .dtypes import POINTER_DTYPE, as_index_array
from .errors import ShapeError


def stable_argsort(keys: np.ndarray) -> np.ndarray:
    """Stable argsort of a 1D key vector; returns the gather permutation."""
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ShapeError("keys must be 1D")
    return np.argsort(keys, kind="stable")


def lexsort_rows(coords: np.ndarray) -> np.ndarray:
    """Lexicographic stable argsort of ``(n, d)`` rows, dim 0 most significant.

    ``numpy.lexsort`` treats its *last* key as primary, so columns are passed
    in reverse order.
    """
    coords = as_index_array(coords)
    if coords.ndim != 2:
        raise ShapeError("coords must be (n, d)")
    if coords.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    if coords.shape[1] == 1:
        return stable_argsort(coords[:, 0])
    return np.lexsort(tuple(coords[:, i] for i in range(coords.shape[1] - 1, -1, -1)))


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``inv[perm[i]] = i``.

    Converts a gather map into a scatter map, i.e. answers "where did
    original point ``j`` land after the sort?"
    """
    perm = np.asarray(perm)
    if perm.ndim != 1:
        raise ShapeError("permutation must be 1D")
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0], dtype=perm.dtype)
    return inv


def is_permutation(perm: np.ndarray) -> bool:
    """Whether ``perm`` is a permutation of ``0..len-1``."""
    perm = np.asarray(perm)
    if perm.ndim != 1:
        return False
    n = perm.shape[0]
    if n == 0:
        return True
    if perm.min() < 0 or perm.max() >= n:
        return False
    seen = np.zeros(n, dtype=bool)
    seen[perm] = True
    return bool(seen.all())


def apply_map(buffer: np.ndarray, perm: np.ndarray | None) -> np.ndarray:
    """Reorganize a value buffer by a gather map (Algorithm 3 line 5).

    ``perm is None`` means the format did not reorder points (COO, LINEAR in
    unsorted mode) and the buffer is returned as-is (no copy).
    """
    if perm is None:
        return buffer
    buffer = np.asarray(buffer)
    if buffer.shape[0] != perm.shape[0]:
        raise ShapeError(
            f"map length {perm.shape[0]} != buffer length {buffer.shape[0]}"
        )
    return buffer[perm]


def counts_to_pointer(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum: per-bucket counts -> CSR-style pointer array.

    ``pointer`` has ``len(counts) + 1`` entries with ``pointer[0] == 0`` and
    ``pointer[-1] == counts.sum()``.
    """
    counts = np.asarray(counts)
    ptr = np.zeros(counts.shape[0] + 1, dtype=POINTER_DTYPE)
    np.cumsum(counts, out=ptr[1:])
    return ptr


def segment_boundaries(sorted_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run-length structure of a sorted key vector.

    Returns ``(unique_keys, start_offsets)`` where ``start_offsets`` has one
    extra trailing entry equal to ``len(sorted_keys)`` — i.e. segment ``i``
    spans ``[start_offsets[i], start_offsets[i+1])``.
    """
    sorted_keys = np.asarray(sorted_keys)
    n = sorted_keys.shape[0]
    if n == 0:
        return sorted_keys[:0], np.zeros(1, dtype=POINTER_DTYPE)
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=change[1:])
    starts = np.flatnonzero(change)
    uniq = sorted_keys[starts]
    offsets = np.empty(starts.shape[0] + 1, dtype=POINTER_DTYPE)
    offsets[:-1] = starts
    offsets[-1] = n
    return uniq, offsets
