"""The sparse tensor container shared by every organization.

The paper's input contract (§II-A): "The input of our sparse tensor is
assumed to be an unsorted 1D coordinate vector" plus a value buffer.
:class:`SparseTensor` wraps exactly that — an ``(n, d)`` uint64 coordinate
buffer ``b_coor`` and a length-``n`` value buffer ``b_data`` — together with
the tensor shape, and provides the validation, densification, and
deduplication utilities the generators, formats, and benchmark harness all
share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .boundary import Box, boundary_shape, extract_boundary
from .dtypes import INDEX_DTYPE, as_index_array, cell_count, check_linearizable
from .errors import ShapeError
from .linearize import delinearize, linearize
from .sorting import lexsort_rows, stable_argsort

#: Default value dtype (the paper measures index cost only; values just ride
#: along — we default to float64 samples).
VALUE_DTYPE = np.dtype(np.float64)


@dataclass
class SparseTensor:
    """An unsorted coordinate-list sparse tensor.

    Attributes
    ----------
    shape:
        Extent per dimension, ``(m_1, ..., m_d)``.
    coords:
        ``(n, d)`` uint64 coordinate buffer (``b_coor``), one point per row,
        in arbitrary order.
    values:
        Length-``n`` value buffer (``b_data``), aligned with ``coords``.
    """

    shape: tuple[int, ...]
    coords: np.ndarray
    values: np.ndarray
    _validated: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.shape = tuple(int(m) for m in self.shape)
        self.coords = as_index_array(self.coords)
        self.values = np.asarray(self.values)
        if self.coords.ndim != 2:
            raise ShapeError("coords must be (n, d)")
        if self.coords.shape[1] != len(self.shape):
            raise ShapeError(
                f"coords have {self.coords.shape[1]} dims, shape has "
                f"{len(self.shape)}"
            )
        if self.values.ndim != 1 or self.values.shape[0] != self.coords.shape[0]:
            raise ShapeError("values must be 1D and aligned with coords")
        self.validate_bounds()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_points(
        cls,
        shape: Sequence[int],
        points: Sequence[Sequence[int]],
        values: Sequence[float] | np.ndarray | None = None,
    ) -> "SparseTensor":
        """Build from a Python list of coordinate tuples (test/demo helper)."""
        coords = np.asarray(points, dtype=INDEX_DTYPE).reshape(len(points), len(shape))
        if values is None:
            vals = np.arange(1, len(points) + 1, dtype=VALUE_DTYPE)
        else:
            vals = np.asarray(values)
        return cls(tuple(shape), coords, vals)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "SparseTensor":
        """Extract the non-zero cells of a dense array."""
        dense = np.asarray(dense)
        idx = np.nonzero(dense)
        coords = np.stack([as_index_array(i) for i in idx], axis=1)
        return cls(dense.shape, coords, dense[idx].astype(VALUE_DTYPE, copy=False))

    @classmethod
    def empty(cls, shape: Sequence[int]) -> "SparseTensor":
        """A tensor of ``shape`` with zero stored points."""
        d = len(shape)
        return cls(
            tuple(shape),
            np.empty((0, d), dtype=INDEX_DTYPE),
            np.empty(0, dtype=VALUE_DTYPE),
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored (non-empty) points, the paper's ``n``."""
        return int(self.coords.shape[0])

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def density(self) -> float:
        """``nnz / prod(shape)`` — Table II's density metric."""
        total = cell_count(self.shape)
        return self.nnz / total if total else 0.0

    @property
    def bounding_box(self) -> Box:
        """Tight bounding box of the stored points (the paper's ``s_l``)."""
        return extract_boundary(self.coords)

    def coord_nbytes(self) -> int:
        """Raw COO index footprint, ``n * d * 8`` bytes."""
        return int(self.coords.size) * self.coords.dtype.itemsize

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate_bounds(self) -> None:
        """Ensure every coordinate lies inside ``shape``."""
        if self._validated or self.nnz == 0:
            self._validated = True
            return
        bounds = as_index_array(list(self.shape))
        if np.any(self.coords >= bounds[np.newaxis, :]):
            mask = np.any(self.coords >= bounds[np.newaxis, :], axis=1)
            bad = int(np.argmax(mask))
            raise ShapeError(
                f"point {tuple(int(c) for c in self.coords[bad])} outside "
                f"shape {self.shape}"
            )
        self._validated = True

    def has_duplicates(self) -> bool:
        """Whether any coordinate appears more than once."""
        if self.nnz < 2:
            return False
        check_linearizable(self.shape)
        addr = self.linear_addresses()
        uniq = np.unique(addr)
        return uniq.shape[0] != addr.shape[0]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def linear_addresses(self, *, order: str = "row") -> np.ndarray:
        """Row-major linear address of every stored point."""
        return linearize(self.coords, self.shape, order=order, validate=False)

    def sorted_by_linear(self) -> "SparseTensor":
        """A copy with points sorted by row-major linear address.

        The benchmark READ returns results in this order (Algorithm 3
        line 12), so tests compare against it.
        """
        perm = stable_argsort(self.linear_addresses())
        return SparseTensor(self.shape, self.coords[perm], self.values[perm])

    def sorted_lexicographic(self) -> "SparseTensor":
        """A copy with points sorted lexicographically by coordinates."""
        perm = lexsort_rows(self.coords)
        return SparseTensor(self.shape, self.coords[perm], self.values[perm])

    def deduplicated(self, *, keep: str = "last") -> "SparseTensor":
        """A copy with duplicate coordinates collapsed.

        ``keep="last"`` mimics overwrite semantics of repeated writes;
        ``keep="first"`` keeps the earliest occurrence.  Shapes whose cell
        count overflows uint64 are grouped lexicographically instead of by
        linear address (same result, no overflow).
        """
        if self.nnz == 0:
            return self
        from .dtypes import fits_index_dtype

        if fits_index_dtype(self.shape):
            addr = self.linear_addresses()
            order = stable_argsort(addr)
            sorted_addr = addr[order]
            neq = sorted_addr[1:] != sorted_addr[:-1]
        else:
            order = lexsort_rows(self.coords)
            sorted_coords = self.coords[order]
            neq = np.any(sorted_coords[1:] != sorted_coords[:-1], axis=1)
        is_first = np.empty(self.nnz, dtype=bool)
        is_first[0] = True
        is_first[1:] = neq
        if keep == "first":
            sel = order[is_first]
        elif keep == "last":
            is_last = np.empty(self.nnz, dtype=bool)
            is_last[-1] = True
            is_last[:-1] = neq
            sel = order[is_last]
        else:
            raise ValueError(f"keep must be 'first' or 'last', got {keep!r}")
        sel = np.sort(sel)
        return SparseTensor(self.shape, self.coords[sel], self.values[sel])

    def to_dense(self) -> np.ndarray:
        """Materialize a dense array (small tensors only).

        Raises
        ------
        ShapeError
            When the dense form would exceed ~2^26 cells (guard against
            accidentally densifying benchmark-scale tensors).
        """
        total = cell_count(self.shape)
        if total > (1 << 26):
            raise ShapeError(
                f"refusing to densify {total} cells; use sparse access paths"
            )
        out = np.zeros(self.shape, dtype=self.values.dtype)
        if self.nnz:
            out[tuple(self.coords[:, i] for i in range(self.ndim))] = self.values
        return out

    def select_box(self, box: Box) -> "SparseTensor":
        """The stored points falling inside ``box`` (order preserved)."""
        mask = box.contains_points(self.coords) if self.nnz else np.zeros(0, bool)
        return SparseTensor(self.shape, self.coords[mask], self.values[mask])

    def permuted_dims(self, perm: Sequence[int]) -> "SparseTensor":
        """Reorder tensor dimensions (used by CSF's dimension sorting)."""
        perm = list(perm)
        if sorted(perm) != list(range(self.ndim)):
            raise ShapeError(f"invalid dimension permutation {perm}")
        new_shape = tuple(self.shape[p] for p in perm)
        return SparseTensor(new_shape, self.coords[:, perm], self.values)

    # ------------------------------------------------------------------
    # Comparison helpers (tests)
    # ------------------------------------------------------------------

    def same_points(self, other: "SparseTensor") -> bool:
        """Set-equality of (coordinate, value) pairs, ignoring order."""
        if self.shape != other.shape or self.nnz != other.nnz:
            return False
        a = self.sorted_by_linear()
        b = other.sorted_by_linear()
        return bool(
            np.array_equal(a.coords, b.coords) and np.allclose(a.values, b.values)
        )


def random_values(n: int, rng: np.random.Generator) -> np.ndarray:
    """Standard value buffer for generated datasets."""
    return rng.standard_normal(n).astype(VALUE_DTYPE)


def from_linear(
    shape: Sequence[int], addresses: np.ndarray, values: np.ndarray
) -> SparseTensor:
    """Rebuild a tensor from linear addresses (inverse of linearization)."""
    coords = delinearize(as_index_array(addresses), shape)
    return SparseTensor(tuple(shape), coords, values)


def infer_shape(coords: np.ndarray) -> tuple[int, ...]:
    """Tight origin-anchored shape covering ``coords`` (boundary shape)."""
    return boundary_shape(coords)
