"""Bounding boxes and boundary extraction (the paper's ``s_l``).

Both GCSR++_BUILD and CSF_BUILD start by "extracting the local boundary from
``b_coor``" (Algorithm 1 line 5, Algorithm 2 line 5); the benchmark READ
(Algorithm 3 line 4) finds "all fragments containing ``b_coor``" through
box-overlap tests.  :class:`Box` is the shared half-open axis-aligned region
abstraction used for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .dtypes import INDEX_DTYPE, as_index_array, cell_count
from .errors import ShapeError


@dataclass(frozen=True)
class Box:
    """Half-open axis-aligned box: ``origin[i] <= c_i < origin[i] + size[i]``."""

    origin: tuple[int, ...]
    size: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.origin) != len(self.size):
            raise ShapeError("origin and size dimensionality mismatch")
        if any(s < 0 for s in self.size) or any(o < 0 for o in self.origin):
            raise ShapeError("box origin/size must be non-negative")

    @property
    def ndim(self) -> int:
        return len(self.origin)

    @property
    def end(self) -> tuple[int, ...]:
        """Exclusive upper corner."""
        return tuple(o + s for o, s in zip(self.origin, self.size))

    @property
    def n_cells(self) -> int:
        return cell_count(self.size)

    def is_empty(self) -> bool:
        return any(s == 0 for s in self.size)

    def contains_point(self, coord: Sequence[int]) -> bool:
        if len(coord) != self.ndim:
            raise ShapeError("coordinate dimensionality mismatch")
        return all(
            o <= int(c) < e for o, c, e in zip(self.origin, coord, self.end)
        )

    def contains_points(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized membership mask for an ``(n, d)`` coordinate array."""
        coords = as_index_array(coords)
        if coords.ndim != 2 or coords.shape[1] != self.ndim:
            raise ShapeError("coords must be (n, d) matching the box ndim")
        lo = as_index_array(list(self.origin))
        hi = as_index_array(list(self.end))
        return np.all((coords >= lo) & (coords < hi), axis=1)

    def intersects(self, other: "Box") -> bool:
        if other.ndim != self.ndim:
            raise ShapeError("box dimensionality mismatch")
        if self.is_empty() or other.is_empty():
            return False
        return all(
            a_o < b_e and b_o < a_e
            for a_o, a_e, b_o, b_e in zip(
                self.origin, self.end, other.origin, other.end
            )
        )

    def intersection(self, other: "Box") -> "Box":
        """The overlapping region (possibly empty)."""
        if other.ndim != self.ndim:
            raise ShapeError("box dimensionality mismatch")
        lo = tuple(max(a, b) for a, b in zip(self.origin, other.origin))
        hi = tuple(min(a, b) for a, b in zip(self.end, other.end))
        size = tuple(max(0, h - l) for l, h in zip(lo, hi))
        return Box(lo, size)

    def grid_coords(self) -> np.ndarray:
        """All cell coordinates inside the box as an ``(n_cells, d)`` array.

        Used to materialize the benchmark's read query buffer: the paper
        reads a contiguous region starting at ``(m/2, ...)`` of size
        ``(m/10, ...)`` (§III), i.e. every cell of that region is queried.
        """
        if self.is_empty():
            return np.empty((0, self.ndim), dtype=INDEX_DTYPE)
        axes = [
            np.arange(o, e, dtype=INDEX_DTYPE)
            for o, e in zip(self.origin, self.end)
        ]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.stack([m.reshape(-1) for m in mesh], axis=1)

    def sample_coords(self, k: int, rng: np.random.Generator) -> np.ndarray:
        """``k`` distinct cell coordinates sampled uniformly from the box.

        Benchmarks use this to keep the faithful O(n*q) read algorithms
        tractable at large scale (see DESIGN.md §4).
        """
        total = self.n_cells
        if total == 0:
            return np.empty((0, self.ndim), dtype=INDEX_DTYPE)
        k = min(int(k), total)
        if total <= 4 * k:
            # Small region: materialize and choose without replacement.
            grid = self.grid_coords()
            idx = rng.choice(total, size=k, replace=False)
            return grid[np.sort(idx)]
        # Large region: sample linear offsets, dedupe, top up if needed.
        chosen: set[int] = set()
        while len(chosen) < k:
            draw = rng.integers(0, total, size=k - len(chosen), dtype=np.uint64)
            chosen.update(int(v) for v in draw)
        offsets = np.array(sorted(chosen), dtype=INDEX_DTYPE)
        from .linearize import delinearize

        local = delinearize(offsets, self.size)
        return local + as_index_array(list(self.origin))[np.newaxis, :]

    def iter_corners(self) -> Iterator[tuple[int, ...]]:
        """Yield the 2^d inclusive corner coordinates (for tests/debugging)."""
        if self.is_empty():
            return
        for mask in range(1 << self.ndim):
            yield tuple(
                (self.end[i] - 1) if (mask >> i) & 1 else self.origin[i]
                for i in range(self.ndim)
            )


def extract_boundary(coords: np.ndarray) -> Box:
    """The paper's ``s_l``: the tight bounding box of a coordinate buffer.

    Returns a :class:`Box` whose origin is the per-dimension minimum and
    whose size spans through the per-dimension maximum (inclusive).
    """
    coords = as_index_array(coords)
    if coords.ndim != 2:
        raise ShapeError("coords must be (n, d)")
    if coords.shape[0] == 0:
        return Box(tuple(0 for _ in range(coords.shape[1])),
                   tuple(0 for _ in range(coords.shape[1])))
    lo = coords.min(axis=0)
    hi = coords.max(axis=0)
    return Box(
        tuple(int(v) for v in lo),
        tuple(int(h - l + 1) for l, h in zip(lo, hi)),
    )


def boundary_shape(coords: np.ndarray) -> tuple[int, ...]:
    """Tight shape anchored at the origin covering every coordinate.

    This is the effective tensor shape formats use when the caller does not
    provide one: ``(max_i + 1)`` per dimension.
    """
    coords = as_index_array(coords)
    if coords.ndim != 2:
        raise ShapeError("coords must be (n, d)")
    if coords.shape[0] == 0:
        return tuple(0 for _ in range(coords.shape[1]))
    hi = coords.max(axis=0)
    return tuple(int(h) + 1 for h in hi)


def region_box(shape: Sequence[int], *, start_frac: float, size_frac: float) -> Box:
    """The paper's parameterized read region.

    §III: "we extract a contiguous region with a starting address of
    ``(m/2, ..., m/2)`` and a size of ``(m/10, ..., m/10)``" — i.e.
    ``start_frac=0.5``, ``size_frac=0.1``.  The MSP dense region uses
    ``start_frac=size_frac=1/3``.
    """
    origin = tuple(int(m * start_frac) for m in shape)
    size = []
    for m, o in zip(shape, origin):
        s = max(1, int(int(m) * size_frac))
        size.append(min(s, int(m) - o))
    return Box(origin, tuple(size))
