"""Core substrate: tensors, coordinates, linearization, sorting, costing."""

from .boundary import Box, boundary_shape, extract_boundary, region_box
from .costmodel import NULL_COUNTER, NullCounter, OpCounter
from .dtypes import (
    INDEX_DTYPE,
    INDEX_MAX,
    POINTER_DTYPE,
    IndexOverflowError,
    as_index_array,
    cell_count,
    check_linearizable,
    column_major_strides,
    fits_index_dtype,
    row_major_strides,
)
from .errors import (
    FormatError,
    FragmentError,
    PatternError,
    ReproError,
    ShapeError,
)
from .linearize import (
    delinearize,
    delinearize_block_local,
    fold_coords_2d,
    fold_shape_2d,
    linearize,
    linearize_block_local,
)
from .sorting import (
    apply_map,
    counts_to_pointer,
    invert_permutation,
    is_permutation,
    lexsort_rows,
    segment_boundaries,
    stable_argsort,
)
from .tensor import VALUE_DTYPE, SparseTensor, from_linear, infer_shape, random_values

__all__ = [
    "Box",
    "boundary_shape",
    "extract_boundary",
    "region_box",
    "NULL_COUNTER",
    "NullCounter",
    "OpCounter",
    "INDEX_DTYPE",
    "INDEX_MAX",
    "POINTER_DTYPE",
    "IndexOverflowError",
    "as_index_array",
    "cell_count",
    "check_linearizable",
    "column_major_strides",
    "fits_index_dtype",
    "row_major_strides",
    "FormatError",
    "FragmentError",
    "PatternError",
    "ReproError",
    "ShapeError",
    "delinearize",
    "delinearize_block_local",
    "fold_coords_2d",
    "fold_shape_2d",
    "linearize",
    "linearize_block_local",
    "apply_map",
    "counts_to_pointer",
    "invert_permutation",
    "is_permutation",
    "lexsort_rows",
    "segment_boundaries",
    "stable_argsort",
    "VALUE_DTYPE",
    "SparseTensor",
    "from_linear",
    "infer_shape",
    "random_values",
]
