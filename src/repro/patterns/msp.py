"""MSP — Mixed Sparse Pattern (paper Fig 2, LCLS-II style data).

"MSP pattern has a dense area among the random sparse points … the
probability threshold is increased to 0.999, and the contiguous region is
defined with a starting address of (m/3, ..., m/3) and a size of
(m/3, ..., m/3)" (§III).

Construction: iid Bernoulli background at ``1 - background_threshold``
(default 0.1 %) over the whole tensor, overlaid with a *denser* Bernoulli
region occupying the middle-third box.  The paper leaves the in-region
density unstated (a fully dense region contradicts Table II — DESIGN.md
§4); ``region_density`` defaults to 1 % (the CGP threshold), which matches
Table II's 2D MSP density almost exactly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.boundary import Box
from ..core.dtypes import INDEX_DTYPE, as_index_array
from ..core.errors import PatternError
from ..core.linearize import delinearize, linearize
from .base import PatternGenerator, bernoulli_point_count, sample_distinct_addresses


class MSPPattern(PatternGenerator):
    """Random background plus a denser contiguous middle-third region."""

    name = "MSP"

    def __init__(
        self,
        shape: Sequence[int],
        *,
        background_threshold: float = 0.999,
        region_density: float = 0.01,
        region_start_frac: float = 1.0 / 3.0,
        region_size_frac: float = 1.0 / 3.0,
    ):
        super().__init__(shape)
        if not 0.0 <= background_threshold <= 1.0:
            raise PatternError("background_threshold must be in [0,1]")
        if not 0.0 <= region_density <= 1.0:
            raise PatternError("region_density must be in [0,1]")
        self.background_density = 1.0 - float(background_threshold)
        self.region_density = float(region_density)
        origin = tuple(int(m * region_start_frac) for m in self.shape)
        size = tuple(
            max(1, min(int(m * region_size_frac), m - o))
            for m, o in zip(self.shape, origin)
        )
        self.region = Box(origin, size)

    def expected_density(self) -> float:
        frac = self.region.n_cells / self.n_cells
        bg = self.background_density
        # Inside the region points come from either process.
        inside = 1.0 - (1.0 - bg) * (1.0 - self.region_density)
        return bg * (1.0 - frac) + inside * frac

    def generate_addresses(self, rng: np.random.Generator) -> np.ndarray:
        # Background points over the whole tensor.
        n_bg = bernoulli_point_count(self.n_cells, self.background_density, rng)
        bg = sample_distinct_addresses(self.n_cells, n_bg, rng)
        # Dense-region points, sampled in region-local space then shifted.
        n_rg = bernoulli_point_count(self.region.n_cells, self.region_density, rng)
        local = sample_distinct_addresses(self.region.n_cells, n_rg, rng)
        local_coords = delinearize(local, self.region.size, validate=False)
        global_coords = local_coords + as_index_array(list(self.region.origin))
        region_addr = linearize(global_coords, self.shape, validate=False)
        return np.unique(np.concatenate([bg, region_addr]))
