"""Sparsity-pattern generator contract.

The paper distills three prevalent patterns from the SuiteSparse survey
(§III, Fig 2): TSP (tridiagonal bands), GSP/CGP (uniform random — "general
graph"), and MSP (random background plus a contiguous dense region).  Each
generator here produces a :class:`~repro.core.tensor.SparseTensor` whose
coordinate buffer is *unsorted* (shuffled), matching the paper's input
contract (§II-A), with deterministic output under a seeded generator.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..core.dtypes import INDEX_DTYPE, as_index_array, cell_count, check_linearizable
from ..core.errors import PatternError
from ..core.linearize import delinearize
from ..core.tensor import SparseTensor, random_values


class PatternGenerator(abc.ABC):
    """Base class for synthetic sparsity patterns."""

    #: Registry / display name ("TSP", "GSP", "MSP").
    name: str = ""

    def __init__(self, shape: Sequence[int]):
        self.shape = tuple(int(m) for m in shape)
        if any(m <= 0 for m in self.shape):
            raise PatternError(f"pattern shape must be positive, got {self.shape}")
        check_linearizable(self.shape)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def n_cells(self) -> int:
        return cell_count(self.shape)

    @abc.abstractmethod
    def expected_density(self) -> float:
        """Analytic (approximate) density of the pattern."""

    @abc.abstractmethod
    def generate_addresses(self, rng: np.random.Generator) -> np.ndarray:
        """Distinct row-major linear addresses of the pattern's points."""

    def generate(self, rng: np.random.Generator | int | None = None) -> SparseTensor:
        """Generate the pattern as an unsorted sparse tensor."""
        rng = np.random.default_rng(rng)
        addresses = self.generate_addresses(rng)
        # Shuffle: the paper's input is an *unsorted* coordinate buffer.
        addresses = rng.permutation(addresses)
        coords = delinearize(addresses, self.shape, validate=False)
        values = random_values(addresses.shape[0], rng)
        return SparseTensor(self.shape, coords, values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} shape={self.shape}>"


def sample_distinct_addresses(
    n_cells: int, n_points: int, rng: np.random.Generator
) -> np.ndarray:
    """``n_points`` distinct uniform addresses in ``[0, n_cells)``.

    Uses rejection with top-up (expected O(n) for the sparse regimes the
    paper studies) rather than materializing the full address space.
    """
    if n_points > n_cells:
        raise PatternError(
            f"cannot place {n_points} distinct points in {n_cells} cells"
        )
    if n_points == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    if n_points * 4 >= n_cells:
        # Dense-ish regime: permutation of the full space is cheaper/safer.
        return as_index_array(
            rng.choice(n_cells, size=n_points, replace=False)
        )
    got = np.unique(rng.integers(0, n_cells, size=n_points, dtype=np.uint64))
    while got.shape[0] < n_points:
        extra = rng.integers(
            0, n_cells, size=(n_points - got.shape[0]) * 2, dtype=np.uint64
        )
        got = np.unique(np.concatenate([got, extra]))
    if got.shape[0] > n_points:
        keep = rng.choice(got.shape[0], size=n_points, replace=False)
        got = got[np.sort(keep)]
    return got.astype(INDEX_DTYPE, copy=False)


def bernoulli_point_count(
    n_cells: int, p: float, rng: np.random.Generator
) -> int:
    """Number of occupied cells under iid Bernoulli(p) over ``n_cells``.

    Drawn as a Binomial so that address sampling is distributionally
    equivalent to thresholding a per-cell (0,1) random draw — the paper's
    CGP/MSP construction — without materializing the full tensor.
    """
    if not 0.0 <= p <= 1.0:
        raise PatternError(f"probability must be in [0,1], got {p}")
    if n_cells <= 0 or p == 0.0:
        return 0
    # numpy binomial takes int64 n; the paper's tensors are < 2^31 cells,
    # but guard with a normal approximation for larger spaces.
    if n_cells <= np.iinfo(np.int64).max:
        return int(rng.binomial(int(n_cells), p))
    mean = n_cells * p
    std = (n_cells * p * (1 - p)) ** 0.5
    return max(0, int(round(rng.normal(mean, std))))
