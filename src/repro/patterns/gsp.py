"""GSP — General Graph Sparse Pattern (uniform random; paper Fig 2(b)).

"A (0,1) random number generator is employed to determine whether a cell of
the sparse tensor should have a value (when the number is bigger than 0.99
threshold)" (§III), i.e. iid Bernoulli occupancy with p = 1 - threshold.
Table II labels this column CGP; the text calls the pattern GSP — we use
GSP as the canonical name and accept both.

Instead of thresholding every cell (prohibitive at 128^4), the point count
is drawn from the equivalent Binomial and that many *distinct* uniform
addresses are sampled — the exact same distribution over point sets.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.errors import PatternError
from .base import PatternGenerator, bernoulli_point_count, sample_distinct_addresses


class GSPPattern(PatternGenerator):
    """Uniform random occupancy (threshold 0.99 -> density 1 %)."""

    name = "GSP"

    def __init__(self, shape: Sequence[int], *, threshold: float = 0.99):
        super().__init__(shape)
        if not 0.0 <= threshold < 1.0:
            raise PatternError(f"threshold must be in [0,1), got {threshold}")
        self.threshold = float(threshold)

    @property
    def density_param(self) -> float:
        return 1.0 - self.threshold

    def expected_density(self) -> float:
        return self.density_param

    def generate_addresses(self, rng: np.random.Generator) -> np.ndarray:
        n_points = bernoulli_point_count(self.n_cells, self.density_param, rng)
        return sample_distinct_addresses(self.n_cells, n_points, rng)
