"""The Table II synthetic dataset suite.

Nine datasets: {2D, 3D, 4D} x {TSP, GSP, MSP}.  The paper's shapes are
8192^2, 512^3, 128^4; those are the ``"paper"`` scale here, with smaller
``"default"`` and ``"tiny"`` scales so the test and benchmark suites run in
seconds (select with ``REPRO_BENCH_SCALE``; see DESIGN.md §4).

TSP widths are solved from the paper's Table II densities (1.67 % / 3.47 %
/ 8.22 %) under the union-of-adjacent-pair-bands model, so the *density*
targets track the paper across scales even though the paper's own stated
band parameter does not reproduce them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.errors import PatternError
from ..core.tensor import SparseTensor
from .base import PatternGenerator
from .gsp import GSPPattern
from .msp import MSPPattern
from .tsp import TSPPattern

#: Tensor shapes per scale and dimensionality.
SCALES: dict[str, dict[int, tuple[int, ...]]] = {
    "tiny": {2: (256, 256), 3: (64, 64, 64), 4: (24, 24, 24, 24)},
    "default": {2: (2048, 2048), 3: (192, 192, 192), 4: (64, 64, 64, 64)},
    "paper": {2: (8192, 8192), 3: (512, 512, 512), 4: (128, 128, 128, 128)},
}

#: Table II target densities for TSP per dimensionality.
TSP_TARGET_DENSITY = {2: 0.0167, 3: 0.0347, 4: 0.0822}

PATTERN_NAMES: tuple[str, ...] = ("TSP", "GSP", "MSP")
DIMENSIONALITIES: tuple[int, ...] = (2, 3, 4)

_ENV_SCALE = "REPRO_BENCH_SCALE"


def active_scale(default: str = "default") -> str:
    """Scale selected by the ``REPRO_BENCH_SCALE`` environment variable."""
    scale = os.environ.get(_ENV_SCALE, default)
    if scale not in SCALES:
        raise PatternError(
            f"{_ENV_SCALE}={scale!r} unknown; choose from {sorted(SCALES)}"
        )
    return scale


def make_pattern(
    pattern: str, shape: Sequence[int], **overrides
) -> PatternGenerator:
    """Instantiate a pattern generator with the suite's paper defaults."""
    d = len(shape)
    key = pattern.upper()
    if key == "TSP":
        if not overrides:
            overrides = {"target_density": TSP_TARGET_DENSITY.get(d, 0.02)}
        return TSPPattern(shape, **overrides)
    if key in ("GSP", "CGP"):
        return GSPPattern(shape, **overrides)
    if key == "MSP":
        return MSPPattern(shape, **overrides)
    raise PatternError(f"unknown pattern {pattern!r}; choose TSP/GSP/MSP")


@dataclass(frozen=True)
class DatasetSpec:
    """One cell of Table II: a (dimensionality, pattern) pair at a scale."""

    ndim: int
    pattern: str
    shape: tuple[int, ...]
    seed: int

    @property
    def name(self) -> str:
        return f"{self.ndim}D-{self.pattern}"

    @property
    def size_label(self) -> str:
        return " x ".join(str(m) for m in self.shape)

    def generator(self, **overrides) -> PatternGenerator:
        return make_pattern(self.pattern, self.shape, **overrides)

    def generate(self) -> SparseTensor:
        return self.generator().generate(np.random.default_rng(self.seed))


def dataset_suite(
    scale: str | None = None,
    *,
    patterns: Sequence[str] = PATTERN_NAMES,
    dims: Sequence[int] = DIMENSIONALITIES,
    base_seed: int = 20240001,
) -> list[DatasetSpec]:
    """The full (dims x patterns) grid of dataset specs at ``scale``."""
    scale = scale or active_scale()
    shapes = SCALES[scale]
    specs = []
    for d in dims:
        for p_idx, pattern in enumerate(patterns):
            specs.append(
                DatasetSpec(
                    ndim=d,
                    pattern=pattern.upper(),
                    shape=shapes[d],
                    seed=base_seed + 97 * d + p_idx,
                )
            )
    return specs


def get_spec(ndim: int, pattern: str, scale: str | None = None) -> DatasetSpec:
    """Look up one dataset spec from the suite grid."""
    for spec in dataset_suite(scale):
        if spec.ndim == ndim and spec.pattern == pattern.upper():
            return spec
    raise PatternError(f"no spec for {ndim}D {pattern}")


def table2_rows(scale: str | None = None) -> list[dict[str, object]]:
    """Regenerate Table II: per shape, the measured density of each pattern."""
    scale = scale or active_scale()
    rows = []
    for d in DIMENSIONALITIES:
        row: dict[str, object] = {
            "dimension": f"{d}D",
            "size": " x ".join(str(m) for m in SCALES[scale][d]),
        }
        for pattern in PATTERN_NAMES:
            spec = get_spec(d, pattern, scale)
            tensor = spec.generate()
            row[pattern] = tensor.density
            row[f"{pattern}_nnz"] = tensor.nnz
        rows.append(row)
    return rows
