"""Sparsity characterization statistics.

These are the measurements Table II reports (size, density) plus the
structural features that *explain* the organization rankings — per-level
prefix sharing (CSF's space driver), per-folded-row occupancy (GCSR++'s
read driver) — and that the format advisor (paper §VI future work) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dtypes import cell_count
from ..core.linearize import fold_shape_2d
from ..core.sorting import lexsort_rows
from ..core.tensor import SparseTensor
from ..formats.csf import sort_dimensions


def csf_level_counts(tensor: SparseTensor) -> list[int]:
    """Number of CSF nodes per level (``nfibs``) without building the tree.

    Dimensions are sorted ascending by size first, exactly as CSF_BUILD
    does, so ``sum(csf_level_counts) + pointer overhead`` predicts the CSF
    index size.
    """
    n = tensor.nnz
    if n == 0:
        return [0] * tensor.ndim
    dim_perm, _ = sort_dimensions(tensor.shape)
    pc = tensor.coords[:, dim_perm]
    order = lexsort_rows(pc)
    sc = pc[order]
    counts: list[int] = []
    diff_acc = np.zeros(max(n - 1, 0), dtype=bool)
    d = tensor.ndim
    for i in range(d):
        if i == d - 1:
            counts.append(n)
            break
        if n > 1:
            diff_acc |= sc[1:, i] != sc[:-1, i]
        counts.append(1 + int(np.count_nonzero(diff_acc)))
    return counts


@dataclass
class PatternStats:
    """Characterization of one sparse tensor."""

    shape: tuple[int, ...]
    nnz: int
    density: float
    per_dim_unique: tuple[int, ...]
    csf_levels: tuple[int, ...]
    csf_total_nodes: int
    avg_points_per_folded_row: float
    bbox_fill: float  # nnz / bounding-box cells: clustering indicator

    @property
    def csf_sharing_ratio(self) -> float:
        """Total CSF nodes / (n * d) — 1.0 means no prefix sharing at all.

        Low values indicate tree-friendly (clustered) data; values near 1
        are CSF's worst case (Fig 4's GSP columns).
        """
        denom = self.nnz * len(self.shape)
        return self.csf_total_nodes / denom if denom else 0.0


def characterize(tensor: SparseTensor) -> PatternStats:
    """Compute the full statistics bundle for ``tensor``."""
    per_dim = tuple(
        int(np.unique(tensor.coords[:, i]).shape[0]) if tensor.nnz else 0
        for i in range(tensor.ndim)
    )
    levels = csf_level_counts(tensor)
    min_dim = min(tensor.shape) if tensor.shape else 1
    bbox = tensor.bounding_box
    bbox_cells = bbox.n_cells
    if tensor.ndim:
        fold_rows = fold_shape_2d(tensor.shape, min_dim_as="rows")[0]
    else:
        fold_rows = 1
    return PatternStats(
        shape=tensor.shape,
        nnz=tensor.nnz,
        density=tensor.density,
        per_dim_unique=per_dim,
        csf_levels=tuple(levels),
        csf_total_nodes=int(sum(levels)),
        avg_points_per_folded_row=tensor.nnz / max(1, fold_rows),
        bbox_fill=tensor.nnz / bbox_cells if bbox_cells else 0.0,
    )


def density_report(tensor: SparseTensor, expected: float) -> dict[str, float]:
    """Measured vs expected density, with relative error (Table II checks)."""
    measured = tensor.density
    rel_err = abs(measured - expected) / expected if expected else float("inf")
    return {
        "expected": expected,
        "measured": measured,
        "relative_error": rel_err,
    }
