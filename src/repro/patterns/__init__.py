"""Synthetic sparsity patterns (paper §III, Fig 2, Table II)."""

from .base import (
    PatternGenerator,
    bernoulli_point_count,
    sample_distinct_addresses,
)
from .gsp import GSPPattern
from .msp import MSPPattern
from .stats import PatternStats, characterize, csf_level_counts, density_report
from .suite import (
    DIMENSIONALITIES,
    PATTERN_NAMES,
    SCALES,
    TSP_TARGET_DENSITY,
    DatasetSpec,
    active_scale,
    dataset_suite,
    get_spec,
    make_pattern,
    table2_rows,
)
from .tsp import TSPPattern, solve_band_width

__all__ = [
    "PatternGenerator",
    "bernoulli_point_count",
    "sample_distinct_addresses",
    "GSPPattern",
    "MSPPattern",
    "PatternStats",
    "characterize",
    "csf_level_counts",
    "density_report",
    "DIMENSIONALITIES",
    "PATTERN_NAMES",
    "SCALES",
    "TSP_TARGET_DENSITY",
    "DatasetSpec",
    "active_scale",
    "dataset_suite",
    "get_spec",
    "make_pattern",
    "table2_rows",
    "TSPPattern",
    "solve_band_width",
]
