"""TSP — Tridiagonal Sparse Pattern (paper Fig 2(a)).

"Values are concentrated along the tridiagonal bands" — the d-dimensional
generalization used here places a point in every cell where *some adjacent
dimension pair* lies within a band: ``|c_k - c_{k+1}| <= w`` for at least
one ``k``.  In 2D this is the classic (2w+1)-diagonal band matrix.

The paper states "the length of the tridiagonal band is set to 9" (w = 4)
but reports Table II densities that are not consistent with any single
fixed width across 2D/3D/4D (DESIGN.md §4).  The generator therefore takes
either an explicit ``band_width`` or a ``target_density`` that solves for
the width under the union-of-adjacent-pair-bands model

    density ~= 1 - (1 - (2w+1)/m_min)^(d-1),

and the suite's defaults are chosen to land near the paper's densities;
measured values are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.dtypes import INDEX_DTYPE, row_major_strides
from ..core.errors import PatternError
from .base import PatternGenerator


def solve_band_width(shape: Sequence[int], target_density: float) -> int:
    """Smallest band half-width whose model density reaches the target."""
    if not 0.0 < target_density < 1.0:
        raise PatternError(
            f"target_density must be in (0,1), got {target_density}"
        )
    d = len(shape)
    if d < 2:
        raise PatternError("TSP needs at least 2 dimensions")
    m = min(int(v) for v in shape)
    pairs = d - 1
    for w in range(0, m):
        p = min(1.0, (2 * w + 1) / m)
        density = 1.0 - (1.0 - p) ** pairs
        if density >= target_density:
            return w
    return m - 1


class TSPPattern(PatternGenerator):
    """Band occupancy along adjacent dimension pairs."""

    name = "TSP"

    def __init__(
        self,
        shape: Sequence[int],
        *,
        band_width: int | None = None,
        target_density: float | None = None,
    ):
        super().__init__(shape)
        if len(self.shape) < 2:
            raise PatternError("TSP needs at least 2 dimensions")
        if band_width is not None and target_density is not None:
            raise PatternError("give either band_width or target_density")
        if band_width is None:
            if target_density is None:
                band_width = 4  # the paper's band length 9
            else:
                band_width = solve_band_width(self.shape, target_density)
        if band_width < 0:
            raise PatternError(f"band_width must be >= 0, got {band_width}")
        self.band_width = int(band_width)

    def expected_density(self) -> float:
        m = min(self.shape)
        p = min(1.0, (2 * self.band_width + 1) / m)
        return 1.0 - (1.0 - p) ** (len(self.shape) - 1)

    def _pair_band_addresses(self, k: int) -> np.ndarray:
        """Addresses of all cells with ``|c_k - c_{k+1}| <= band_width``."""
        shape = self.shape
        strides = row_major_strides(shape)
        d = len(shape)
        m1, m2 = shape[k], shape[k + 1]
        sk = int(strides[k])
        sk1 = int(strides[k + 1])
        diag_parts = []
        for delta in range(-self.band_width, self.band_width + 1):
            lo = max(0, -delta)
            hi = min(m1, m2 - delta)
            if hi <= lo:
                continue
            i = np.arange(lo, hi, dtype=np.int64)
            diag_parts.append((i * sk + (i + delta) * sk1).astype(INDEX_DTYPE))
        if not diag_parts:
            return np.empty(0, dtype=INDEX_DTYPE)
        pair_addr = np.concatenate(diag_parts)
        total = pair_addr
        for f in range(d):
            if f in (k, k + 1):
                continue
            offs = np.arange(shape[f], dtype=INDEX_DTYPE) * strides[f]
            total = (total[:, np.newaxis] + offs[np.newaxis, :]).reshape(-1)
        return total

    def generate_addresses(self, rng: np.random.Generator) -> np.ndarray:
        parts = [
            self._pair_band_addresses(k) for k in range(len(self.shape) - 1)
        ]
        if len(parts) == 1:
            return np.unique(parts[0])
        return np.unique(np.concatenate(parts))
