"""Benchmark harness (paper §III: Algorithm 3 + scoring)."""

from .experiments import (
    EXPERIMENTS,
    Experiment,
    ExperimentConfig,
    run_experiment,
)
from .report import (
    format_bytes,
    format_number,
    render_comparison,
    render_grouped_series,
    render_table,
)
from .runner import (
    DEFAULT_QUERY_SAMPLE,
    ReadMeasurement,
    WriteMeasurement,
    WriteReadResult,
    make_read_queries,
    paper_read_region,
    read_benchmark,
    run_write_read,
    write_benchmark,
)
from .score import (
    DEFAULT_METRICS,
    ScoreBreakdown,
    metric_scores,
    normalize_cells,
    overall_scores,
)
from .sweep import SweepRecord, SweepResult, run_sweep
from .timers import PhaseTimer, time_call

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentConfig",
    "run_experiment",
    "format_bytes",
    "format_number",
    "render_comparison",
    "render_grouped_series",
    "render_table",
    "DEFAULT_QUERY_SAMPLE",
    "ReadMeasurement",
    "WriteMeasurement",
    "WriteReadResult",
    "make_read_queries",
    "paper_read_region",
    "read_benchmark",
    "run_write_read",
    "write_benchmark",
    "DEFAULT_METRICS",
    "ScoreBreakdown",
    "metric_scores",
    "normalize_cells",
    "overall_scores",
    "SweepRecord",
    "SweepResult",
    "run_sweep",
    "PhaseTimer",
    "time_call",
]
