"""Experiment registry: one regenerator per paper table/figure.

Each experiment takes an :class:`ExperimentConfig` and returns the report
text with the same rows/series the paper reports (DESIGN.md §3's index).
``python -m repro.bench.experiments <id> ...`` runs them from the command
line; the ``benchmarks/`` suite runs them under pytest-benchmark.

Figs 3/4/5 and Tables III/IV all derive from the same write+read sweep, so
one sweep is computed per config and shared across experiments.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..analysis.complexity import (
    PREDICTED_BUILD_ORDER,
    PREDICTED_READ_ORDER,
    PREDICTED_SIZE_ORDER,
    build_ops,
    csf_space_bounds,
    predicted_growth_exponent,
    read_ops,
)
from ..analysis.fit import fit_power_law
from ..core.costmodel import OpCounter
from ..formats.registry import PAPER_FORMATS, get_format
from ..patterns.suite import SCALES, active_scale, get_spec, table2_rows
from .report import format_bytes, render_grouped_series, render_table
from .runner import DEFAULT_QUERY_SAMPLE
from .sweep import SweepResult, run_sweep


@dataclass
class ExperimentConfig:
    """Shared knobs for all experiment regenerators."""

    scale: str | None = None
    formats: tuple[str, ...] = PAPER_FORMATS
    query_sample: int | None = DEFAULT_QUERY_SAMPLE
    fsync: bool = True
    verbose: bool = False
    _sweep_cache: dict[str, SweepResult] = field(default_factory=dict, repr=False)

    @property
    def resolved_scale(self) -> str:
        return self.scale or active_scale()

    def sweep(self) -> SweepResult:
        key = self.resolved_scale
        if key not in self._sweep_cache:
            self._sweep_cache[key] = run_sweep(
                scale=key,
                formats=self.formats,
                query_sample=self.query_sample,
                fsync=self.fsync,
                verbose=self.verbose,
            )
        return self._sweep_cache[key]


# ----------------------------------------------------------------------
# Table I — complexity validation
# ----------------------------------------------------------------------


def run_table1(config: ExperimentConfig) -> str:
    """Fit measured op counts vs n against the Table I growth exponents."""
    from ..patterns.gsp import GSPPattern

    shape_base = {"tiny": 64, "default": 128, "paper": 256}[config.resolved_scale]
    sizes = [shape_base * 2**k for k in range(4)]
    rows = []
    for fmt_name in config.formats:
        fmt = get_format(fmt_name)
        ns, build_counts, read_counts = [], [], []
        for m in sizes:
            shape = (m, m, 8)
            gen = GSPPattern(shape, threshold=0.98)
            tensor = gen.generate(np.random.default_rng(m))
            counter = OpCounter()
            result = fmt.build(tensor.coords, tensor.shape, counter=counter)
            build_counts.append(max(1, counter.total))
            q = min(256, tensor.nnz)
            queries = tensor.coords[:q]
            counter = OpCounter()
            fmt.read_faithful(
                result.payload, result.meta, tensor.shape, queries,
                counter=counter,
            )
            read_counts.append(max(1, counter.total / max(1, q)))
            ns.append(tensor.nnz)
        bfit = fit_power_law(ns, build_counts)
        rfit = fit_power_law(ns, read_counts)
        rows.append(
            [
                fmt_name,
                predicted_growth_exponent(fmt_name, operation="build"),
                round(bfit.exponent, 3),
                predicted_growth_exponent(fmt_name, operation="read-per-query"),
                round(rfit.exponent, 3),
            ]
        )
    table = render_table(
        ["format", "build k (pred)", "build k (fit)",
         "read k (pred)", "read k (fit)"],
        rows,
        title="Table I validation: ops ~ n^k (log-log fits of measured op counts)",
    )
    n_ref, d_ref = 1_000_000, 4
    bounds = csf_space_bounds(n_ref, d_ref)
    extra = render_table(
        ["format", "build ops (n=1e6, d=4)", "read ops (q=1e3)"],
        [
            [f, build_ops(f, n_ref, (100, 100, 100, 100)),
             read_ops(f, n_ref, 1000, (100, 100, 100, 100))]
            for f in config.formats
        ],
        title="\nTable I closed forms evaluated:",
    )
    csf_line = (
        f"\nCSF space cases at n={n_ref}, d={d_ref}: "
        f"best={bounds.best:,} avg={bounds.average:,} worst={bounds.worst:,} elements"
    )
    return table + "\n" + extra + csf_line


# ----------------------------------------------------------------------
# Table II — dataset suite
# ----------------------------------------------------------------------

#: Paper Table II densities for side-by-side reporting.
PAPER_TABLE2 = {
    ("2D", "TSP"): 0.0167, ("2D", "GSP"): 0.0099, ("2D", "MSP"): 0.0019,
    ("3D", "TSP"): 0.0347, ("3D", "GSP"): 0.0099, ("3D", "MSP"): 0.0019,
    ("4D", "TSP"): 0.0822, ("4D", "GSP"): 0.0090, ("4D", "MSP"): 0.0021,
}


def run_table2(config: ExperimentConfig) -> str:
    """Regenerate Table II: size and density of the synthetic datasets."""
    rows = []
    for row in table2_rows(config.resolved_scale):
        for pattern in ("TSP", "GSP", "MSP"):
            rows.append(
                [
                    row["dimension"],
                    row["size"],
                    pattern,
                    f"{row[pattern]:.2%}",
                    f"{PAPER_TABLE2[(row['dimension'], pattern)]:.2%}",
                    row[f"{pattern}_nnz"],
                ]
            )
    return render_table(
        ["dim", "size", "pattern", "density (measured)",
         "density (paper)", "nnz"],
        rows,
        title=f"Table II: synthetic datasets at scale={config.resolved_scale!r}",
    )


# ----------------------------------------------------------------------
# Fig 2 — pattern characterization
# ----------------------------------------------------------------------


def run_fig2(config: ExperimentConfig) -> str:
    """Regenerate Fig 2's content as measured pattern characterizations.

    The paper's figure is illustrative scatter plots; the reproducible
    content is each pattern's structure: density, bounding-box fill,
    per-dimension spread, and CSF prefix sharing (the quantity that drives
    the Fig 4 size variance).
    """
    from ..patterns.stats import characterize
    from ..patterns.suite import dataset_suite

    rows = []
    for spec in dataset_suite(config.resolved_scale):
        tensor = spec.generate()
        st = characterize(tensor)
        rows.append(
            [
                spec.name,
                st.nnz,
                f"{st.density:.3%}",
                f"{st.bbox_fill:.3%}",
                round(st.csf_sharing_ratio, 3),
                round(st.avg_points_per_folded_row, 1),
            ]
        )
    return render_table(
        ["dataset", "nnz", "density", "bbox fill", "csf sharing",
         "row occupancy"],
        rows,
        title=("Fig 2 (characterized): the three sparsity patterns "
               f"at scale={config.resolved_scale!r}"),
    )


# ----------------------------------------------------------------------
# Table III — write breakdown (4D MSP)
# ----------------------------------------------------------------------

PAPER_TABLE3 = {
    "COO": {"Build": 0.0, "Reorg.": 0.0, "Write": 0.1217, "Others": 0.0177,
            "Sum": 0.1393},
    "LINEAR": {"Build": 0.0109, "Reorg.": 0.0, "Write": 0.0504,
               "Others": 0.0167, "Sum": 0.0780},
    "GCSR++": {"Build": 0.1888, "Reorg.": 0.0073, "Write": 0.0493,
               "Others": 0.0179, "Sum": 0.2634},
    "GCSC++": {"Build": 0.4484, "Reorg.": 0.0195, "Write": 0.0513,
               "Others": 0.0174, "Sum": 0.5366},
    "CSF": {"Build": 0.3014, "Reorg.": 0.0073, "Write": 0.0751,
            "Others": 0.0179, "Sum": 0.4017},
}


def run_table3(config: ExperimentConfig) -> str:
    """Regenerate Table III: write-time breakdown for the 4D MSP pattern."""
    sweep = config.sweep()
    phases = ["Build", "Reorg.", "Write", "Others", "Sum"]
    measured_rows = []
    paper_rows = []
    for phase in phases:
        m_row: list = [phase]
        p_row: list = [phase]
        for fmt in config.formats:
            rec = sweep.cell("MSP", 4, fmt)
            m_row.append(round(rec.write.breakdown[phase], 4))
            p_row.append(PAPER_TABLE3.get(fmt, {}).get(phase, float("nan")))
        measured_rows.append(m_row)
        paper_rows.append(p_row)
    headers = ["phase"] + list(config.formats)
    out = [
        render_table(headers, measured_rows,
                     title="Table III (measured, local FS): 4D MSP write breakdown [s]"),
        "",
        render_table(headers, paper_rows,
                     title="Table III (paper, Perlmutter Lustre) [s]"),
    ]
    modeled = [
        ["Modeled sum (PFS)"]
        + [round(sweep.cell("MSP", 4, f).write.modeled_total_seconds, 4)
           for f in config.formats]
    ]
    out.append("")
    out.append(render_table(headers, modeled,
                            title="Modeled with the Lustre I/O profile:"))
    return "\n".join(out)


# ----------------------------------------------------------------------
# Table IV — overall scores
# ----------------------------------------------------------------------

PAPER_TABLE4 = {"COO": 0.76, "LINEAR": 0.34, "GCSR++": 0.36,
                "GCSC++": 0.50, "CSF": 0.48}


def run_table4(config: ExperimentConfig) -> str:
    """Regenerate Table IV: the normalized overall scores."""
    sweep = config.sweep()
    rows = []
    for sb in sweep.scores():
        rows.append(
            [
                sb.format_name,
                round(sb.score, 3),
                PAPER_TABLE4.get(sb.format_name, float("nan")),
                round(sb.per_metric["write_time"], 3),
                round(sb.per_metric["file_size"], 3),
                round(sb.per_metric["read_time"], 3),
            ]
        )
    return render_table(
        ["format", "score (measured)", "score (paper)",
         "write contrib", "size contrib", "read contrib"],
        rows,
        title="Table IV: overall scores (lower is better)",
    )


# ----------------------------------------------------------------------
# Figures 3/4/5 — sweep series
# ----------------------------------------------------------------------


def _sweep_series(sweep: SweepResult, metric: str) -> dict[str, dict[str, float]]:
    groups: dict[str, dict[str, float]] = {}
    cells = sweep.metric_cells(metric)
    for (pattern, ndim, fmt), value in cells.items():
        groups.setdefault(f"{ndim}D {pattern}", {})[fmt] = value
    return dict(sorted(groups.items()))


def run_fig3(config: ExperimentConfig) -> str:
    """Fig 3: write time per organization across patterns and dims."""
    sweep = config.sweep()
    return render_grouped_series(
        "Fig 3: writing time [s] (measured, local FS)",
        _sweep_series(sweep, "write_time"),
        unit="s",
    ) + "\n\n" + render_grouped_series(
        "Fig 3 (modeled with the Lustre profile) [s]",
        _sweep_series(sweep, "write_time_modeled"),
        unit="s",
    )


def run_fig4(config: ExperimentConfig) -> str:
    """Fig 4: fragment file size per organization."""
    sweep = config.sweep()
    groups = _sweep_series(sweep, "file_size")
    text = render_grouped_series(
        "Fig 4: fragment file size [bytes]", groups, unit="B"
    )
    rows = []
    for group, series in groups.items():
        for fmt, nbytes in series.items():
            rows.append([group, fmt, format_bytes(int(nbytes))])
    return text + "\n\n" + render_table(
        ["dataset", "format", "file size"], rows,
        formatters={2: str},
    )


def run_fig5(config: ExperimentConfig) -> str:
    """Fig 5: read time per organization (faithful Table I algorithms)."""
    sweep = config.sweep()
    note = (
        f"(query buffer: {config.query_sample or 'full region'} sampled cells "
        "of the (m/2..m/2+m/10) region; see DESIGN.md §4)"
    )
    return note + "\n" + render_grouped_series(
        "Fig 5: reading time [s]",
        _sweep_series(sweep, "read_time"),
        unit="s",
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Experiment:
    """One registered paper artifact regenerator."""

    exp_id: str
    title: str
    paper_ref: str
    runner: Callable[[ExperimentConfig], str]


def run_claims(config: ExperimentConfig) -> str:
    """Scorecard: every §IV lesson evaluated against the measured sweep."""
    from ..analysis.claims import claims_report

    return claims_report(config.sweep())


EXPERIMENTS: dict[str, Experiment] = {
    e.exp_id: e
    for e in (
        Experiment("table1", "Time/space complexity validation", "Table I",
                   run_table1),
        Experiment("table2", "Synthetic dataset suite", "Table II", run_table2),
        Experiment("table3", "Write breakdown, 4D MSP", "Table III", run_table3),
        Experiment("table4", "Overall scores", "Table IV", run_table4),
        Experiment("fig2", "Pattern characterization", "Fig 2", run_fig2),
        Experiment("fig3", "Write time sweep", "Fig 3", run_fig3),
        Experiment("fig4", "File size sweep", "Fig 4", run_fig4),
        Experiment("fig5", "Read time sweep", "Fig 5", run_fig5),
        Experiment("claims", "Paper-claims scorecard", "§I/§III/§IV",
                   run_claims),
    )
}


def run_experiment(exp_id: str, config: ExperimentConfig | None = None) -> str:
    """Run one experiment by id and return its report text."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[exp_id].runner(config or ExperimentConfig())


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.bench.experiments <id> [scale]")
        print("experiments:")
        for e in EXPERIMENTS.values():
            print(f"  {e.exp_id:8s} {e.paper_ref:10s} {e.title}")
        print(f"scales: {sorted(SCALES)}")
        return 0
    exp_id = argv[0]
    config = ExperimentConfig(scale=argv[1] if len(argv) > 1 else None,
                              verbose=True)
    print(run_experiment(exp_id, config))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
