"""The benchmark runner — Algorithm 3 instrumented.

WRITE: package the coordinate buffer with one organization (*Build*),
reorganize the value buffer by the returned map (*Reorg.*), serialize and
write the fragment (*Write*), everything else is *Others* — Table III's
exact decomposition.  Next to the measured local-filesystem write time the
runner reports a modeled parallel-filesystem time from
:mod:`repro.storage.iosim` (DESIGN.md §4 substitution).

READ: discover overlapping fragments, run the organization's *faithful*
read per fragment (the paper's per-point algorithms, Table I costs), merge
results sorted by linear address.  Queries default to the paper's region —
start ``(m/2, ...)``, size ``(m/10, ...)`` — optionally sampled down so the
O(n*q) baselines stay tractable at large scale.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.boundary import Box, region_box
from ..core.costmodel import OpCounter
from ..core.sorting import stable_argsort
from ..core.tensor import SparseTensor
from ..storage.fragment import load_fragment, query_fragment
from ..storage.iosim import PERLMUTTER_LUSTRE, PFSProfile
from ..storage.options import StoreOptions
from ..storage.store import FragmentStore
from .timers import PhaseTimer

#: Paper read-region parameters (§III).
READ_REGION_START_FRAC = 0.5
READ_REGION_SIZE_FRAC = 0.1

#: Default query-sample size for the faithful O(n*q) read algorithms.
DEFAULT_QUERY_SAMPLE = 2048


@dataclass
class WriteMeasurement:
    """One WRITE benchmark run (Table III columns / Fig 3 bars)."""

    format_name: str
    nnz: int
    build_seconds: float
    reorg_seconds: float
    write_seconds: float
    others_seconds: float
    total_seconds: float
    index_nbytes: int
    value_nbytes: int
    file_nbytes: int
    modeled_pfs_write_seconds: float

    @property
    def breakdown(self) -> dict[str, float]:
        return {
            "Build": self.build_seconds,
            "Reorg.": self.reorg_seconds,
            "Write": self.write_seconds,
            "Others": self.others_seconds,
            "Sum": self.total_seconds,
        }

    @property
    def modeled_total_seconds(self) -> float:
        """Build + reorg measured, file transfer modeled on the PFS."""
        return (
            self.build_seconds
            + self.reorg_seconds
            + self.others_seconds
            + self.modeled_pfs_write_seconds
        )


@dataclass
class ReadMeasurement:
    """One READ benchmark run (Fig 5 bars)."""

    format_name: str
    n_queries: int
    n_found: int
    extract_seconds: float  # load + unpack fragment metadata
    query_seconds: float  # organization-specific existence search
    merge_seconds: float  # sort results by linear address
    total_seconds: float
    fragments_visited: int
    bytes_read: int
    modeled_pfs_read_seconds: float
    op_counts: dict[str, int] = field(default_factory=dict)

    @property
    def modeled_total_seconds(self) -> float:
        return (
            self.query_seconds + self.merge_seconds + self.modeled_pfs_read_seconds
        )


def write_benchmark(
    tensor: SparseTensor,
    format_name: str,
    directory: str | Path | None = None,
    *,
    pfs: PFSProfile = PERLMUTTER_LUSTRE,
    fsync: bool = True,
) -> WriteMeasurement:
    """Measure one WRITE of ``tensor`` in ``format_name``.

    When ``directory`` is omitted a temporary directory is used and cleaned
    up afterwards.
    """
    cleanup = directory is None
    directory = Path(directory or tempfile.mkdtemp(prefix="repro-bench-"))
    try:
        timer = PhaseTimer()
        with timer.total():
            store = FragmentStore(
                directory, tensor.shape, format_name,
                options=StoreOptions(fsync=fsync),
            )
            receipt = store.write_tensor(tensor)
        timer.add("build", receipt.build_seconds)
        timer.add("reorg", receipt.reorg_seconds)
        timer.add("write", receipt.write_seconds)
        return WriteMeasurement(
            format_name=format_name,
            nnz=tensor.nnz,
            build_seconds=receipt.build_seconds,
            reorg_seconds=receipt.reorg_seconds,
            write_seconds=receipt.write_seconds,
            others_seconds=timer.others_seconds,
            total_seconds=timer.total_seconds,
            index_nbytes=receipt.index_nbytes,
            value_nbytes=receipt.value_nbytes,
            file_nbytes=receipt.file_nbytes,
            modeled_pfs_write_seconds=pfs.write_time(receipt.file_nbytes),
        )
    finally:
        if cleanup:
            shutil.rmtree(directory, ignore_errors=True)


def paper_read_region(shape: Sequence[int]) -> Box:
    """The paper's read region: start (m/2, ...), size (m/10, ...)."""
    return region_box(
        shape,
        start_frac=READ_REGION_START_FRAC,
        size_frac=READ_REGION_SIZE_FRAC,
    )


def make_read_queries(
    shape: Sequence[int],
    *,
    box: Box | None = None,
    sample: int | None = DEFAULT_QUERY_SAMPLE,
    rng: np.random.Generator | int | None = 7,
) -> np.ndarray:
    """Query coordinate buffer for the read benchmark.

    ``sample=None`` materializes the full region grid (the paper's exact
    query set); an integer samples that many distinct cells from the region
    so the O(n*q) baselines stay tractable (DESIGN.md §4).
    """
    box = box or paper_read_region(shape)
    if sample is None:
        return box.grid_coords()
    return box.sample_coords(sample, np.random.default_rng(rng))


def read_benchmark(
    store: FragmentStore,
    query_coords: np.ndarray,
    *,
    faithful: bool = True,
    pfs: PFSProfile = PERLMUTTER_LUSTRE,
    counter: OpCounter | None = None,
) -> ReadMeasurement:
    """Measure one READ against an existing store (Algorithm 3 READ).

    The per-fragment phases are timed separately: metadata extraction
    (fragment load + unpack), the organization query, and the final
    merge-sort by linear address (Algorithm 3 line 12).
    """
    query = store.fmt.validate_query(query_coords, store.shape)
    q = query.shape[0]
    counter = counter if counter is not None else OpCounter()
    t_extract = 0.0
    t_query = 0.0
    visited = 0
    bytes_read = 0
    found = np.zeros(q, dtype=bool)
    out_values = np.zeros(q, dtype=float)
    t0 = time.perf_counter()
    if q:
        from ..core.boundary import extract_boundary
        from ..core.dtypes import as_index_array

        qbox = extract_boundary(query)
        for frag in store.fragments:
            if not frag.bbox.intersects(qbox):
                continue
            visited += 1
            s = time.perf_counter()
            payload = load_fragment(frag.path)
            bytes_read += frag.nbytes
            t_extract += time.perf_counter() - s
            mask = frag.bbox.contains_points(query)
            if not mask.any():
                continue
            sub = query[mask]
            if payload.extra.get("relative"):
                origin = as_index_array(list(frag.bbox.origin))
                sub = sub - origin[np.newaxis, :]
            s = time.perf_counter()
            fmt = store.fmt
            if faithful:
                res = fmt.read_faithful(
                    payload.buffers, payload.meta, payload.shape, sub,
                    counter=counter,
                )
            else:
                res = fmt.read(payload.buffers, payload.meta, payload.shape, sub)
            t_query += time.perf_counter() - s
            vals = res.gather_values(payload.values)
            idx = np.flatnonzero(mask)[res.found]
            found[idx] = True
            out_values[idx] = vals
    # Merge: sort results by linear address (Algorithm 3 line 12).
    s = time.perf_counter()
    result_coords = query[found]
    if result_coords.shape[0]:
        from ..core.linearize import linearize

        addr = linearize(result_coords, store.shape, validate=False)
        order = stable_argsort(addr)
        _ = result_coords[order]
        _ = out_values[found][order]
    t_merge = time.perf_counter() - s
    total = time.perf_counter() - t0
    return ReadMeasurement(
        format_name=store.format_name,
        n_queries=q,
        n_found=int(found.sum()),
        extract_seconds=t_extract,
        query_seconds=t_query,
        merge_seconds=t_merge,
        total_seconds=total,
        fragments_visited=visited,
        bytes_read=bytes_read,
        modeled_pfs_read_seconds=pfs.read_time(bytes_read),
        op_counts=counter.snapshot(),
    )


@dataclass
class WriteReadResult:
    """Joint result of one write-then-read benchmark for one format."""

    write: WriteMeasurement
    read: ReadMeasurement


def run_write_read(
    tensor: SparseTensor,
    format_name: str,
    *,
    query_sample: int | None = DEFAULT_QUERY_SAMPLE,
    faithful_read: bool = True,
    pfs: PFSProfile = PERLMUTTER_LUSTRE,
    fsync: bool = True,
) -> WriteReadResult:
    """Write ``tensor`` and read the paper's region back, both measured."""
    directory = Path(tempfile.mkdtemp(prefix="repro-bench-"))
    try:
        timer = PhaseTimer()
        with timer.total():
            store = FragmentStore(
                directory, tensor.shape, format_name,
                options=StoreOptions(fsync=fsync),
            )
            receipt = store.write_tensor(tensor)
        write = WriteMeasurement(
            format_name=format_name,
            nnz=tensor.nnz,
            build_seconds=receipt.build_seconds,
            reorg_seconds=receipt.reorg_seconds,
            write_seconds=receipt.write_seconds,
            others_seconds=max(
                0.0,
                timer.total_seconds
                - receipt.build_seconds
                - receipt.reorg_seconds
                - receipt.write_seconds,
            ),
            total_seconds=timer.total_seconds,
            index_nbytes=receipt.index_nbytes,
            value_nbytes=receipt.value_nbytes,
            file_nbytes=receipt.file_nbytes,
            modeled_pfs_write_seconds=pfs.write_time(receipt.file_nbytes),
        )
        queries = make_read_queries(tensor.shape, sample=query_sample)
        read = read_benchmark(store, queries, faithful=faithful_read, pfs=pfs)
        return WriteReadResult(write=write, read=read)
    finally:
        shutil.rmtree(directory, ignore_errors=True)
