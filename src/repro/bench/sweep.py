"""The full evaluation sweep: {TSP,GSP,MSP} x {2D,3D,4D} x formats.

One sweep produces every measurement Figs 3/4/5 and Tables III/IV are built
from, so the experiment regenerators share a single (cached) sweep instead
of re-running writes per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..formats.registry import PAPER_FORMATS
from ..patterns.suite import DatasetSpec, dataset_suite
from ..storage.iosim import PERLMUTTER_LUSTRE, PFSProfile
from .runner import (
    DEFAULT_QUERY_SAMPLE,
    ReadMeasurement,
    WriteMeasurement,
    run_write_read,
)
from .score import CellKey, ScoreBreakdown, overall_scores


@dataclass
class SweepRecord:
    """One (dataset, format) measurement pair."""

    spec: DatasetSpec
    write: WriteMeasurement
    read: ReadMeasurement

    @property
    def pattern(self) -> str:
        return self.spec.pattern

    @property
    def ndim(self) -> int:
        return self.spec.ndim

    @property
    def format_name(self) -> str:
        return self.write.format_name


@dataclass
class SweepResult:
    """All records of one full sweep, with Table IV scoring attached."""

    records: list[SweepRecord] = field(default_factory=list)

    def cell(self, pattern: str, ndim: int, fmt: str) -> SweepRecord:
        for rec in self.records:
            if (
                rec.pattern == pattern
                and rec.ndim == ndim
                and rec.format_name == fmt
            ):
                return rec
        raise KeyError((pattern, ndim, fmt))

    def metric_cells(self, metric: str) -> dict[CellKey, float]:
        """Extract one metric as the score module's cell mapping.

        ``metric`` is one of ``write_time`` (measured total write seconds),
        ``read_time`` (measured total read seconds), ``file_size``
        (fragment bytes), or the modeled variants ``write_time_modeled`` /
        ``read_time_modeled``.
        """
        out: dict[CellKey, float] = {}
        for rec in self.records:
            key = (rec.pattern, rec.ndim, rec.format_name)
            if metric == "write_time":
                out[key] = rec.write.total_seconds
            elif metric == "write_time_modeled":
                out[key] = rec.write.modeled_total_seconds
            elif metric == "read_time":
                out[key] = rec.read.total_seconds
            elif metric == "read_time_modeled":
                out[key] = rec.read.modeled_total_seconds
            elif metric == "file_size":
                out[key] = float(rec.write.file_nbytes)
            else:
                raise KeyError(f"unknown metric {metric!r}")
        return out

    def scores(
        self, *, modeled: bool = False
    ) -> list[ScoreBreakdown]:
        """Table IV scores over write time, file size, and read time."""
        suffix = "_modeled" if modeled else ""
        return overall_scores(
            {
                "write_time": self.metric_cells(f"write_time{suffix}"
                                                if modeled else "write_time"),
                "file_size": self.metric_cells("file_size"),
                "read_time": self.metric_cells(f"read_time{suffix}"
                                               if modeled else "read_time"),
            }
        )


def run_sweep(
    *,
    scale: str | None = None,
    formats: Sequence[str] = PAPER_FORMATS,
    patterns: Sequence[str] | None = None,
    dims: Sequence[int] | None = None,
    query_sample: int | None = DEFAULT_QUERY_SAMPLE,
    faithful_read: bool = True,
    pfs: PFSProfile = PERLMUTTER_LUSTRE,
    fsync: bool = True,
    verbose: bool = False,
) -> SweepResult:
    """Run the full write+read benchmark grid.

    Datasets are generated once per (pattern, dimensionality) and reused
    across formats so every organization packages identical input buffers,
    as in the paper's benchmark system.
    """
    kwargs = {}
    if patterns is not None:
        kwargs["patterns"] = patterns
    if dims is not None:
        kwargs["dims"] = dims
    specs = dataset_suite(scale, **kwargs)
    result = SweepResult()
    for spec in specs:
        tensor = spec.generate()
        for fmt in formats:
            if verbose:  # pragma: no cover - console feedback only
                print(f"[sweep] {spec.name} {fmt} (n={tensor.nnz}) ...")
            wr = run_write_read(
                tensor,
                fmt,
                query_sample=query_sample,
                faithful_read=faithful_read,
                pfs=pfs,
                fsync=fsync,
            )
            result.records.append(
                SweepRecord(spec=spec, write=wr.write, read=wr.read)
            )
    return result
