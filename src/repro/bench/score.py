"""The paper's overall score (Table IV).

§IV defines, per metric and per (pattern, dimensionality) cell,

    r_i = m_i / max{m_1, ..., m_5}

— each organization's measurement normalized by the *worst* organization in
that cell — and then averages the r_i over the 2D/3D/4D cells and the
TSP/GSP/MSP patterns with equal weights.  Lower is better: Table IV reports
LINEAR = 0.34 (best balance) and COO = 0.76 (worst).

The metrics combined are the three the paper evaluates: write time (Fig 3),
file size (Fig 4), and read time (Fig 5), equally weighted.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping, Sequence

#: (pattern, ndim, format) -> measurement
CellKey = tuple[str, int, str]

DEFAULT_METRICS: tuple[str, ...] = ("write_time", "file_size", "read_time")


@dataclass(frozen=True)
class ScoreBreakdown:
    """Final score plus per-metric contributions for one organization."""

    format_name: str
    score: float
    per_metric: dict[str, float]


def normalize_cells(
    measurements: Mapping[CellKey, float]
) -> dict[CellKey, float]:
    """Divide each measurement by the max over formats in its cell."""
    groups: dict[tuple[str, int], float] = defaultdict(float)
    for (pattern, ndim, _fmt), value in measurements.items():
        key = (pattern, ndim)
        groups[key] = max(groups[key], float(value))
    out: dict[CellKey, float] = {}
    for (pattern, ndim, fmt), value in measurements.items():
        ceiling = groups[(pattern, ndim)]
        out[(pattern, ndim, fmt)] = float(value) / ceiling if ceiling else 0.0
    return out


def metric_scores(
    measurements: Mapping[CellKey, float]
) -> dict[str, float]:
    """Average normalized ratio per format for one metric (equal weights)."""
    normalized = normalize_cells(measurements)
    sums: dict[str, float] = defaultdict(float)
    counts: dict[str, int] = defaultdict(int)
    for (_pattern, _ndim, fmt), r in normalized.items():
        sums[fmt] += r
        counts[fmt] += 1
    return {fmt: sums[fmt] / counts[fmt] for fmt in sums}


def overall_scores(
    per_metric_measurements: Mapping[str, Mapping[CellKey, float]],
    *,
    metrics: Sequence[str] = DEFAULT_METRICS,
) -> list[ScoreBreakdown]:
    """Table IV: combine per-metric normalized scores with equal weights.

    Parameters
    ----------
    per_metric_measurements:
        ``{"write_time": {(pattern, ndim, fmt): seconds, ...},
        "file_size": {...}, "read_time": {...}}``.

    Returns
    -------
    list[ScoreBreakdown]
        One entry per format, sorted best (lowest) first.
    """
    per_metric: dict[str, dict[str, float]] = {}
    formats: set[str] = set()
    for metric in metrics:
        if metric not in per_metric_measurements:
            raise KeyError(f"missing measurements for metric {metric!r}")
        scores = metric_scores(per_metric_measurements[metric])
        per_metric[metric] = scores
        formats.update(scores)
    results = []
    for fmt in formats:
        contributions = {m: per_metric[m].get(fmt, 0.0) for m in metrics}
        results.append(
            ScoreBreakdown(
                format_name=fmt,
                score=sum(contributions.values()) / len(metrics),
                per_metric=contributions,
            )
        )
    results.sort(key=lambda s: s.score)
    return results
