"""Phase timing utilities for the benchmark harness.

Table III decomposes WRITE into *Build* / *Reorg.* / *Write* / *Others*; the
:class:`PhaseTimer` records named phases against a monotonic clock and
exposes exactly that breakdown, with *Others* defined (as in the paper) as
the residual between the sum of named phases and the enclosing total.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class PhaseTimer:
    """Accumulates wall-clock seconds per named phase."""

    phases: dict[str, float] = field(default_factory=dict)
    _total_start: float | None = None
    total_seconds: float = 0.0

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    @contextmanager
    def total(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.total_seconds += time.perf_counter() - start

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured phase duration."""
        self.phases[name] = self.phases.get(name, 0.0) + float(seconds)

    @property
    def named_seconds(self) -> float:
        return sum(self.phases.values())

    @property
    def others_seconds(self) -> float:
        """Residual time not attributed to any named phase."""
        return max(0.0, self.total_seconds - self.named_seconds)

    def breakdown(self) -> dict[str, float]:
        """Phases plus ``others`` and ``sum`` (Table III's rows)."""
        out = dict(self.phases)
        out["others"] = self.others_seconds
        out["sum"] = max(self.total_seconds, self.named_seconds)
        return out


def time_call(fn, *args, **kwargs) -> tuple[float, object]:
    """Run ``fn`` and return ``(seconds, result)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result
