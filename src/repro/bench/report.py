"""Plain-text table and series rendering for benchmark reports.

Every experiment regenerator prints the same rows/series the paper reports
(DESIGN.md §3); this module is the shared renderer — monospace tables with
aligned columns, engineering-formatted numbers, and simple grouped "figure"
series (the textual stand-in for the paper's bar charts).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence


def format_number(value: Any, *, digits: int = 4) -> str:
    """Human-friendly scalar formatting (times, bytes, ratios)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 10 ** (-digits):
            return f"{value:.{digits}g}"
        return f"{value:.{digits}f}"
    return str(value)


def format_bytes(nbytes: int) -> str:
    """IEC-ish byte formatting (B / KiB / MiB / GiB)."""
    size = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if size < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(size)} {unit}"
            return f"{size:.2f} {unit}"
        size /= 1024
    raise AssertionError("unreachable")


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    formatters: Mapping[int, Callable[[Any], str]] | None = None,
) -> str:
    """Render an aligned monospace table."""
    formatters = formatters or {}
    text_rows: list[list[str]] = []
    for row in rows:
        text_row = []
        for i, cell in enumerate(row):
            fmt = formatters.get(i, format_number)
            text_row.append(fmt(cell))
        text_rows.append(text_row)
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in text_rows:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_grouped_series(
    title: str,
    groups: Mapping[str, Mapping[str, float]],
    *,
    unit: str = "s",
    bar_width: int = 40,
) -> str:
    """Textual bar chart: one block per group, one bar per series.

    The stand-in for Figs 3/4/5: ``groups`` maps a group label (e.g.
    "2D TSP") to ``{format: value}``.
    """
    lines = [title]
    for group, series in groups.items():
        lines.append(f"\n  {group}")
        # Bars are scaled per group: the paper's figures compare formats
        # within each (pattern, dimensionality) panel.
        gmax = max(series.values(), default=0.0)
        for name, value in series.items():
            frac = value / gmax if gmax else 0.0
            bar = "#" * max(1 if value > 0 else 0, int(round(frac * bar_width)))
            lines.append(
                f"    {name:<11s} {format_number(value):>12s} {unit}  {bar}"
            )
    return "\n".join(lines)


def render_comparison(
    title: str,
    headers: Sequence[str],
    paper_rows: Sequence[Sequence[Any]],
    measured_rows: Sequence[Sequence[Any]],
) -> str:
    """Paper-vs-measured side-by-side block (EXPERIMENTS.md source)."""
    parts = [
        title,
        "",
        render_table(headers, paper_rows, title="paper:"),
        "",
        render_table(headers, measured_rows, title="measured:"),
    ]
    return "\n".join(parts)
