"""Store conversion: re-encode a dataset in a different organization.

Conversion is lossless and purely mechanical.  Each fragment first tries
the **direct-conversion kernel registry**
(:mod:`repro.storage.migrate`): when the ``(source format, target
format)`` pair has a registered kernel, the payload is transcribed
buffer→buffer with vectorized numpy ops — zero re-sorting, no canonical
intermediate — and committed with the source fragment's bounding box and
zone map carried over (the point set is unchanged).  Unregistered pairs
(and payloads failing a kernel's preconditions) fall back to the
canonical path: payload → canonical intermediate
(:meth:`~repro.storage.store.FragmentStore.fragment_canonical`, built on
the organization's ``extract_addresses``) → target payload
(:meth:`~repro.storage.store.FragmentStore.write_canonical`).  Both
paths produce byte-identical fragments; boundaries — and therefore
overwrite ordering — are preserved either way.  Converted fragments are
stored in canonical (ascending linear-address) order with the newest
write last within duplicate runs — the point→value mapping, including
newest-wins duplicate resolution, is unchanged.

A source with an **unpacked WAL tail** converts completely: the tail's
live points are written as the destination's final fragment (the tail is
newer than every committed fragment, so the final position preserves its
newest-wins priority).  The source itself is never mutated — its WAL
stays intact.

Together with the advisor this closes the loop the paper's conclusion
sketches — characterize, pick, and *migrate*.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..build.canonical import CanonicalCoords
from ..core.errors import FragmentError
from ..formats.base import EncodedTensor
from ..formats.registry import get_format, resolve_format
from .fragment import load_fragment, write_fragment
from .store import FragmentStore


def _convert_fragment_direct(
    source: FragmentStore, dest: FragmentStore, index: int
) -> bool:
    """Try the direct kernel path for one fragment; False = fall back.

    Only taken when it is byte-for-byte equivalent to the canonical
    path: the target must not re-base coordinates differently
    (``relative_coords`` matches, which ``convert_store`` guarantees by
    construction) and the registry must accept the payload.  The new
    fragment reuses the source's bounding box and zone map — migration
    preserves the point set exactly.
    """
    from .migrate import get_kernel

    frag = source.fragments[index]
    if get_kernel(frag.format_name, dest.format_name) is None:
        return False
    payload = load_fragment(frag.path)
    encoded = EncodedTensor(
        fmt=get_format(payload.format_name),
        shape=tuple(int(m) for m in payload.shape),
        nnz=int(payload.nnz),
        payload=dict(payload.buffers),
        meta=dict(payload.meta),
        values=np.asarray(payload.values),
    )
    from .migrate import direct_convert

    converted = direct_convert(encoded, dest.fmt)
    if converted is None:
        return False
    with dest._rw.write_locked():
        path = dest._next_fragment_path()
        info = write_fragment(
            path,
            converted,
            bbox=frag.bbox,
            extra=dict(payload.extra),
            fsync=dest.fsync,
            codec=dest.codec,
        )
        info.zone = frag.zone
        with dest._state_lock:
            dest._fragments.append(info)
        dest._save_manifest()
        dest.workload_ledger.record_write(info.path.name)
    return True


def convert_store(
    source: FragmentStore,
    destination_dir: str | Path,
    format_name,
    *,
    codec: str | None = None,
    compact: bool = False,
) -> FragmentStore:
    """Re-encode every fragment of ``source`` into a new store.

    Parameters
    ----------
    source:
        The store to convert (unchanged — a pending WAL tail is copied
        into the destination, not drained from the source).
    destination_dir:
        Directory for the converted store; must not already hold fragments.
    format_name:
        Target organization — a registry name or a
        :class:`~repro.formats.base.SparseFormat` instance.
    codec:
        Target compression codec; defaults to the source's.
    compact:
        Also merge the converted fragments into one (newest-wins dedup).
    """
    destination_dir = Path(destination_dir)
    target = resolve_format(format_name)
    dest = FragmentStore(
        destination_dir,
        source.shape,
        target,
        options=source.options.replace(
            codec=codec if codec is not None else source.codec,
        ),
    )
    if dest.fragments:
        raise FragmentError(
            f"destination {destination_dir} already contains fragments"
        )
    for i in range(len(source.fragments)):
        if _convert_fragment_direct(source, dest, i):
            continue
        canon, values = source.fragment_canonical(i)
        dest.write_canonical(canon, values)
    # An unpacked WAL tail holds live points every read of `source`
    # serves; without this the converted store would silently miss them.
    # The tail is newer than all committed fragments, so it lands last
    # (same newest-wins priority it had as an overlay).
    tail = source._wal_tail()
    if tail is not None and tail.n:
        dest.write_canonical(
            CanonicalCoords.from_addresses(
                tail.addresses, source.shape, is_sorted=True
            ),
            tail.values,
        )
    if compact and dest.fragments:
        dest.compact()
    return dest
