"""Store conversion: re-encode a dataset in a different organization.

Conversion is lossless and purely mechanical, and since the unified build
pipeline it never materializes a :class:`~repro.core.tensor.SparseTensor`:
each fragment goes payload → canonical intermediate
(:meth:`~repro.storage.store.FragmentStore.fragment_canonical`, built on
the organization's ``extract_addresses``) → target payload
(:meth:`~repro.storage.store.FragmentStore.write_canonical`), preserving
fragment boundaries and therefore overwrite ordering.  Converted fragments
are stored in canonical (ascending linear-address) order with the newest
write last within duplicate runs — the point→value mapping, including
newest-wins duplicate resolution, is unchanged.  Together with the advisor
this closes the loop the paper's conclusion sketches — characterize, pick,
and *migrate*.
"""

from __future__ import annotations

from pathlib import Path

from ..core.errors import FragmentError
from .store import FragmentStore


def convert_store(
    source: FragmentStore,
    destination_dir: str | Path,
    format_name,
    *,
    codec: str | None = None,
    compact: bool = False,
) -> FragmentStore:
    """Re-encode every fragment of ``source`` into a new store.

    Parameters
    ----------
    source:
        The store to convert (unchanged).
    destination_dir:
        Directory for the converted store; must not already hold fragments.
    format_name:
        Target organization — a registry name or a
        :class:`~repro.formats.base.SparseFormat` instance.
    codec:
        Target compression codec; defaults to the source's.
    compact:
        Also merge the converted fragments into one (newest-wins dedup).
    """
    destination_dir = Path(destination_dir)
    dest = FragmentStore(
        destination_dir,
        source.shape,
        format_name,
        options=source.options.replace(
            codec=codec if codec is not None else source.codec,
        ),
    )
    if dest.fragments:
        raise FragmentError(
            f"destination {destination_dir} already contains fragments"
        )
    for i in range(len(source.fragments)):
        canon, values = source.fragment_canonical(i)
        dest.write_canonical(canon, values)
    if compact and dest.fragments:
        dest.compact()
    return dest
