"""Concurrent READ pipeline: decoded-fragment cache + bounded fan-out.

Algorithm 3's READ is embarrassingly parallel across fragments — each
overlapping fragment is loaded, decoded, and queried independently, and
only the final address-sorted merge is sequential.  This module supplies
the two pieces the store layer composes into that pipeline:

:class:`FragmentCache`
    A bytes-bounded, thread-safe LRU of *decoded* fragment payloads.  The
    sequential READ re-reads and re-decodes every overlapping fragment on
    every query; under read-heavy traffic (the ROADMAP's north star) the
    decode cost dominates, and a warm cache turns it into a dictionary
    lookup.  The cache is invalidated wholesale on every manifest
    generation change (``write`` / ``compact`` / ``rescan`` / quarantine),
    so a hit can never serve pre-compaction data.  Hits, misses,
    evictions, and resident bytes are mirrored into :mod:`repro.obs`
    (``store.cache.hits`` / ``.misses`` / ``.evictions`` /
    ``store.cache.bytes``).

:func:`map_fragments_ordered`
    Fan a per-fragment task out over the shared bounded
    :class:`~concurrent.futures.ThreadPoolExecutor` and return results in
    *input order* with per-item exceptions captured, so the caller can
    apply the store's ``on_corruption`` policy fragment-by-fragment exactly
    as the sequential loop does.  NumPy releases the GIL for the heavy
    decode kernels, so thread-level parallelism is real parallelism here.

:class:`RWLock`
    A reader-writer lock (concurrent readers, exclusive reentrant writers)
    that makes one store safe under mixed concurrent
    ``read_points`` / ``read_box`` / ``write`` / ``compact`` traffic: reads
    share the lock, mutations exclude reads, and a compaction can never
    delete fragment files out from under an in-flight read.

Fragment *selection* happens before any of this: the store builds one
:class:`~repro.storage.planner.QueryPlan` per query (spatial index +
zone-map pruning, see :mod:`repro.storage.planner` and
``docs/QUERY_PLANNER.md``), and the same plan's fragment list feeds both
the sequential loop and the parallel fan-out — so the two execution modes
always visit identical fragment sets and merge identical results.

See ``docs/READ_PATH.md`` for the full pipeline description and guidance
on when ``parallel="thread"`` helps (fragment count × per-fragment decode
cost).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Any, Callable, Sequence, TypeVar

from ..obs import counter_add, gauge_set

#: Read-side parallelism modes (``read_points(parallel=...)``).
PARALLEL_MODES = ("none", "thread")

#: Upper bound on the shared read pool (per process).
MAX_READ_WORKERS = min(32, 4 * (os.cpu_count() or 1))

#: Fixed per-entry bookkeeping estimate (dict slots, header, bbox tuples).
_ENTRY_OVERHEAD = 512

T = TypeVar("T")
R = TypeVar("R")

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None


def validate_parallel(parallel: str) -> str:
    """Validate a ``parallel=`` argument (shared by every read entry point)."""
    if parallel not in PARALLEL_MODES:
        raise ValueError(
            f"parallel must be one of {PARALLEL_MODES}, got {parallel!r}"
        )
    return parallel


def get_read_executor() -> ThreadPoolExecutor:
    """The process-wide read pool (created lazily, bounded, shared).

    One bounded pool serves every store in the process so concurrent
    queries against many stores cannot multiply thread counts — the same
    discipline a server would apply to its I/O pool.
    """
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = ThreadPoolExecutor(
                max_workers=MAX_READ_WORKERS,
                thread_name_prefix="repro-read",
            )
        return _pool


def shutdown_read_executor() -> None:
    """Tear down the shared pool (tests; safe to call when never created)."""
    global _pool
    with _pool_lock:
        pool, _pool = _pool, None
    if pool is not None:
        pool.shutdown(wait=True)


def map_fragments_ordered(
    items: Sequence[T],
    task: Callable[[T], R],
    *,
    max_workers: int | None = None,
) -> list[tuple[R | None, BaseException | None]]:
    """Run ``task`` over ``items`` on the shared pool; ordered results.

    Returns one ``(result, exception)`` pair per item, in input order —
    exceptions are captured, never raised, so the caller can apply its
    corruption policy in deterministic fragment order (identical to the
    sequential loop).  ``max_workers`` bounds *this call's* in-flight tasks
    with a sliding submission window over the shared pool; ``None`` uses
    the pool's own bound.
    """
    limit = MAX_READ_WORKERS if max_workers is None else max(1, int(max_workers))
    out: list[tuple[R | None, BaseException | None]] = [
        (None, None) for _ in items
    ]
    if not items:
        return out
    pool = get_read_executor()
    pending: dict[Any, int] = {}
    next_index = 0
    while next_index < len(items) or pending:
        while next_index < len(items) and len(pending) < limit:
            fut = pool.submit(task, items[next_index])
            pending[fut] = next_index
            next_index += 1
        done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
        for fut in done:
            idx = pending.pop(fut)
            exc = fut.exception()
            if exc is not None:
                out[idx] = (None, exc)
            else:
                out[idx] = (fut.result(), None)
    return out


def payload_nbytes(payload) -> int:
    """Resident-size estimate of one decoded fragment payload.

    Counts the index buffers, the value buffer, and a fixed bookkeeping
    constant.  Read memos the format stashes on ``payload.runtime`` after
    caching (sorted orders etc., up to ~2x the index bytes) ride outside
    this estimate — the budget bounds *decoded data*, and the memos die
    with the entry either way.
    """
    total = _ENTRY_OVERHEAD + int(payload.values.nbytes)
    for buf in payload.buffers.values():
        total += int(buf.nbytes)
    return total


class FragmentCache:
    """Bytes-bounded LRU over decoded fragment payloads (thread-safe).

    Keys are fragment file names — unique within a store directory, and
    never reused across a store's lifetime (:meth:`FragmentStore.
    _scan_next_seq` only counts upward).  ``max_bytes=0`` disables the
    cache entirely: every lookup misses without recording metrics, so the
    default-off store pays one predicate per read.

    Invalidation is wholesale (:meth:`invalidate`) and hooked to the store
    manifest's generation counter: any committed mutation — ``write``,
    ``compact``, ``rescan``, a quarantine during a degraded read — clears
    the cache, so stale post-compaction hits are impossible.  Cumulative
    counters survive invalidation; resident bytes reset.
    """

    def __init__(self, max_bytes: int = 0):
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[Any, int]] = OrderedDict()
        self._bytes = 0
        #: Cumulative totals (mirrored into ``store.cache.*`` obs metrics).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0

    @property
    def current_bytes(self) -> int:
        """Resident decoded bytes (always ``<= max_bytes``)."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str):
        """The cached payload for ``key``, or ``None`` (recorded as a miss)."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                counter_add("store.cache.hits")
                return entry[0]
            self.misses += 1
        counter_add("store.cache.misses")
        return None

    def put(self, key: str, payload) -> None:
        """Insert ``payload``; evicts LRU entries to respect ``max_bytes``.

        A payload larger than the whole budget is not cached (it would
        evict everything and then be evicted by the next insert anyway).
        """
        if not self.enabled:
            return
        nbytes = payload_nbytes(payload)
        if nbytes > self.max_bytes:
            return
        evicted = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            while self._bytes + nbytes > self.max_bytes and self._entries:
                _, (_, old_nbytes) = self._entries.popitem(last=False)
                self._bytes -= old_nbytes
                self.evictions += 1
                evicted += 1
            self._entries[key] = (payload, nbytes)
            self._bytes += nbytes
            resident = self._bytes
        if evicted:
            counter_add("store.cache.evictions", evicted)
        gauge_set("store.cache.bytes", resident)

    def invalidate(self) -> None:
        """Drop every entry (generation change); totals are preserved."""
        with self._lock:
            had = bool(self._entries)
            self._entries.clear()
            self._bytes = 0
            if had:
                self.invalidations += 1
        if had:
            counter_add("store.cache.invalidations")
            gauge_set("store.cache.bytes", 0)

    def stats(self) -> dict[str, int]:
        """Snapshot for reporting (``repro stats`` cache section)."""
        with self._lock:
            return {
                "enabled": int(self.enabled),
                "max_bytes": self.max_bytes,
                "bytes": self._bytes,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }


class RWLock:
    """Reader-writer lock: shared readers, exclusive *reentrant* writer.

    The writer side is reentrant (``compact`` calls ``write`` internally)
    and a thread holding the write lock may also take the read lock (a
    mutation that reads its own store).  Fairness is writer-preferring
    enough for storage use: once a writer is waiting, new readers queue
    behind it, so a compaction cannot be starved by a read storm.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None
        self._writer_depth = 0
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # Write lock already held by this thread: reads are allowed.
                self._writer_depth += 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth -= 1
                return
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        with self._cond:
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    def read_locked(self) -> "_Held":
        return _Held(self.acquire_read, self.release_read)

    def write_locked(self) -> "_Held":
        return _Held(self.acquire_write, self.release_write)


class _Held:
    """Tiny context manager binding an acquire/release pair."""

    __slots__ = ("_acquire", "_release")

    def __init__(self, acquire: Callable[[], None], release: Callable[[], None]):
        self._acquire = acquire
        self._release = release

    def __enter__(self) -> None:
        self._acquire()

    def __exit__(self, *exc: object) -> None:
        self._release()


__all__ = [
    "FragmentCache",
    "MAX_READ_WORKERS",
    "PARALLEL_MODES",
    "RWLock",
    "get_read_executor",
    "map_fragments_ordered",
    "payload_nbytes",
    "shutdown_read_executor",
    "validate_parallel",
]
