"""Crash-safe write-ahead log for append-optimized ingest.

High-rate writers cannot pay a full canonical build (linearize + sort +
dedup + format packaging + manifest commit) per ``write``.  The WAL gives
:class:`~repro.storage.store.FragmentStore` an append path with the same
durability story the fragment substrate already has, at a fraction of the
cost per chunk:

**Segments.**
    Appends go to ``<store>/wal/seg-NNNNNN.wal.open`` — the single
    *active* segment.  When it crosses ``StoreOptions.wal_segment_bytes``
    it is *sealed* by an atomic rename to ``seg-NNNNNN.wal`` (the rename
    is the commit point, exactly like fragment commits) and a fresh
    active segment starts.  Sealed segments are immutable; the background
    packer drains them through ``CanonicalCoords``/``merge_sorted_runs``
    into real fragments and retires them (manifest-then-delete).

**Records.**
    One append = one framed record::

        u32 body_len | body | u32 crc32(body)

    where ``body`` is ``u32 meta_len | meta JSON (space-padded to an
    8-byte boundary) | addresses (uint64) | values``.  The padding keeps
    the address buffer 8-byte aligned for zero-copy ``np.frombuffer``.
    There is no rename for appends — durability comes from the optional
    per-record fsync plus the framing: a crash mid-append leaves a *torn
    tail* that replay detects and truncates.

**Torn-tail taxonomy (the PR 2 discrimination, applied to appends).**
    Replay and fsck classify a damaged segment by *where* the damage is:

    * file shorter than the segment header → torn header write; nothing
      was ever durable, the file is removed;
    * an incomplete/over-running length prefix, or a CRC/decode failure
      on the **final** record → torn tail; the segment is truncated back
      to its longest intact prefix (``store.wal.torn_tails``);
    * a CRC/decode failure on a **middle** record, a bad magic/header
      CRC, or a header shape mismatch → not explicable by a crashed
      append; the whole segment is quarantined to ``.quarantine/`` with
      a reason sidecar, never silently dropped.

Replay keeps every decoded chunk in memory (the unpacked *tail*);
:func:`build_tail_run` collapses the chunks through the same newest-wins
merge the compactor uses, so reads that overlay the tail are bit-identical
to a synchronous ``write`` of the same points.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

from ..build.canonical import CanonicalCoords
from ..build.merge import MergedPoints, SortedRun, merge_sorted_runs
from ..core.linearize import delinearize
from ..obs import counter_add, gauge_set
from .durability import (
    append_bytes,
    quarantine_file,
    read_bytes,
    remove_file,
    rename_file,
    truncate_file,
)
from .planner import ZoneMap

#: Subdirectory of a store holding WAL segments.
WAL_DIR = "wal"
#: Segment file magic (header prefix).
WAL_MAGIC = b"RWAL"
#: Segment format version.
WAL_VERSION = 1
#: Suffix of sealed (immutable) segments.
SEG_SUFFIX = ".wal"
#: Suffix of the single active (appendable) segment.
OPEN_SUFFIX = ".wal.open"

_SEG_RE = re.compile(r"seg-(\d+)\.wal(\.open)?$")
_U32 = struct.Struct("<I")


def wal_path(store_dir: str | os.PathLike) -> Path:
    """The WAL directory of a store (``<store>/wal``); may not exist."""
    return Path(store_dir) / WAL_DIR


def segment_seq(path: Path) -> int:
    """The monotonic sequence number in a segment file name."""
    m = _SEG_RE.search(path.name)
    if m is None:
        raise ValueError(f"not a WAL segment name: {path.name}")
    return int(m.group(1))


def list_segments(wal_directory: str | os.PathLike) -> list[Path]:
    """All WAL segments in a directory, oldest first, active segment last.

    Sealed segments sort by sequence number; an active ``.wal.open``
    segment (there is at most one in a healthy store, but a crashed seal
    can race a new segment into existence — sequence order still holds)
    sorts after a sealed segment of the same sequence.
    """
    wal_directory = Path(wal_directory)
    if not wal_directory.is_dir():
        return []
    segs = [
        p for p in wal_directory.iterdir()
        if _SEG_RE.search(p.name) is not None
    ]
    return sorted(segs, key=lambda p: (segment_seq(p), p.name.endswith(OPEN_SUFFIX)))


# ----------------------------------------------------------------------
# Record / header framing
# ----------------------------------------------------------------------

def encode_header(shape: Sequence[int], epoch: int) -> bytes:
    """Serialize a segment header: magic, version, length, JSON, CRC."""
    meta = json.dumps(
        {"shape": [int(s) for s in shape], "epoch": int(epoch)},
        sort_keys=True,
    ).encode("utf-8")
    return b"".join([
        WAL_MAGIC,
        _U32.pack(WAL_VERSION),
        _U32.pack(len(meta)),
        meta,
        _U32.pack(zlib.crc32(meta) & 0xFFFFFFFF),
    ])


def decode_header(data: bytes) -> tuple[dict[str, Any] | None, int, str]:
    """Parse a segment header from the start of ``data``.

    Returns ``(header, extent, reason)``: a parsed header dict and the
    byte offset of the first record, or ``header=None`` with ``reason``
    explaining the failure.  ``extent=0`` with ``header=None`` and
    ``reason=""`` means the file is too short to hold a header — a torn
    header write, not corruption.
    """
    if len(data) < 12:
        return None, 0, ""
    magic = data[:4]
    (version,) = _U32.unpack_from(data, 4)
    (hlen,) = _U32.unpack_from(data, 8)
    extent = 12 + hlen + 4
    if magic != WAL_MAGIC:
        return None, 0, f"bad magic {magic!r}"
    if version != WAL_VERSION:
        return None, 0, f"unsupported WAL version {version}"
    if len(data) < extent:
        return None, 0, ""  # header never finished committing
    meta = data[12:12 + hlen]
    (crc,) = _U32.unpack_from(data, 12 + hlen)
    if zlib.crc32(meta) & 0xFFFFFFFF != crc:
        return None, 0, "header CRC mismatch"
    try:
        header = json.loads(meta.decode("utf-8"))
        header["shape"] = tuple(int(s) for s in header["shape"])
        header["epoch"] = int(header.get("epoch", 0))
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        return None, 0, f"header unparseable: {exc}"
    return header, extent, ""


def encode_record(addresses: np.ndarray, values: np.ndarray) -> bytes:
    """Frame one appended chunk as a length-prefixed, CRC-protected record."""
    addresses = np.ascontiguousarray(addresses, dtype=np.uint64)
    values = np.ascontiguousarray(values)
    if values.dtype.byteorder not in ("=", "|", "<"):
        values = values.astype(values.dtype.newbyteorder("<"))
    meta = json.dumps(
        {"n": int(addresses.shape[0]), "value_dtype": values.dtype.str},
        sort_keys=True,
    ).encode("ascii")
    # Pad the meta JSON with spaces so the address buffer starts on an
    # 8-byte boundary within the body (frombuffer alignment).
    pad = (-(4 + len(meta))) % 8
    meta = meta + b" " * pad
    body = b"".join([
        _U32.pack(len(meta)),
        meta,
        addresses.tobytes(),
        values.tobytes(),
    ])
    return b"".join([
        _U32.pack(len(body)),
        body,
        _U32.pack(zlib.crc32(body) & 0xFFFFFFFF),
    ])


def decode_record_body(body: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_record`'s body; raises ``ValueError``."""
    if len(body) < 4:
        raise ValueError("record body shorter than its meta length prefix")
    (mlen,) = _U32.unpack_from(body, 0)
    if 4 + mlen > len(body):
        raise ValueError("record meta overruns the body")
    meta = json.loads(body[4:4 + mlen].decode("ascii"))
    n = int(meta["n"])
    vdtype = np.dtype(meta["value_dtype"])
    astart = 4 + mlen
    vstart = astart + 8 * n
    if vstart + vdtype.itemsize * n != len(body):
        raise ValueError("record payload size mismatch")
    addresses = np.frombuffer(body, dtype=np.uint64, count=n, offset=astart)
    values = np.frombuffer(body, dtype=vdtype, count=n, offset=vstart)
    return addresses, values


# ----------------------------------------------------------------------
# Segment scan (shared by replay and fsck)
# ----------------------------------------------------------------------

@dataclass
class SegmentScan:
    """Outcome of scanning one segment file.

    ``status`` is ``"ok"`` (every byte accounted for), ``"torn"`` (the
    longest intact prefix is ``valid_bytes``; repair truncates — or
    removes the file when nothing was durable), or ``"corrupt"``
    (mid-file damage or a bad header; repair quarantines).  ``chunks``
    holds the intact records' decoded ``(addresses, values)`` pairs in
    append order regardless of status.
    """

    path: Path
    header: dict[str, Any] | None
    chunks: list[tuple[np.ndarray, np.ndarray]]
    valid_bytes: int
    status: str
    detail: str = ""

    @property
    def points(self) -> int:
        return sum(int(a.shape[0]) for a, _ in self.chunks)


def scan_segment(
    path: str | os.PathLike,
    *,
    expected_shape: tuple[int, ...] | None = None,
) -> SegmentScan:
    """Scan one segment, classifying damage per the torn-tail taxonomy."""
    path = Path(path)
    data = read_bytes(path)
    header, offset, reason = decode_header(data)
    if header is None:
        if reason:
            return SegmentScan(path, None, [], 0, "corrupt", reason)
        return SegmentScan(
            path, None, [], 0, "torn", "torn segment header"
        )
    if expected_shape is not None and header["shape"] != tuple(expected_shape):
        return SegmentScan(
            path, header, [], 0, "corrupt",
            f"segment shape {header['shape']} != store shape "
            f"{tuple(expected_shape)}",
        )
    chunks: list[tuple[np.ndarray, np.ndarray]] = []
    size = len(data)
    while offset < size:
        if offset + 4 > size:
            return SegmentScan(
                path, header, chunks, offset, "torn",
                "torn length prefix at end of segment",
            )
        (blen,) = _U32.unpack_from(data, offset)
        extent = 8 + blen
        if offset + extent > size:
            return SegmentScan(
                path, header, chunks, offset, "torn",
                f"record at {offset} overruns EOF",
            )
        body = data[offset + 4:offset + 4 + blen]
        (crc,) = _U32.unpack_from(data, offset + 4 + blen)
        reason = ""
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            reason = f"record CRC mismatch at {offset}"
        else:
            try:
                chunk = decode_record_body(body)
            except (ValueError, KeyError, TypeError) as exc:
                reason = f"record at {offset} undecodable: {exc}"
            else:
                chunks.append(chunk)
        if reason:
            if offset + extent == size:
                # Damaged *final* record: a torn append, not corruption.
                return SegmentScan(path, header, chunks, offset, "torn", reason)
            return SegmentScan(
                path, header, chunks, offset, "corrupt",
                reason + " (mid-segment)",
            )
        offset += extent
    return SegmentScan(path, header, chunks, size, "ok")


# ----------------------------------------------------------------------
# The log
# ----------------------------------------------------------------------

@dataclass
class _Segment:
    """In-memory mirror of one on-disk segment."""

    path: Path
    seq: int
    nbytes: int
    chunks: list[tuple[np.ndarray, np.ndarray]] = field(default_factory=list)

    @property
    def sealed(self) -> bool:
        return not self.path.name.endswith(OPEN_SUFFIX)


class WriteAheadLog:
    """Per-store WAL: segment lifecycle + in-memory tail mirror.

    Not thread-safe on its own; the owning store serializes mutations
    under its write lock.  ``version`` increments on every mutation so
    callers can cache derived state (the merged tail run) against it.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        shape: Sequence[int],
        *,
        segment_bytes: int = 4 << 20,
        fsync: bool = False,
        epoch: int = 0,
    ):
        self.directory = Path(directory)
        self.shape = tuple(int(s) for s in shape)
        self.segment_bytes = int(segment_bytes)
        self.fsync = bool(fsync)
        self.epoch = int(epoch)
        self.version = 0
        self.torn_tails = 0
        self._segments: list[_Segment] = []
        self.directory.mkdir(parents=True, exist_ok=True)
        self._replay()

    # -- replay ---------------------------------------------------------

    def _replay(self) -> None:
        """Load every intact record, repairing torn tails in place."""
        for path in list_segments(self.directory):
            scan = scan_segment(path, expected_shape=self.shape)
            if scan.status == "corrupt":
                quarantine_file(
                    self.directory, path, reason=f"wal replay: {scan.detail}"
                )
                continue
            if scan.status == "torn":
                self.torn_tails += 1
                counter_add("store.wal.torn_tails")
                if scan.valid_bytes == 0:
                    # Not even the header committed; nothing durable here.
                    remove_file(path)
                    continue
                truncate_file(path, scan.valid_bytes)
            seg = _Segment(
                path=path,
                seq=segment_seq(path),
                nbytes=scan.valid_bytes,
                chunks=scan.chunks,
            )
            self._segments.append(seg)
            counter_add("store.wal.records_replayed", len(scan.chunks))
        # A crashed seal can strand a full .open segment behind a newer
        # one; seal every non-final open segment so the packer sees them.
        for seg in self._segments[:-1]:
            if not seg.sealed:
                self._seal(seg)
        self.version += 1
        self._publish_bytes()

    # -- append path ----------------------------------------------------

    def append(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """Durably append one chunk to the active segment."""
        record = encode_record(addresses, values)
        seg = self._active_segment()
        append_bytes(seg.path, record, fsync=self.fsync)
        seg.nbytes += len(record)
        seg.chunks.append((
            np.ascontiguousarray(addresses, dtype=np.uint64),
            np.ascontiguousarray(values),
        ))
        counter_add("store.wal.appends")
        if seg.nbytes >= self.segment_bytes:
            self._seal(seg)
        self.version += 1
        self._publish_bytes()

    def _active_segment(self) -> _Segment:
        if self._segments and not self._segments[-1].sealed:
            return self._segments[-1]
        seq = self._segments[-1].seq + 1 if self._segments else 0
        path = self.directory / f"seg-{seq:06d}{OPEN_SUFFIX}"
        header = encode_header(self.shape, self.epoch)
        append_bytes(path, header, fsync=self.fsync)
        seg = _Segment(path=path, seq=seq, nbytes=len(header))
        self._segments.append(seg)
        return seg

    def _seal(self, seg: _Segment) -> None:
        sealed = seg.path.with_name(f"seg-{seg.seq:06d}{SEG_SUFFIX}")
        rename_file(seg.path, sealed)
        seg.path = sealed
        counter_add("store.wal.segments_sealed")

    def seal_active(self) -> None:
        """Seal the active segment (if any, and if it holds records)."""
        if self._segments and not self._segments[-1].sealed:
            if self._segments[-1].chunks:
                self._seal(self._segments[-1])
                self.version += 1

    # -- drain ----------------------------------------------------------

    def segment_paths(self) -> list[Path]:
        return [s.path for s in self._segments]

    def drop_segments(self, paths: Sequence[Path]) -> None:
        """Retire packed segments: unlink files, forget their chunks.

        Callers must have committed the packed fragment to the manifest
        *first* — a crash between that commit and these unlinks leaves
        duplicate points that the newest-wins read merge absorbs.
        """
        doomed = {Path(p).name for p in paths}
        for seg in self._segments:
            if seg.path.name in doomed:
                try:
                    remove_file(seg.path)
                finally:
                    counter_add("store.wal.segments_retired")
        self._segments = [
            s for s in self._segments if s.path.name not in doomed
        ]
        self.version += 1
        self._publish_bytes()

    # -- introspection --------------------------------------------------

    def iter_chunks(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Every live chunk, oldest append first (newest-wins merge order)."""
        for seg in self._segments:
            yield from seg.chunks

    @property
    def total_points(self) -> int:
        return sum(
            int(a.shape[0]) for a, _ in self.iter_chunks()
        )

    @property
    def total_bytes(self) -> int:
        return sum(s.nbytes for s in self._segments)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def _publish_bytes(self) -> None:
        gauge_set("store.wal.bytes", float(self.total_bytes))

    def stats(self) -> dict[str, int]:
        return {
            "segments": self.segment_count,
            "bytes": self.total_bytes,
            "points": self.total_points,
            "torn_tails_repaired": self.torn_tails,
        }


# ----------------------------------------------------------------------
# Tail merge (read overlay)
# ----------------------------------------------------------------------

@dataclass
class TailRun:
    """The WAL tail collapsed to one newest-wins sorted run.

    ``addresses`` are ascending and unique; ``values`` is aligned.  The
    zone map gives the planner the same pruning handle a fragment has.
    """

    shape: tuple[int, ...]
    addresses: np.ndarray
    values: np.ndarray
    zone: ZoneMap | None
    _coords: np.ndarray | None = None

    @property
    def n(self) -> int:
        return int(self.addresses.shape[0])

    @property
    def coords(self) -> np.ndarray:
        """Tail coordinates ``(n, d)``, derived lazily from addresses."""
        if self._coords is None:
            self._coords = delinearize(
                self.addresses, self.shape, validate=False
            )
        return self._coords


def merge_chunks(
    chunks: Sequence[tuple[np.ndarray, np.ndarray]],
    shape: Sequence[int],
) -> MergedPoints | None:
    """Merge raw appended chunks into one newest-wins canonical point set.

    Reuses the compactor's merge (:func:`~repro.build.merge.
    merge_sorted_runs`): chunks are oldest-first runs, so duplicate
    addresses resolve to the newest append's latest occurrence — the
    exact semantics a synchronous ``write`` of the same points has.
    The packer hands the result straight to ``write_canonical``; the
    read overlay collapses it further via :func:`build_tail_run`.
    Returns ``None`` when no chunk holds a point.
    """
    shape = tuple(int(s) for s in shape)
    runs = []
    for addresses, values in chunks:
        if addresses.shape[0] == 0:
            continue
        canon = CanonicalCoords.from_addresses(addresses, shape)
        perm = canon.sort_perm
        runs.append(SortedRun(
            addresses=canon.sorted_addresses,
            values=np.asarray(values)[perm],
            positions=perm,
        ))
    if not runs:
        return None
    return merge_sorted_runs(runs, shape)


def build_tail_run(
    chunks: Sequence[tuple[np.ndarray, np.ndarray]],
    shape: Sequence[int],
) -> TailRun | None:
    """Collapse raw appended chunks into one sorted newest-wins run.

    The read-overlay form of :func:`merge_chunks`: addresses come back
    ascending and unique with aligned values, plus a zone map so box and
    point reads can prune the tail exactly like a fragment.  Returns
    ``None`` for an empty tail.
    """
    shape = tuple(int(s) for s in shape)
    merged = merge_chunks(chunks, shape)
    if merged is None:
        return None
    sorted_addresses = merged.canonical.sorted_addresses
    sorted_values = merged.values[merged.canonical.sort_perm]
    zone = ZoneMap.from_addresses(sorted_addresses, assume_sorted=True)
    return TailRun(
        shape=shape,
        addresses=sorted_addresses,
        values=sorted_values,
        zone=zone,
    )
