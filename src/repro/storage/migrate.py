"""Format-migration engine: direct-kernel dispatch and the online policy.

Two halves, mirroring the paper's conclusion ("characterize, score,
migrate"):

**Dispatch** — a ``(src_format, dst_format) → kernel`` registry over the
direct payload→payload kernels of
:mod:`repro.formats.convert_kernels`.  ``EncodedTensor.convert`` and
:func:`repro.storage.convert.convert_store` route every conversion
through :func:`direct_convert` first; a registered kernel transcribes
the payload with vectorized numpy ops and **zero re-sorting**, an
unregistered pair (or a payload failing a kernel's preconditions) falls
back to the canonical path transparently.  Counters:
``migrate.direct`` / ``migrate.fallback`` (labelled ``src``/``dst``).

**Policy** — :class:`MigrationPolicy` applies the paper's Table IV
scoring (:func:`repro.analysis.advisor.recommend`) *online*, per
fragment, against the observed :class:`~repro.obs.workload.
FragmentWorkload`: a fragment is re-formatted only when the projected
combined cost of the best candidate beats the current format's by more
than a hysteresis margin and the fragment has seen enough reads for the
observation to mean something.  :class:`~repro.storage.adaptive.
AdaptiveStore` runs the sweep during ``compact()`` / ``pack_wal()``
(``StoreOptions(migrate="compact")``) or opportunistically after reads
(``migrate="auto"``).

See ``docs/FORMAT_MIGRATION.md`` for the kernel table, the ledger
schema, and the crash matrix.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from ..formats.convert_kernels import KERNELS, Kernel
from ..formats.registry import get_format
from ..obs import counter_add, span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.advisor import Recommendation, Workload
    from ..formats.base import EncodedTensor
    from ..obs.workload import FragmentWorkload

#: The live registry; seeded with every kernel the formats layer ships.
_KERNELS: dict[tuple[str, str], Kernel] = dict(KERNELS)


def register_kernel(src: str, dst: str, kernel: Kernel) -> None:
    """Register (or override) the direct kernel for a directed pair.

    Names are resolved through the format registry, so aliases and
    case-insensitive spellings land on the canonical pair key.
    """
    _KERNELS[(get_format(src).name, get_format(dst).name)] = kernel


def get_kernel(src: str, dst: str) -> Kernel | None:
    """The registered kernel for ``(src, dst)``, or ``None``."""
    return _KERNELS.get((src, dst))


def registered_pairs() -> tuple[tuple[str, str], ...]:
    """Every directed pair with a registered kernel, sorted."""
    return tuple(sorted(_KERNELS))


def direct_convert(encoded: "EncodedTensor", fmt) -> "EncodedTensor | None":
    """Convert via a registered direct kernel, or ``None`` to fall back.

    The returned tensor is byte-identical (payload buffers, dtypes,
    meta, value alignment) to what the canonical path produces for the
    same input — kernels that cannot guarantee that return ``None``
    themselves.  Charges ``migrate.direct`` on a kernel hit and
    ``migrate.fallback`` on a miss, labelled with the pair.
    """
    from ..formats.base import EncodedTensor
    from ..formats.registry import resolve_format

    fmt = resolve_format(fmt)
    kernel = _KERNELS.get((encoded.fmt.name, fmt.name))
    result = None
    if kernel is not None:
        result = kernel(encoded.payload, encoded.meta, encoded.shape)
    if result is None:
        counter_add(
            "migrate.fallback", src=encoded.fmt.name, dst=fmt.name
        )
        return None
    counter_add("migrate.direct", src=encoded.fmt.name, dst=fmt.name)
    payload, meta, value_order = result
    values = (
        encoded.values if value_order is None
        else encoded.values[value_order]
    )
    return EncodedTensor(
        fmt=fmt,
        shape=tuple(encoded.shape),
        nnz=encoded.nnz,
        payload=dict(payload),
        meta=dict(meta),
        values=values,
    )


# ----------------------------------------------------------------------
# Online migration policy (Table IV scoring over observed workloads)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MigrationPolicy:
    """When is re-formatting a fragment worth it?

    Attributes
    ----------
    min_reads:
        A fragment must have served at least this many read operations
        before its observed workload is trusted (cold fragments keep
        their write-time format).
    hysteresis:
        Relative combined-cost margin the best candidate must clear:
        migrate only when ``best.combined < (1 - hysteresis) *
        current.combined``.  Damps oscillation between near-tied
        formats.
    direct_only:
        Restrict candidate targets to pairs with a registered direct
        kernel (so a policy-driven sweep never pays a canonical-path
        rebuild).  ``False`` considers every candidate format.
    max_fragment_nnz:
        Skip fragments larger than this many points (0 = no limit);
        a guard for latency-sensitive ``migrate="auto"`` sweeps.
    """

    min_reads: int = 4
    hysteresis: float = 0.1
    direct_only: bool = True
    max_fragment_nnz: int = 0

    def __post_init__(self) -> None:
        if int(self.min_reads) < 0:
            raise ValueError("min_reads must be >= 0")
        if not 0.0 <= float(self.hysteresis) < 1.0:
            raise ValueError("hysteresis must be in [0, 1)")
        if int(self.max_fragment_nnz) < 0:
            raise ValueError("max_fragment_nnz must be >= 0")

    def replace(self, **changes: Any) -> "MigrationPolicy":
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class MigrationDecision:
    """One fragment's verdict from :func:`plan_migrations`."""

    index: int
    current_format: str
    target_format: str | None  #: ``None`` = keep the current format.
    reason: str
    current_cost: float = 0.0
    target_cost: float = 0.0

    @property
    def migrate(self) -> bool:
        return self.target_format is not None


def observed_workload(
    base: "Workload", stats: "FragmentWorkload"
) -> "Workload":
    """Specialize the store's base workload with a fragment's ledger entry.

    The advisor's :class:`~repro.analysis.advisor.Workload` carries two
    observable ratios — ``reads_per_write`` and ``queries_per_read`` —
    alongside the user-stated weights.  The weights are kept (they
    encode intent the ledger cannot see); the ratios are replaced with
    what the fragment actually served.
    """
    reads = stats.reads
    writes = max(stats.writes, 1)
    changes: dict[str, Any] = {}
    if reads:
        changes["reads_per_write"] = max(reads / writes, 1e-6)
    if stats.point_reads:
        changes["queries_per_read"] = max(
            stats.points_queried / stats.point_reads, 1.0
        )
    return dataclasses.replace(base, **changes) if changes else base


def score_fragment(
    stats_or_tensor,
    workload: "Workload",
    *,
    candidates: Iterable[str] | None = None,
) -> "Recommendation":
    """Table IV scoring of one fragment under an observed workload."""
    from ..analysis.advisor import PAPER_FORMATS, recommend

    formats = tuple(candidates) if candidates is not None else PAPER_FORMATS
    return recommend(stats_or_tensor, workload, formats=formats)


def decide(
    index: int,
    current_format: str,
    recommendation: "Recommendation",
    stats: "FragmentWorkload",
    policy: MigrationPolicy,
) -> MigrationDecision:
    """Apply the policy gates to a scored fragment."""
    ranked = {p.format_name: p for p in recommendation.ranked}
    current = ranked.get(current_format)
    best = recommendation.ranked[0]
    if stats.reads < policy.min_reads:
        return MigrationDecision(
            index, current_format, None,
            f"cold: {stats.reads} reads < min_reads={policy.min_reads}",
        )
    if current is None:
        # Current format was not among the candidates — treat the best
        # candidate as an unconditional win (it was chosen by the user's
        # candidate list, the incumbent wasn't).
        if policy.direct_only and get_kernel(
            current_format, best.format_name
        ) is None:
            return MigrationDecision(
                index, current_format, None,
                f"no direct kernel {current_format}->{best.format_name}",
            )
        return MigrationDecision(
            index, current_format, best.format_name,
            "current format not in candidate set",
            target_cost=best.combined,
        )
    if policy.direct_only:
        reachable = [
            p for p in recommendation.ranked
            if p.format_name == current_format
            or get_kernel(current_format, p.format_name) is not None
        ]
        if not reachable:
            return MigrationDecision(
                index, current_format, None, "no direct kernel to any candidate",
                current_cost=current.combined,
            )
        best = reachable[0]
    if best.format_name == current_format:
        return MigrationDecision(
            index, current_format, None, "already best",
            current_cost=current.combined, target_cost=best.combined,
        )
    threshold = (1.0 - policy.hysteresis) * current.combined
    if best.combined >= threshold:
        return MigrationDecision(
            index, current_format, None,
            f"within hysteresis ({best.combined:.4f} >= "
            f"{threshold:.4f})",
            current_cost=current.combined, target_cost=best.combined,
        )
    return MigrationDecision(
        index, current_format, best.format_name,
        f"{best.combined:.4f} < {threshold:.4f} "
        f"(hysteresis {policy.hysteresis:g})",
        current_cost=current.combined, target_cost=best.combined,
    )


def plan_migrations(
    store,
    *,
    workload: "Workload",
    policy: MigrationPolicy | None = None,
    candidates: Iterable[str] | None = None,
) -> list[MigrationDecision]:
    """Score every live fragment of ``store`` and return the verdicts.

    Pure planning — nothing is migrated; feed the positive decisions to
    ``store.migrate_fragment``.  Fragments without a ledger entry (never
    read since the ledger began) are reported as cold.
    """
    from ..obs.workload import FragmentWorkload
    from ..patterns.stats import characterize

    policy = policy or MigrationPolicy()
    ledger = getattr(store, "workload_ledger", None)
    decisions: list[MigrationDecision] = []
    with span("store.migrate.plan"):
        for i, frag in enumerate(store.fragments):
            stats = None
            if ledger is not None:
                stats = ledger.get(frag.path.name)
            if stats is None:
                stats = FragmentWorkload()
            if stats.reads < policy.min_reads:
                decisions.append(MigrationDecision(
                    i, frag.format_name, None,
                    f"cold: {stats.reads} reads < "
                    f"min_reads={policy.min_reads}",
                ))
                continue
            if policy.max_fragment_nnz and frag.nnz > policy.max_fragment_nnz:
                decisions.append(MigrationDecision(
                    i, frag.format_name, None,
                    f"nnz {frag.nnz} > max_fragment_nnz="
                    f"{policy.max_fragment_nnz}",
                ))
                continue
            tensor = store.decode_fragment(i)
            pattern = characterize(tensor)
            rec = score_fragment(
                pattern, observed_workload(workload, stats),
                candidates=candidates,
            )
            decisions.append(
                decide(i, frag.format_name, rec, stats, policy)
            )
    return decisions
