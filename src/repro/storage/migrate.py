"""Format-migration engine: direct-kernel dispatch and the online policy.

Two halves, mirroring the paper's conclusion ("characterize, score,
migrate"):

**Dispatch** — a ``(src_format, dst_format) → kernel`` registry over the
direct payload→payload kernels of
:mod:`repro.formats.convert_kernels`.  ``EncodedTensor.convert`` and
:func:`repro.storage.convert.convert_store` route every conversion
through :func:`direct_convert` first; a registered kernel transcribes
the payload with vectorized numpy ops and **zero re-sorting**, an
unregistered pair (or a payload failing a kernel's preconditions) falls
back to the canonical path transparently.  Counters:
``migrate.direct`` / ``migrate.fallback`` (labelled ``src``/``dst``).

**Policy** — :class:`MigrationPolicy` applies the paper's Table IV
scoring (:func:`repro.analysis.advisor.recommend`) *online*, per
fragment, against the observed :class:`~repro.obs.workload.
FragmentWorkload`: a fragment is re-formatted only when the projected
combined cost of the best candidate beats the current format's by more
than a hysteresis margin and the fragment has seen enough reads for the
observation to mean something.  :class:`~repro.storage.adaptive.
AdaptiveStore` runs the sweep during ``compact()`` / ``pack_wal()``
(``StoreOptions(migrate="compact")``) or opportunistically after reads
(``migrate="auto"``).

See ``docs/FORMAT_MIGRATION.md`` for the kernel table, the ledger
schema, and the crash matrix.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from ..formats.convert_kernels import KERNELS, Kernel
from ..formats.registry import get_format
from ..obs import counter_add, span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.advisor import Recommendation, Workload
    from ..formats.base import EncodedTensor
    from ..obs.workload import FragmentWorkload

#: The live registry; seeded with every kernel the formats layer ships.
_KERNELS: dict[tuple[str, str], Kernel] = dict(KERNELS)


def register_kernel(src: str, dst: str, kernel: Kernel) -> None:
    """Register (or override) the direct kernel for a directed pair.

    Names are resolved through the format registry, so aliases and
    case-insensitive spellings land on the canonical pair key.
    """
    _KERNELS[(get_format(src).name, get_format(dst).name)] = kernel


def get_kernel(src: str, dst: str) -> Kernel | None:
    """The registered kernel for ``(src, dst)``, or ``None``."""
    return _KERNELS.get((src, dst))


def registered_pairs() -> tuple[tuple[str, str], ...]:
    """Every directed pair with a registered kernel, sorted."""
    return tuple(sorted(_KERNELS))


def direct_convert(encoded: "EncodedTensor", fmt) -> "EncodedTensor | None":
    """Convert via a registered direct kernel, or ``None`` to fall back.

    The returned tensor is byte-identical (payload buffers, dtypes,
    meta, value alignment) to what the canonical path produces for the
    same input — kernels that cannot guarantee that return ``None``
    themselves.  Charges ``migrate.direct`` on a kernel hit and
    ``migrate.fallback`` on a miss, labelled with the pair.
    """
    from ..formats.base import EncodedTensor
    from ..formats.registry import resolve_format

    from ..formats.base import meta_addr_order

    fmt = resolve_format(fmt)
    kernel = _KERNELS.get((encoded.fmt.name, fmt.name))
    result = None
    # Direct kernels transcribe row-major payloads; an order-bearing
    # payload in another address space falls back to the canonical path
    # (which is order-aware).
    if kernel is not None and meta_addr_order(encoded.meta) == "row_major":
        result = kernel(encoded.payload, encoded.meta, encoded.shape)
    if result is None:
        counter_add(
            "migrate.fallback", src=encoded.fmt.name, dst=fmt.name
        )
        return None
    counter_add("migrate.direct", src=encoded.fmt.name, dst=fmt.name)
    payload, meta, value_order = result
    values = (
        encoded.values if value_order is None
        else encoded.values[value_order]
    )
    return EncodedTensor(
        fmt=fmt,
        shape=tuple(encoded.shape),
        nnz=encoded.nnz,
        payload=dict(payload),
        meta=dict(meta),
        values=values,
    )


# ----------------------------------------------------------------------
# Address-order re-linearization kernels (row_major ↔ alto)
# ----------------------------------------------------------------------

#: An addr kernel: ``(encoded, dst_order) -> EncodedTensor | None``.
#: ``None`` = precondition failed, use the generic extract-and-rebuild.
AddrKernel = Any

#: ``(format_name, src_order, dst_order) → kernel``.
_ADDR_KERNELS: dict[tuple[str, str, str], AddrKernel] = {}


def register_addr_kernel(
    fmt: str, src_order: str, dst_order: str, kernel: AddrKernel
) -> None:
    """Register the direct re-linearization kernel for a format/order pair."""
    _ADDR_KERNELS[(get_format(fmt).name, src_order, dst_order)] = kernel


def get_addr_kernel(
    fmt: str, src_order: str, dst_order: str
) -> AddrKernel | None:
    return _ADDR_KERNELS.get((fmt, src_order, dst_order))


def _linear_addr_kernel(encoded: "EncodedTensor", dst_order: str):
    """LINEAR: remap every stored address bit-for-bit, stored order kept.

    One vectorized delinearize (source space) + linearize (target
    space); no sort, no value gather.
    """
    from ..core.linearize import delinearize_order, linearize_order
    from ..formats.base import EncodedTensor, meta_addr_order

    addresses = encoded.payload.get("addresses")
    if addresses is None:
        return None
    src_order = meta_addr_order(encoded.meta)
    coords = delinearize_order(
        addresses, encoded.shape, src_order, validate=False
    )
    remapped = linearize_order(coords, encoded.shape, dst_order, validate=False)
    meta = {} if dst_order == "row_major" else {"addr_order": dst_order}
    return EncodedTensor(
        fmt=encoded.fmt,
        shape=tuple(encoded.shape),
        nnz=encoded.nnz,
        payload={"addresses": remapped},
        meta=meta,
        values=encoded.values,
    )


def _coo_sorted_addr_kernel(encoded: "EncodedTensor", dst_order: str):
    """COO-SORTED: re-sort the stored coordinates by the target order.

    The coordinates are already materialized, so the kernel skips the
    generic path's delinearize round trip — one linearize + one stable
    argsort + one gather.
    """
    from ..core.linearize import linearize_order
    from ..core.sorting import stable_argsort
    from ..formats.base import EncodedTensor

    coords = encoded.payload.get("coords")
    if coords is None:
        return None
    addresses = linearize_order(
        coords, encoded.shape, dst_order, validate=False
    )
    order = stable_argsort(addresses)
    meta: dict[str, Any] = {"sorted_by": "linear"}
    if dst_order != "row_major":
        meta["addr_order"] = dst_order
    return EncodedTensor(
        fmt=encoded.fmt,
        shape=tuple(encoded.shape),
        nnz=encoded.nnz,
        payload={"coords": coords[order]},
        meta=meta,
        values=encoded.values[order],
    )


for _src, _dst in (("row_major", "alto"), ("alto", "row_major")):
    _ADDR_KERNELS[("LINEAR", _src, _dst)] = _linear_addr_kernel
    _ADDR_KERNELS[("COO-SORTED", _src, _dst)] = _coo_sorted_addr_kernel


def convert_addr_order(
    encoded: "EncodedTensor", dst_order: str
) -> "EncodedTensor":
    """Re-express an encoded tensor in another address order.

    Order-independent payloads (COO, CSF, HICOO, GCSR++/GCSC++ — their
    buffers do not depend on the canonical sort's address space) pass
    through untouched; order-bearing payloads (LINEAR, COO-SORTED) go
    through a registered re-linearization kernel when one exists, else
    the generic extract-in-target-order + rebuild.  Charges
    ``migrate.addr_direct`` / ``migrate.addr_fallback``.
    """
    from ..build.canonical import CanonicalCoords
    from ..formats.base import meta_addr_order

    fmt = encoded.fmt
    if fmt.payload_orders is None:
        return encoded
    src_order = meta_addr_order(encoded.meta)
    if src_order == dst_order:
        return encoded
    kernel = _ADDR_KERNELS.get((fmt.name, src_order, dst_order))
    if kernel is not None:
        result = kernel(encoded, dst_order)
        if result is not None:
            counter_add(
                "migrate.addr_direct", fmt=fmt.name,
                src=src_order, dst=dst_order,
            )
            return result
    counter_add(
        "migrate.addr_fallback", fmt=fmt.name,
        src=src_order, dst=dst_order,
    )
    addresses, order = fmt.extract_addresses(
        encoded.payload, encoded.meta, encoded.shape, order=dst_order
    )
    canon = CanonicalCoords.from_addresses(
        addresses, encoded.shape, is_sorted=True, addr_order=dst_order
    )
    values = encoded.values if order is None else encoded.values[order]
    return fmt.encode_canonical(canon, values)


# ----------------------------------------------------------------------
# Online migration policy (Table IV scoring over observed workloads)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MigrationPolicy:
    """When is re-formatting a fragment worth it?

    Attributes
    ----------
    min_reads:
        A fragment must have served at least this many read operations
        before its observed workload is trusted (cold fragments keep
        their write-time format).
    hysteresis:
        Relative combined-cost margin the best candidate must clear:
        migrate only when ``best.combined < (1 - hysteresis) *
        current.combined``.  Damps oscillation between near-tied
        formats.
    direct_only:
        Restrict candidate targets to pairs with a registered direct
        kernel (so a policy-driven sweep never pays a canonical-path
        rebuild).  ``False`` considers every candidate format.
    max_fragment_nnz:
        Skip fragments larger than this many points (0 = no limit);
        a guard for latency-sensitive ``migrate="auto"`` sweeps.
    addr_min_reads:
        Total reads the store must have served (summed over the ledger)
        before the address-order signal is trusted
        (:func:`decide_addr_order`).
    addr_box_ratio:
        Fraction of reads that are box reads at which a row-major store
        re-orders to ALTO (box-heavy ledgers want all-mode locality).
    addr_hysteresis:
        An ALTO store only reverts to row-major once the box ratio drops
        below ``addr_box_ratio - addr_hysteresis`` — damps oscillation
        around the threshold.
    """

    min_reads: int = 4
    hysteresis: float = 0.1
    direct_only: bool = True
    max_fragment_nnz: int = 0
    addr_min_reads: int = 8
    addr_box_ratio: float = 0.5
    addr_hysteresis: float = 0.2

    def __post_init__(self) -> None:
        if int(self.min_reads) < 0:
            raise ValueError("min_reads must be >= 0")
        if not 0.0 <= float(self.hysteresis) < 1.0:
            raise ValueError("hysteresis must be in [0, 1)")
        if int(self.max_fragment_nnz) < 0:
            raise ValueError("max_fragment_nnz must be >= 0")
        if int(self.addr_min_reads) < 0:
            raise ValueError("addr_min_reads must be >= 0")
        if not 0.0 < float(self.addr_box_ratio) <= 1.0:
            raise ValueError("addr_box_ratio must be in (0, 1]")
        if not 0.0 <= float(self.addr_hysteresis) < 1.0:
            raise ValueError("addr_hysteresis must be in [0, 1)")

    def replace(self, **changes: Any) -> "MigrationPolicy":
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class MigrationDecision:
    """One fragment's verdict from :func:`plan_migrations`."""

    index: int
    current_format: str
    target_format: str | None  #: ``None`` = keep the current format.
    reason: str
    current_cost: float = 0.0
    target_cost: float = 0.0

    @property
    def migrate(self) -> bool:
        return self.target_format is not None


def observed_workload(
    base: "Workload", stats: "FragmentWorkload"
) -> "Workload":
    """Specialize the store's base workload with a fragment's ledger entry.

    The advisor's :class:`~repro.analysis.advisor.Workload` carries two
    observable ratios — ``reads_per_write`` and ``queries_per_read`` —
    alongside the user-stated weights.  The weights are kept (they
    encode intent the ledger cannot see); the ratios are replaced with
    what the fragment actually served.
    """
    reads = stats.reads
    writes = max(stats.writes, 1)
    changes: dict[str, Any] = {}
    if reads:
        changes["reads_per_write"] = max(reads / writes, 1e-6)
    if stats.point_reads:
        changes["queries_per_read"] = max(
            stats.points_queried / stats.point_reads, 1.0
        )
    return dataclasses.replace(base, **changes) if changes else base


def score_fragment(
    stats_or_tensor,
    workload: "Workload",
    *,
    candidates: Iterable[str] | None = None,
) -> "Recommendation":
    """Table IV scoring of one fragment under an observed workload."""
    from ..analysis.advisor import PAPER_FORMATS, recommend

    formats = tuple(candidates) if candidates is not None else PAPER_FORMATS
    return recommend(stats_or_tensor, workload, formats=formats)


def decide(
    index: int,
    current_format: str,
    recommendation: "Recommendation",
    stats: "FragmentWorkload",
    policy: MigrationPolicy,
) -> MigrationDecision:
    """Apply the policy gates to a scored fragment."""
    ranked = {p.format_name: p for p in recommendation.ranked}
    current = ranked.get(current_format)
    best = recommendation.ranked[0]
    if stats.reads < policy.min_reads:
        return MigrationDecision(
            index, current_format, None,
            f"cold: {stats.reads} reads < min_reads={policy.min_reads}",
        )
    if current is None:
        # Current format was not among the candidates — treat the best
        # candidate as an unconditional win (it was chosen by the user's
        # candidate list, the incumbent wasn't).
        if policy.direct_only and get_kernel(
            current_format, best.format_name
        ) is None:
            return MigrationDecision(
                index, current_format, None,
                f"no direct kernel {current_format}->{best.format_name}",
            )
        return MigrationDecision(
            index, current_format, best.format_name,
            "current format not in candidate set",
            target_cost=best.combined,
        )
    if policy.direct_only:
        reachable = [
            p for p in recommendation.ranked
            if p.format_name == current_format
            or get_kernel(current_format, p.format_name) is not None
        ]
        if not reachable:
            return MigrationDecision(
                index, current_format, None, "no direct kernel to any candidate",
                current_cost=current.combined,
            )
        best = reachable[0]
    if best.format_name == current_format:
        return MigrationDecision(
            index, current_format, None, "already best",
            current_cost=current.combined, target_cost=best.combined,
        )
    threshold = (1.0 - policy.hysteresis) * current.combined
    if best.combined >= threshold:
        return MigrationDecision(
            index, current_format, None,
            f"within hysteresis ({best.combined:.4f} >= "
            f"{threshold:.4f})",
            current_cost=current.combined, target_cost=best.combined,
        )
    return MigrationDecision(
        index, current_format, best.format_name,
        f"{best.combined:.4f} < {threshold:.4f} "
        f"(hysteresis {policy.hysteresis:g})",
        current_cost=current.combined, target_cost=best.combined,
    )


def decide_addr_order(
    current_order: str,
    box_reads: int,
    point_reads: int,
    policy: MigrationPolicy,
) -> str | None:
    """Store-level address-order verdict from the aggregated ledger.

    Returns the target order (``"alto"`` / ``"row_major"``) or ``None``
    to keep the current one.  Box-heavy ledgers (box-read fraction ≥
    ``addr_box_ratio``) pull the store to ALTO; it reverts to row-major
    only when the fraction falls below ``addr_box_ratio -
    addr_hysteresis``.  Cold stores (fewer than ``addr_min_reads``
    total reads) keep their order.
    """
    reads = int(box_reads) + int(point_reads)
    if reads < policy.addr_min_reads:
        return None
    ratio = box_reads / reads
    if ratio >= policy.addr_box_ratio:
        return "alto" if current_order != "alto" else None
    if (
        current_order == "alto"
        and ratio < policy.addr_box_ratio - policy.addr_hysteresis
    ):
        return "row_major"
    return None


def plan_migrations(
    store,
    *,
    workload: "Workload",
    policy: MigrationPolicy | None = None,
    candidates: Iterable[str] | None = None,
) -> list[MigrationDecision]:
    """Score every live fragment of ``store`` and return the verdicts.

    Pure planning — nothing is migrated; feed the positive decisions to
    ``store.migrate_fragment``.  Fragments without a ledger entry (never
    read since the ledger began) are reported as cold.
    """
    from ..obs.workload import FragmentWorkload
    from ..patterns.stats import characterize

    policy = policy or MigrationPolicy()
    ledger = getattr(store, "workload_ledger", None)
    decisions: list[MigrationDecision] = []
    with span("store.migrate.plan"):
        for i, frag in enumerate(store.fragments):
            stats = None
            if ledger is not None:
                stats = ledger.get(frag.path.name)
            if stats is None:
                stats = FragmentWorkload()
            if stats.reads < policy.min_reads:
                decisions.append(MigrationDecision(
                    i, frag.format_name, None,
                    f"cold: {stats.reads} reads < "
                    f"min_reads={policy.min_reads}",
                ))
                continue
            if policy.max_fragment_nnz and frag.nnz > policy.max_fragment_nnz:
                decisions.append(MigrationDecision(
                    i, frag.format_name, None,
                    f"nnz {frag.nnz} > max_fragment_nnz="
                    f"{policy.max_fragment_nnz}",
                ))
                continue
            tensor = store.decode_fragment(i)
            pattern = characterize(tensor)
            rec = score_fragment(
                pattern, observed_workload(workload, stats),
                candidates=candidates,
            )
            decisions.append(
                decide(i, frag.format_name, rec, stats, policy)
            )
    return decisions
