"""Binary fragment codec.

Algorithm 3's WRITE "concatenates ``b_coor_new`` and ``b_data`` and writes
the result into a single binary fragment file".  This module defines that
on-disk encoding:

::

    +----------+---------+----------------+------------------+-----+
    | magic    | version | header length  | header (JSON)    | pad |
    | 4 bytes  | u32     | u32            | variable         |     |
    +----------+---------+----------------+------------------+-----+
    | buffer 0 bytes | pad | buffer 1 bytes | pad | ... | values   |
    +----------------+-----+----------------+-----+-----+----------+
    | crc32 of everything above (u32)                              |
    +--------------------------------------------------------------+

The JSON header carries the format name, tensor shape, nnz, bounding box,
format metadata, and a manifest of every buffer (name, dtype, shape) so the
payload can be reconstructed without importing the format first.  Buffers
are 8-byte aligned so they can be wrapped zero-copy with ``frombuffer``.

The read side accepts any C-contiguous buffer-protocol object — ``bytes``,
``memoryview``, or an ``np.memmap`` of the whole file.  Sections are
sliced through one ``memoryview``, so handing in a mapped file decodes
``codec="raw"`` buffers *zero-copy*: the payload arrays alias the mapping
and no whole-file byte copy is ever materialized (``bytes`` slicing would
copy each section).  This is the substrate of the store's lazy read path
(``FragmentStore(lazy_load=True)``, see ``docs/QUERY_PLANNER.md``).

A trailing CRC-32 guards against truncation and bit rot; failure raises
:class:`~repro.core.errors.ChecksumError` (a
:class:`~repro.core.errors.FragmentError` subclass, exercised by the
fault-injection tests).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..core.errors import ChecksumError, FragmentError

MAGIC = b"RPRS"
VERSION = 1
_ALIGN = 8


def _pad(n: int) -> int:
    return (-n) % _ALIGN


def _as_view(data) -> memoryview:
    """One flat byte view over ``data`` (no copy for any accepted input)."""
    if isinstance(data, memoryview):
        return data.cast("B") if data.format != "B" else data
    return memoryview(data).cast("B")


@dataclass
class FragmentPayload:
    """Decoded contents of a fragment."""

    format_name: str
    shape: tuple[int, ...]
    nnz: int
    meta: dict[str, Any]
    buffers: dict[str, np.ndarray]
    values: np.ndarray
    bbox_origin: tuple[int, ...] = ()
    bbox_size: tuple[int, ...] = ()
    extra: dict[str, Any] = field(default_factory=dict)
    #: Process-local read memos (derived search structures the format READ
    #: stashes between queries — see :meth:`SparseFormat.read`).  Never
    #: serialized; dies with the payload, so the decoded-fragment cache
    #: amortizes it exactly as long as the decode itself.
    runtime: dict[str, Any] = field(
        default_factory=dict, repr=False, compare=False
    )


def pack_fragment(
    format_name: str,
    shape: tuple[int, ...],
    nnz: int,
    meta: Mapping[str, Any],
    buffers: Mapping[str, np.ndarray],
    values: np.ndarray,
    *,
    bbox_origin: tuple[int, ...] = (),
    bbox_size: tuple[int, ...] = (),
    extra: Mapping[str, Any] | None = None,
    codec: str = "raw",
) -> bytes:
    """Serialize one fragment to bytes.

    ``codec`` selects the orthogonal compression layer applied to every
    index buffer and the value buffer (``raw`` / ``zlib`` / ``delta-zlib``
    / ``cascade``; see :mod:`repro.storage.compression`).  The stored
    per-buffer tag always records the chain *actually* applied, so decode
    never consults store options.  The paper's size comparisons
    correspond to ``raw``.
    """
    from .compression import CASCADE, ZLIB, encode_buffer, validate_codec

    validate_codec(codec)
    values = np.ascontiguousarray(values)
    encoded: list[tuple[dict[str, Any], bytes]] = []
    for name, arr in buffers.items():
        arr = np.ascontiguousarray(arr)
        blob, stored_codec = encode_buffer(arr, codec)
        encoded.append(
            (
                {
                    "name": name,
                    "dtype": arr.dtype.str,
                    "shape": list(arr.shape),
                    "codec": stored_codec,
                    "nbytes": len(blob),
                },
                blob,
            )
        )
    # Values never use the delta transform (floats): the cascade routes
    # them through its zlib-if-smaller-else-raw path; the legacy zlib
    # codecs keep their unconditional DEFLATE.
    if codec == "raw":
        value_request = "raw"
    elif codec == CASCADE:
        value_request = CASCADE
    else:
        value_request = ZLIB
    vblob, value_codec = encode_buffer(values, value_request)
    header = {
        "format": format_name,
        "shape": [int(m) for m in shape],
        "nnz": int(nnz),
        "meta": dict(meta),
        "buffers": [entry for entry, _ in encoded],
        "value_dtype": values.dtype.str,
        "value_count": int(values.shape[0]),
        "value_codec": value_codec,
        "value_nbytes": len(vblob),
        "bbox_origin": [int(v) for v in bbox_origin],
        "bbox_size": [int(v) for v in bbox_size],
        "extra": dict(extra or {}),
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts: list[bytes] = [
        MAGIC,
        struct.pack("<II", VERSION, len(header_bytes)),
        header_bytes,
        b"\0" * _pad(len(MAGIC) + 8 + len(header_bytes)),
    ]
    for _, blob in encoded:
        parts.append(blob)
        parts.append(b"\0" * _pad(len(blob)))
    parts.append(vblob)
    parts.append(b"\0" * _pad(len(vblob)))
    body = b"".join(parts)
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return body + struct.pack("<I", crc)


def unpack_header(data) -> tuple[dict[str, Any], int]:
    """Decode just the JSON header; returns (header, offset_past_header).

    Used by the store to test fragment/box overlap without decoding the
    index buffers.  ``data`` may be any C-contiguous buffer (``bytes``,
    ``memoryview``, mapped file).
    """
    view = _as_view(data)
    if len(view) < len(MAGIC) + 8:
        raise FragmentError("fragment truncated before header")
    if bytes(view[: len(MAGIC)]) != MAGIC:
        raise FragmentError(
            f"bad magic {bytes(view[:len(MAGIC)])!r}; not a repro fragment"
        )
    version, hlen = struct.unpack_from("<II", view, len(MAGIC))
    if version != VERSION:
        raise FragmentError(f"unsupported fragment version {version}")
    start = len(MAGIC) + 8
    if len(view) < start + hlen:
        raise FragmentError("fragment truncated inside header")
    try:
        header = json.loads(bytes(view[start : start + hlen]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FragmentError(f"corrupt fragment header: {exc}") from exc
    offset = start + hlen
    offset += _pad(offset)
    return header, offset


def verify_crc(data) -> None:
    """Check the trailing CRC-32; raises on mismatch or truncation.

    Raises :class:`~repro.core.errors.ChecksumError` (a
    :class:`~repro.core.errors.FragmentError` subclass, so existing broad
    handlers still catch it).  Accepts any C-contiguous buffer;
    ``zlib.crc32`` consumes the view without copying.
    """
    view = _as_view(data)
    if len(view) < 4:
        raise ChecksumError("fragment too small to contain a checksum")
    body, tail = view[:-4], view[-4:]
    (stored_crc,) = struct.unpack("<I", tail)
    actual = zlib.crc32(body) & 0xFFFFFFFF
    if stored_crc != actual:
        raise ChecksumError(
            f"fragment checksum mismatch: stored {stored_crc:#010x}, "
            f"computed {actual:#010x}"
        )


def unpack_fragment(data, *, check_crc: bool = True) -> FragmentPayload:
    """Deserialize a fragment produced by :func:`pack_fragment`.

    ``data`` may be ``bytes`` or any C-contiguous buffer-protocol object
    (``memoryview``, whole-file ``np.memmap``).  Buffer sections are
    sliced as sub-views, so raw-codec arrays alias ``data`` instead of
    copying — pass a mapped file and the decode is zero-copy end to end.
    The returned arrays are read-only either way (``frombuffer``
    semantics); formats treat payload buffers as immutable.
    """
    if check_crc:
        verify_crc(data)
    from .compression import decode_buffer

    view = _as_view(data)
    header, offset = unpack_header(view)
    buffers: dict[str, np.ndarray] = {}
    for entry in header["buffers"]:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(int(s) for s in entry["shape"])
        count = int(np.prod(shape)) if shape else 1
        codec = entry.get("codec", "raw")
        nbytes = int(entry.get("nbytes", count * dtype.itemsize))
        if offset + nbytes > len(view):
            raise FragmentError(
                f"fragment truncated inside buffer {entry['name']!r}"
            )
        try:
            arr = decode_buffer(
                view[offset : offset + nbytes], codec, dtype, count
            )
        except zlib.error as exc:
            raise FragmentError(
                f"buffer {entry['name']!r} fails to decompress: {exc}"
            ) from exc
        buffers[entry["name"]] = arr.reshape(shape)
        offset += nbytes + _pad(nbytes)
    vdtype = np.dtype(header["value_dtype"])
    vcount = int(header["value_count"])
    vcodec = header.get("value_codec", "raw")
    vbytes = int(header.get("value_nbytes", vcount * vdtype.itemsize))
    if offset + vbytes > len(view):
        raise FragmentError("fragment truncated inside value buffer")
    try:
        values = decode_buffer(
            view[offset : offset + vbytes], vcodec, vdtype, vcount
        )
    except zlib.error as exc:
        raise FragmentError(f"value buffer fails to decompress: {exc}") from exc
    return FragmentPayload(
        format_name=header["format"],
        shape=tuple(int(m) for m in header["shape"]),
        nnz=int(header["nnz"]),
        meta=dict(header["meta"]),
        buffers=buffers,
        values=values,
        bbox_origin=tuple(int(v) for v in header.get("bbox_origin", [])),
        bbox_size=tuple(int(v) for v in header.get("bbox_size", [])),
        extra=dict(header.get("extra", {})),
    )
