"""Parallel-filesystem I/O cost model (substitution for Perlmutter's Lustre).

The paper measures fragment writes/reads against the Lustre filesystem of
the Perlmutter supercomputer.  We cannot reproduce that testbed, so next to
the *measured* local-filesystem time the benchmark harness reports a
*modeled* parallel-filesystem time from this module (DESIGN.md §4).

The model is the standard first-order PFS cost::

    time(bytes) = latency + bytes / effective_bandwidth
    effective_bandwidth = min(stripe_count, max_parallel_osts) * ost_bandwidth

The default profile is calibrated from the paper's own Table III: the 4D
MSP dataset (0.21 % of 128^4 ~= 563k points) produces a ~22.5 MB COO
fragment written in 0.1217 s and a ~9 MB LINEAR fragment in 0.0504 s —
both consistent with ~185 MB/s effective single-stream bandwidth plus ~10 ms
of fixed overhead.  Because both numbers come from the same linear model,
the *ratios* between organizations (the quantity the paper interprets) are
insensitive to the calibration constants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PFSProfile:
    """A parallel filesystem performance profile.

    Attributes
    ----------
    name:
        Display label.
    latency_s:
        Fixed per-operation overhead (metadata RPC, open/close).
    ost_bandwidth_Bps:
        Per-stripe (OST) streaming bandwidth, bytes/second.
    stripe_count:
        Number of OSTs a file is striped across.
    max_parallel_osts:
        Cap on how many stripes a single-client stream can drive.
    """

    name: str
    latency_s: float
    ost_bandwidth_Bps: float
    stripe_count: int = 1
    max_parallel_osts: int = 1

    @property
    def effective_bandwidth_Bps(self) -> float:
        streams = max(1, min(self.stripe_count, self.max_parallel_osts))
        return streams * self.ost_bandwidth_Bps

    def write_time(self, nbytes: int) -> float:
        """Modeled seconds to write ``nbytes`` as one fragment."""
        return self.latency_s + nbytes / self.effective_bandwidth_Bps

    def read_time(self, nbytes: int) -> float:
        """Modeled seconds to read ``nbytes`` back (same first-order form)."""
        return self.latency_s + nbytes / self.effective_bandwidth_Bps


#: Calibrated from Table III (see module docstring).
PERLMUTTER_LUSTRE = PFSProfile(
    name="perlmutter-lustre",
    latency_s=0.010,
    ost_bandwidth_Bps=185e6,
    stripe_count=1,
    max_parallel_osts=1,
)

#: A generic spinning-disk NFS-ish profile, for sensitivity studies.
SLOW_NFS = PFSProfile(
    name="slow-nfs",
    latency_s=0.050,
    ost_bandwidth_Bps=80e6,
)

#: A fast NVMe-backed local profile.
LOCAL_NVME = PFSProfile(
    name="local-nvme",
    latency_s=0.0002,
    ost_bandwidth_Bps=2.5e9,
)

PROFILES = {
    p.name: p for p in (PERLMUTTER_LUSTRE, SLOW_NFS, LOCAL_NVME)
}


def get_profile(name: str) -> PFSProfile:
    """Look up a profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown PFS profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
