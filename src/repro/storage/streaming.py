"""Streaming ingestion: buffered appends flushed as fragments.

Real producers (the paper's LCLS-II motivation) emit points continuously;
writing a fragment per event would drown in per-fragment overhead, while
buffering everything defers durability.  :class:`StreamingWriter` batches
appends and flushes a fragment whenever the buffer reaches a point budget —
the standard ingest pattern over an immutable-fragment store.
"""

from __future__ import annotations

import numpy as np

from ..core.dtypes import as_index_array
from ..core.errors import ShapeError
from ..obs import counter_add
from .store import FragmentStore, WriteReceipt


class StreamingWriter:
    """Buffered appender over a :class:`FragmentStore`.

    Usage::

        with StreamingWriter(store, flush_points=100_000) as w:
            for coords, values in event_stream:
                w.append(coords, values)
        # exit flushes the tail fragment

    Appends within one buffer keep arrival order; overwrite semantics
    across flushes follow the store's newest-fragment-wins rule.
    """

    def __init__(self, store: FragmentStore, *, flush_points: int = 100_000):
        if flush_points <= 0:
            raise ValueError("flush_points must be positive")
        self.store = store
        self.flush_points = int(flush_points)
        self._coords: list[np.ndarray] = []
        self._values: list[np.ndarray] = []
        self._buffered = 0
        self.points_written = 0
        self.fragments_written = 0

    @property
    def buffered_points(self) -> int:
        return self._buffered

    def append(self, coords: np.ndarray, values: np.ndarray) -> None:
        """Add points to the buffer, flushing when the budget is reached."""
        coords = as_index_array(coords)
        values = np.asarray(values)
        if coords.ndim != 2 or coords.shape[1] != len(self.store.shape):
            raise ShapeError("coords must be (n, d) matching the store")
        if values.shape[0] != coords.shape[0]:
            raise ShapeError("values must align with coords")
        if coords.shape[0] == 0:
            return
        self._coords.append(coords)
        self._values.append(values)
        self._buffered += coords.shape[0]
        counter_add("streaming.points_appended", coords.shape[0])
        while self._buffered >= self.flush_points:
            self.flush()

    def flush(self) -> WriteReceipt | None:
        """Write the current buffer as one fragment (no-op when empty)."""
        if self._buffered == 0:
            return None
        coords = np.vstack(self._coords)
        values = np.concatenate(self._values)
        self._coords.clear()
        self._values.clear()
        self._buffered = 0
        receipt = self.store.write(coords, values)
        self.points_written += int(coords.shape[0])
        self.fragments_written += 1
        counter_add("streaming.flushes")
        return receipt

    def __enter__(self) -> "StreamingWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Flush the tail only on a clean exit; on error the buffer is
        # dropped rather than committing possibly-inconsistent points.
        if exc_type is None:
            self.flush()
