"""Streaming ingestion: durable WAL appends packed into fragments.

Real producers (the paper's LCLS-II motivation) emit points continuously;
writing a fragment per event would drown in per-fragment overhead, while
buffering everything defers durability.  :class:`StreamingWriter`
originally batched appends in memory and flushed a fragment per point
budget — a crash lost the whole buffer.  It now rides the store's
write-ahead log by default: every ``append`` is durable the moment it
returns (one sequential log write, no fragment build), and the writer
calls :meth:`~repro.storage.store.FragmentStore.pack_wal` whenever
``pack_points`` appended points await packing.  ``durable=False``
restores the in-memory buffering for callers that explicitly prefer
speed over crash safety.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..core.dtypes import as_index_array
from ..core.errors import ShapeError
from ..obs import counter_add
from .options import UNSET, _Unset
from .store import FragmentStore, WriteReceipt

#: Whether the ``flush_points`` deprecation has been warned this process.
_WARNED_FLUSH_POINTS = False


def _warn_flush_points() -> None:
    global _WARNED_FLUSH_POINTS
    if _WARNED_FLUSH_POINTS:
        return
    _WARNED_FLUSH_POINTS = True
    warnings.warn(
        "the 'flush_points' keyword is deprecated; pass 'pack_points' "
        "instead (StreamingWriter now appends through the store's "
        "write-ahead log — see docs/WAL_SNAPSHOTS.md)",
        DeprecationWarning,
        stacklevel=4,
    )


class StreamingWriter:
    """Durable streaming appender over a :class:`FragmentStore`.

    Usage::

        with StreamingWriter(store, pack_points=100_000) as w:
            for coords, values in event_stream:
                w.append(coords, values)
        # exit packs the tail into a fragment

    With ``durable=True`` (the default) each ``append`` lands in the
    store's write-ahead log before returning — with
    ``StoreOptions.wal_fsync`` set, an acknowledged append survives any
    crash, and a crash mid-stream loses nothing that was appended.  The
    writer packs the log into a real fragment every ``pack_points``
    points and once more on clean exit.

    With ``durable=False`` points are buffered in memory and written as
    one fragment per budget (the original behavior): cheap, but a crash
    or producer error drops the unflushed buffer.

    On an exception inside the ``with`` block the writer never commits a
    fragment: the durable tail stays in the log (replayed on next open),
    a non-durable buffer is discarded — both with a warning.

    Also works over :class:`~repro.storage.sharded.ShardedStore` in
    durable mode (it exposes the same ``append`` / ``pack_wal`` pair).
    """

    def __init__(
        self,
        store: FragmentStore,
        *,
        pack_points: int = 100_000,
        durable: bool = True,
        flush_points: int | _Unset = UNSET,
    ):
        if not isinstance(flush_points, _Unset):
            _warn_flush_points()
            pack_points = flush_points
        if pack_points <= 0:
            raise ValueError("pack_points must be positive")
        self.store = store
        self.pack_points = int(pack_points)
        self.durable = bool(durable)
        self._coords: list[np.ndarray] = []
        self._values: list[np.ndarray] = []
        self._buffered = 0
        #: Points committed to fragments (packed or flushed) so far.
        self.points_written = 0
        #: Fragment commits (packs in durable mode, flushes otherwise).
        self.fragments_written = 0

    @property
    def buffered_points(self) -> int:
        """Points not yet in a fragment: the unpacked durable tail, or
        the in-memory buffer when ``durable=False``."""
        return self._buffered

    def append(self, coords: np.ndarray, values: np.ndarray) -> None:
        """Add points, packing/flushing when the budget is reached."""
        coords = as_index_array(coords)
        values = np.asarray(values)
        if coords.ndim != 2 or coords.shape[1] != len(self.store.shape):
            raise ShapeError("coords must be (n, d) matching the store")
        if values.shape[0] != coords.shape[0]:
            raise ShapeError("values must align with coords")
        if coords.shape[0] == 0:
            return
        if self.durable:
            self.store.append(coords, values)
            self._buffered += coords.shape[0]
        else:
            self._coords.append(coords)
            self._values.append(values)
            self._buffered += coords.shape[0]
        counter_add("streaming.points_appended", coords.shape[0])
        while self._buffered >= self.pack_points:
            self.flush()

    def flush(self) -> WriteReceipt | None:
        """Commit the pending points as one fragment (no-op when empty).

        Durable mode drains the store's whole WAL (including points
        appended outside this writer) via ``pack_wal``; non-durable mode
        writes the in-memory buffer.
        """
        if self._buffered == 0:
            return None
        if self.durable:
            receipt = self.store.pack_wal()
            self.points_written += self._buffered
            self._buffered = 0
        else:
            coords = np.vstack(self._coords)
            values = np.concatenate(self._values)
            self._coords.clear()
            self._values.clear()
            self._buffered = 0
            receipt = self.store.write(coords, values)
            self.points_written += int(coords.shape[0])
        if receipt is not None:
            self.fragments_written += 1
        counter_add("streaming.flushes")
        return receipt

    def __enter__(self) -> "StreamingWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Commit the tail only on a clean exit: committing a fragment
        # while the producer is mid-failure could freeze half an event.
        if exc_type is None:
            self.flush()
            return
        if self._buffered:
            if self.durable:
                warnings.warn(
                    f"StreamingWriter exiting on {exc_type.__name__}: "
                    f"{self._buffered} appended point(s) remain durable "
                    "in the write-ahead log but unpacked (replayed on "
                    "next open; call pack_wal() to commit them)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._buffered = 0
            else:
                warnings.warn(
                    f"StreamingWriter exiting on {exc_type.__name__}: "
                    f"discarding {self._buffered} buffered point(s) "
                    "(pass durable=True to make appends crash-safe)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._coords.clear()
                self._values.clear()
                self._buffered = 0
